"""Miniature end-to-end run guarding the benchmark pipeline.

A 30-simulated-minute version of the benchmark suite's shared day-run:
paper-shaped population, sized topology, all controllers live.  Checks
the structural invariants that, when broken, historically showed up as
mysterious benchmark failures hours later.
"""

import statistics

import pytest

from repro import PlatformParams, Simulator, XFaaS
from repro.cluster import MachineSpec, size_topology_for_utilization
from repro.core import LocalityParams, SchedulerParams
from repro.workloads import (
    ArrivalGenerator,
    ConstantRate,
    build_population,
    estimate_demand_minstr,
)

HORIZON_S = 1800.0


@pytest.fixture(scope="module")
def minirun():
    sim = Simulator(seed=77)
    population = build_population(n_functions=60, total_rate=8.0,
                                  opportunistic_fraction=0.6)
    for load in population.loads:
        load.shape = ConstantRate(1.0)
        load.shape_mean = 1.0
        load.future_start_fraction = 0.0
    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=0.70, n_regions=4, machine_spec=machine)
    platform = XFaaS(sim, topology, PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        locality=LocalityParams(n_groups=2),
        memory_sample_interval_s=120.0,
        distinct_window_s=600.0))
    for spec in population.specs:
        platform.register_function(spec)
    ArrivalGenerator(sim, population,
                     lambda spec, delay: platform.submit(spec.name),
                     tick_s=10.0, stop_at=HORIZON_S)
    sim.run_until(HORIZON_S)
    return sim, platform, population


class TestMiniDayrun:
    def test_throughput_tracks_arrivals(self, minirun):
        sim, platform, _ = minirun
        # Steady offered load at ~the sized operating point: most work
        # completes within the horizon (no silent starvation).
        assert platform.completed_count() > 0.75 * platform.submitted_count

    def test_conservation(self, minirun):
        sim, platform, _ = minirun
        completed = sum(s.completed_count
                        for s in platform.schedulers.values())
        failed = sum(s.failed_count for s in platform.schedulers.values())
        pending = platform.pending_backlog()
        running = sum(w.running_count for w in platform.all_workers)
        batched = sum(len(f.normal._batch) + len(f.spiky._batch)
                      for f in platform.frontends.values())
        accepted = platform.submitted_count - platform.throttled_count
        assert completed + failed + pending + running + batched == accepted

    def test_workers_meaningfully_utilized(self, minirun):
        sim, platform, _ = minirun
        utils = [w.cpu.utilization_total(sim.now)
                 for w in platform.all_workers]
        assert statistics.mean(utils) > 0.35

    def test_no_phantom_congestion_state(self, minirun):
        sim, platform, population = minirun
        # Every function's "running" count in the congestion controller
        # matches reality (workers + parked pipeline entries).
        for load in population.loads:
            name = load.spec.name
            actual = sum(
                1 for w in platform.all_workers
                for rc in w._running.values()
                if rc.call.function_name == name)
            parked = sum(
                1 for s in platform.schedulers.values()
                for _, _, c in s.runq._heap if c.function_name == name)
            assert platform.congestion.running(name) == actual + parked, name

    def test_cost_averages_converge(self, minirun):
        sim, platform, population = minirun
        # For well-invoked functions the learned cost average lands
        # within 3x of the analytic profile mean (heavy tails allowed).
        for load in population.loads:
            traces = platform.traces.for_function(load.spec.name)
            if len(traces) < 300:
                continue
            learned = platform.rate_limiter.avg_cost(load.spec.name)
            analytic = load.spec.profile.mean_cpu(500.0)
            assert analytic / 3 < learned < analytic * 3

    def test_buffers_consistent(self, minirun):
        sim, platform, _ = minirun
        for s in platform.schedulers.values():
            actual = sum(len(b) for b in s._buffers.values())
            assert s.buffered_count == actual
