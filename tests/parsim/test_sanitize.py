"""Sanitized parallel runs: digest parity plus dynamic violation catch.

The dynamic half of the ISSUE acceptance pairing: the same deliberate
cross-shard mutations that SL010/SL012 flag statically (see
``tests/simlint/fixtures/repro/parsim/bad_sl010.py`` /
``bad_sl012.py``) raise :class:`SanitizeError` at runtime when a shard
platform runs under ``ParsimSpec(sanitize=True)``.
"""

import dataclasses

import pytest

from repro.parsim import ParsimSpec, run_parsim
from repro.parsim.platform import build_shard
from repro.sim import SanitizeError

MINI = ParsimSpec(scenario="dayrun", seed=11, horizon_s=300.0,
                  total_rate=2.0, n_functions=10, n_regions=4,
                  n_shards=2)


def sanitized_shard(index=0):
    return build_shard(dataclasses.replace(MINI, sanitize=True), index)


class TestDigestParity:
    def test_two_shard_sanitized_run_matches_plain(self):
        plain = run_parsim(MINI, force_in_process=True)
        sanitized = run_parsim(dataclasses.replace(MINI, sanitize=True),
                               force_in_process=True)
        assert sanitized.n_shards == 2
        assert sanitized.digest == plain.digest
        assert sanitized.completed == plain.completed
        assert sanitized.events_executed == plain.events_executed

    def test_single_shard_sanitized_run_matches_plain(self):
        serial = dataclasses.replace(MINI, n_shards=1)
        plain = run_parsim(serial, force_in_process=True)
        sanitized = run_parsim(
            dataclasses.replace(serial, sanitize=True),
            force_in_process=True)
        assert sanitized.digest == plain.digest


class TestDynamicCatch:
    """bad_sl012-style cross-shard mutations raise at runtime."""

    def test_foreign_region_map_read_raises(self):
        platform = sanitized_shard(0)
        foreign = next(r for r in platform.all_regions
                       if r not in platform._owned_set)
        with pytest.raises(SanitizeError, match=foreign):
            platform.schedulers[foreign]

    def test_foreign_map_entry_rebind_raises(self):
        # The replace_foreign_queue() pattern from bad_sl012.py.
        platform = sanitized_shard(0)
        foreign = next(r for r in platform.all_regions
                       if r not in platform._owned_set)
        with pytest.raises(SanitizeError, match="write"):
            platform.durableqs_by_region[foreign] = []

    def test_foreign_region_stream_draw_raises(self):
        platform = sanitized_shard(0)
        foreign = next(r for r in platform.all_regions
                       if r not in platform._owned_set)
        stream = platform.sim.rng.stream(f"config-jitter/{foreign}/sched")
        with pytest.raises(SanitizeError, match=foreign):
            stream.uniform(0.0, 1.0)

    def test_forged_message_source_raises(self):
        platform = sanitized_shard(0)
        foreign = next(r for r in platform.all_regions
                       if r not in platform._owned_set)
        with pytest.raises(SanitizeError, match="source"):
            platform.send(foreign, platform.owned_regions[0],
                          "kv_delete", ("args/1",), 1.0)

    def test_owned_access_and_mailbox_surface_stay_legal(self):
        platform = sanitized_shard(0)
        mine = platform.owned_regions[0]
        assert platform.schedulers[mine] is not None
        platform.send(mine, platform.all_regions[-1], "kv_delete",
                      ("args/1",), 1.0)  # mailbox is the sanctioned path
        assert platform.drain_outbox()
