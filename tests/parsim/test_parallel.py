"""Tests for the region-sharded conservative parallel runner.

The load-bearing property is **structural parity**: ``--shards 1`` and
``--shards N`` run the *same* parsim machinery (replicated control
plane, mailbox handles, barrier injection), so their merged canonical
trace digests must be bit-identical.  Everything else — fallback
behavior, message flow, window arithmetic — exists to keep that
property safe.
"""

import os

import pytest

from repro.parsim import (
    ParsimSpec,
    ShardMessage,
    available_cpus,
    partition_regions,
    run_parsim,
    shard_of_region,
)
from repro.sim import SimulationError, Simulator

#: Small but non-trivial: 3 regions so a 2-shard split is uneven, a
#: horizon long enough for GTC updates (60s interval) and RIM samples.
MINI_FLEETRUN = ParsimSpec(scenario="fleetrun", seed=11, horizon_s=150.0,
                           total_rate=6.0, n_functions=10, n_regions=3,
                           opportunistic_fraction=0.5, n_workers=90)

MINI_DAYRUN = ParsimSpec(scenario="dayrun", seed=5, horizon_s=150.0,
                         total_rate=3.0, n_functions=12, n_regions=4,
                         opportunistic_fraction=0.6)


def _digests(base: ParsimSpec, shard_counts):
    results = {}
    for n in shard_counts:
        spec = ParsimSpec(**{**base.__dict__, "n_shards": n})
        results[n] = run_parsim(spec, force_in_process=True)
    return results


class TestShardCountParity:
    def test_fleetrun_digest_invariant_across_shard_counts(self):
        results = _digests(MINI_FLEETRUN, (1, 2, 3))
        digests = {n: r.digest for n, r in results.items()}
        assert len(set(digests.values())) == 1, digests
        assert results[1].submitted > 0
        for n in (2, 3):
            assert results[n].submitted == results[1].submitted
            assert results[n].completed == results[1].completed
            assert results[n].throttled == results[1].throttled
            assert results[n].backlog == results[1].backlog
            assert results[n].n_shards == n
            assert results[n].fallback_reason is None

    def test_dayrun_digest_invariant_across_shard_counts(self):
        results = _digests(MINI_DAYRUN, (1, 2, 4))
        assert len({r.digest for r in results.values()}) == 1
        assert results[1].submitted > 0
        assert results[4].completed == results[1].completed

    def test_cross_shard_messages_actually_flow(self):
        # Parity would be vacuous if the shards never talked: remote
        # queue polls and RIM broadcasts must cross the boundary.
        result = _digests(MINI_FLEETRUN, (3,))[3]
        assert result.messages_exchanged > 0
        assert result.barriers > 0
        assert [len(g) for g in result.owned_regions] == [1, 1, 1]


class TestSpawnRunner:
    def test_spawned_processes_match_in_process(self):
        spec = ParsimSpec(**{**MINI_FLEETRUN.__dict__, "n_shards": 2})
        serial = run_parsim(spec, force_in_process=True)
        spawned = run_parsim(spec)
        assert spawned.digest == serial.digest
        assert spawned.submitted == serial.submitted
        assert spawned.events_executed == serial.events_executed


class TestFallbacks:
    def test_shards_clamped_to_region_count(self):
        spec = ParsimSpec(**{**MINI_FLEETRUN.__dict__, "n_shards": 8})
        result = run_parsim(spec, force_in_process=True)
        assert result.n_shards == 3
        assert "clamped" in (result.fallback_reason or "")
        assert result.digest == _digests(MINI_FLEETRUN, (1,))[1].digest

    def test_single_region_runs_serially(self):
        spec = ParsimSpec(scenario="fleetrun", seed=2, horizon_s=30.0,
                          total_rate=2.0, n_functions=4, n_regions=1,
                          n_workers=10, n_shards=3)
        result = run_parsim(spec)
        assert result.n_shards == 1
        assert "single-region" in (result.fallback_reason or "")


class TestWindowProtocol:
    def test_kernel_rejects_injection_into_the_past(self):
        # The conservative contract: a completed window must never gain
        # events retroactively.  inject() enforces it at the kernel.
        sim = Simulator(seed=1)
        sim.call_at(5.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.inject(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.inject(4.0, lambda: None)
        sim.inject(5.1, lambda: None)  # strictly future is fine

    def test_merge_order_is_grouping_independent(self):
        # The canonical sort key must not depend on which shard emitted
        # a message — only on (deliver_at, src_region, src_seq).
        msgs = [
            ShardMessage(deliver_at=2.0, src_region="r1", dest_region="r0",
                         src_seq=0, kind="k", payload=()),
            ShardMessage(deliver_at=1.0, src_region="r2", dest_region="r0",
                         src_seq=4, kind="k", payload=()),
            ShardMessage(deliver_at=1.0, src_region="r0", dest_region="r1",
                         src_seq=9, kind="k", payload=()),
            ShardMessage(deliver_at=1.0, src_region="r0", dest_region="r1",
                         src_seq=3, kind="k", payload=()),
        ]
        expected = [msgs[3], msgs[2], msgs[1], msgs[0]]
        assert sorted(msgs, key=ShardMessage.sort_key) == expected
        assert sorted(reversed(msgs), key=ShardMessage.sort_key) == expected


class TestPartitioning:
    def test_groups_contiguous_balanced_and_exhaustive(self):
        names = [f"region-{i:02d}" for i in range(7)]
        groups = partition_regions(names, 3)
        assert [len(g) for g in groups] == [3, 2, 2]
        assert [r for g in groups for r in g] == sorted(names)
        for region in names:
            idx = shard_of_region(names, 3, region)
            assert region in groups[idx]

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError):
            shard_of_region(["a", "b"], 2, "zzz")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ParsimSpec(scenario="nope")
        with pytest.raises(ValueError):
            ParsimSpec(n_shards=0)


class TestCpuDetection:
    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


@pytest.mark.skipif(os.environ.get("PARSIM_FULL_PARITY") != "1",
                    reason="full-scale parity run; set PARSIM_FULL_PARITY=1")
def test_full_dayrun_parity():
    """Reference-scale parity: the default dayrun, shards 1 vs 3."""
    base = ParsimSpec(scenario="dayrun", seed=7, horizon_s=3600.0,
                      total_rate=8.0, n_functions=60, n_regions=6,
                      opportunistic_fraction=0.6)
    results = _digests(base, (1, 3))
    assert results[1].digest == results[3].digest
    assert results[1].submitted == results[3].submitted
