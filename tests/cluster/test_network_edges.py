"""Edge-case tests for the network model's parsim-facing surface.

The conservative parallel runner (:mod:`repro.parsim`) leans on three
properties of :class:`NetworkModel` that the main topology tests don't
pin down: zero-size transfers cost exactly the latency, ring latency is
symmetric (so the lookahead window is direction-independent), and a
single-region topology degenerates to a uselessly small lookahead that
must push the runner back to serial execution.
"""

import pytest

from repro.cluster import NetworkModel, build_topology
from repro.parsim import ParsimSpec, run_parsim


class TestTransferTimeEdges:
    def test_zero_size_transfer_is_pure_latency(self):
        net = NetworkModel(["a", "b", "c"])
        assert net.transfer_time("a", "b", 0.0) == net.latency("a", "b")
        assert net.transfer_time("a", "a", 0.0) == net.intra_latency_s

    def test_negative_size_rejected(self):
        net = NetworkModel(["a", "b"])
        with pytest.raises(ValueError):
            net.transfer_time("a", "b", -1.0)


class TestRingSymmetry:
    def test_latency_symmetric_all_pairs(self):
        # Lookahead = min pairwise latency; the window would be
        # direction-dependent (and the barrier protocol unsound) if
        # latency(a, b) != latency(b, a) anywhere on the ring.
        net = NetworkModel([f"r{i}" for i in range(7)])
        for a in net.region_names:
            for b in net.region_names:
                assert net.latency(a, b) == net.latency(b, a)

    def test_lookahead_is_min_cross_latency(self):
        net = NetworkModel([f"r{i}" for i in range(5)])
        cross = [net.latency(a, b)
                 for a in net.region_names for b in net.region_names
                 if a != b]
        assert net.lookahead() == min(cross)
        assert net.max_latency() == max(cross)
        # Adjacent regions (1 hop) pay only the base latency.
        assert net.lookahead() == net.cross_latency_base_s

    def test_topology_lookahead_delegates(self):
        topo = build_topology(n_regions=4)
        assert topo.lookahead() == topo.network.lookahead()


class TestSingleRegionDegeneration:
    def test_lookahead_degenerates_to_intra_latency(self):
        net = NetworkModel(["only"])
        assert net.lookahead() == net.intra_latency_s
        assert net.max_latency() == net.intra_latency_s

    def test_parallel_run_falls_back_to_serial(self):
        # Asking for 4 shards over one region must not try to window on
        # the intra-region latency (the run would barrier ~2M times per
        # simulated 1000s); the runner refuses and runs serially.
        spec = ParsimSpec(scenario="fleetrun", seed=3, horizon_s=30.0,
                          total_rate=2.0, n_functions=4, n_regions=1,
                          n_workers=8, n_shards=4)
        result = run_parsim(spec)
        assert result.n_shards == 1
        assert result.fallback_reason is not None
        assert "single-region" in result.fallback_reason
        assert result.submitted > 0
