"""Tests for the network model and topology builder."""

import pytest

from repro.cluster import (
    MachineSpec,
    NetworkModel,
    Region,
    Topology,
    build_topology,
    size_topology_for_utilization,
)


class TestNetworkModel:
    def test_intra_region_latency_small(self):
        net = NetworkModel(["a", "b", "c"])
        assert net.latency("a", "a") == net.intra_latency_s

    def test_cross_region_latency_100x_plus(self):
        # §2.3: cross-region latency is 100–1000× intra-region.
        net = NetworkModel(["a", "b", "c", "d"])
        ratio = net.latency("a", "c") / net.latency("a", "a")
        assert ratio >= 100

    def test_cross_region_bandwidth_10x_lower(self):
        net = NetworkModel(["a", "b"])
        assert net.bandwidth_gbps("a", "a") / net.bandwidth_gbps("a", "b") \
            == pytest.approx(10.0)

    def test_ring_hops_symmetric(self):
        net = NetworkModel([f"r{i}" for i in range(6)])
        assert net.hops("r0", "r5") == 1  # ring wraps
        assert net.hops("r0", "r3") == 3
        assert net.hops("r2", "r4") == net.hops("r4", "r2")

    def test_neighbors_sorted_by_distance(self):
        net = NetworkModel([f"r{i}" for i in range(5)])
        neighbors = net.neighbors_by_distance("r0")
        hops = [net.hops("r0", n) for n in neighbors]
        assert hops == sorted(hops)
        assert "r0" not in neighbors

    def test_transfer_time_monotone_in_size(self):
        net = NetworkModel(["a", "b"])
        assert net.transfer_time("a", "b", 100) > net.transfer_time("a", "b", 1)

    def test_duplicate_regions_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(["a", "a"])


class TestRegion:
    def test_capacity_mips(self):
        r = Region("x", {"default": 3},
                   machine_spec=MachineSpec(cores=2, core_mips=100))
        assert r.capacity_mips("default") == 600

    def test_unknown_namespace_zero(self):
        r = Region("x", {"default": 3})
        assert r.workers_for("other") == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Region("x", {"default": -1})


class TestTopology:
    def test_uneven_capacity_shape(self):
        topo = build_topology(n_regions=12, workers_per_unit=100)
        counts = [r.workers_for("default") for r in topo.regions]
        # Figure 5 shape: strictly decreasing profile, ~10× spread.
        assert counts[0] == 100
        assert counts == sorted(counts, reverse=True)
        assert counts[0] / counts[-1] >= 8

    def test_every_region_has_a_worker(self):
        topo = build_topology(n_regions=12, workers_per_unit=5)
        assert all(r.workers_for("default") >= 1 for r in topo.regions)

    def test_capacity_share_sums_to_one(self):
        topo = build_topology(n_regions=6, workers_per_unit=20)
        assert sum(topo.capacity_share("default").values()) \
            == pytest.approx(1.0)

    def test_extra_namespaces(self):
        topo = build_topology(n_regions=3, workers_per_unit=10,
                              extra_namespaces={"py": 4})
        assert topo.total_workers("py") >= 3

    def test_region_lookup(self):
        topo = build_topology(n_regions=3)
        assert topo.region("region-01").name == "region-01"
        with pytest.raises(KeyError):
            topo.region("nope")

    def test_mismatched_network_rejected(self):
        topo = build_topology(n_regions=3)
        from repro.cluster import NetworkModel
        with pytest.raises(ValueError):
            Topology(regions=topo.regions,
                     network=NetworkModel(["x", "y", "z"]))


class TestSizing:
    def test_sized_capacity_near_target(self):
        spec = MachineSpec(cores=8, core_mips=1000)
        demand = 100_000.0
        topo = size_topology_for_utilization(demand, 0.66, n_regions=12,
                                             machine_spec=spec)
        capacity = sum(r.capacity_mips("default") for r in topo.regions)
        implied_util = demand / capacity
        assert 0.4 <= implied_util <= 0.9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            size_topology_for_utilization(0.0)
        with pytest.raises(ValueError):
            size_topology_for_utilization(100.0, target_utilization=1.5)
