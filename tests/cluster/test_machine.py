"""Tests for MachineSpec and CpuAccount."""

import pytest

from repro.cluster import CpuAccount, MachineSpec


class TestMachineSpec:
    def test_defaults_match_paper(self):
        spec = MachineSpec()
        # §5.2: all workers are configured with 64 GB of memory.
        assert spec.memory_mb == 64 * 1024

    def test_total_mips(self):
        spec = MachineSpec(cores=4, core_mips=1000)
        assert spec.total_mips == 4000

    @pytest.mark.parametrize("field,value", [
        ("cores", 0), ("core_mips", -1), ("memory_mb", 0), ("threads", 0)])
    def test_invalid_specs_rejected(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            MachineSpec(**kwargs)


class TestCpuAccount:
    def test_single_full_load(self):
        acc = CpuAccount(cores=1)
        acc.on_start(0.0, 1.0)
        acc.on_finish(10.0, 1.0)
        assert acc.utilization_total(10.0) == pytest.approx(1.0)

    def test_fractional_load(self):
        acc = CpuAccount(cores=2)
        acc.on_start(0.0, 0.5)
        acc.on_finish(10.0, 0.5)
        # 0.5 core busy of 2 cores for the whole window → 25%.
        assert acc.utilization_total(10.0) == pytest.approx(0.25)

    def test_overlapping_loads_sum(self):
        acc = CpuAccount(cores=4)
        acc.on_start(0.0, 1.0)
        acc.on_start(5.0, 1.0)
        acc.on_finish(10.0, 1.0)
        acc.on_finish(10.0, 1.0)
        # 1 core for 5s + 2 cores for 5s = 15 core-s of 40.
        assert acc.utilization_total(10.0) == pytest.approx(15 / 40)

    def test_load_capped_at_core_count(self):
        acc = CpuAccount(cores=1)
        acc.on_start(0.0, 3.0)  # oversubscribed
        acc.on_finish(10.0, 3.0)
        assert acc.utilization_total(10.0) == pytest.approx(1.0)

    def test_negative_load_rejected(self):
        acc = CpuAccount(cores=1)
        with pytest.raises(ValueError):
            acc.on_start(0.0, -0.1)

    def test_unbalanced_finish_raises(self):
        acc = CpuAccount(cores=1)
        acc.on_start(0.0, 0.5)
        with pytest.raises(RuntimeError):
            acc.on_finish(1.0, 1.5)

    def test_take_window_resets(self):
        acc = CpuAccount(cores=1)
        acc.on_start(0.0, 1.0)
        assert acc.take_window(10.0) == pytest.approx(1.0)
        acc.on_finish(10.0, 1.0)
        assert acc.take_window(20.0) == pytest.approx(0.0)

    def test_take_window_partial(self):
        acc = CpuAccount(cores=1)
        acc.take_window(0.0)
        acc.on_start(5.0, 1.0)
        acc.on_finish(7.5, 1.0)
        assert acc.take_window(10.0) == pytest.approx(0.25)
