"""Tests for shape statistics and table builders."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    coefficient_of_variation,
    complementarity,
    normalize,
    peak_to_trough,
    pearson,
    smoothing_factor,
    table1_from_traces,
    table3_from_traces,
    time_to_reach,
)
from repro.workloads import CallTrace


class TestPeakToTrough:
    def test_simple_ratio(self):
        assert peak_to_trough([1.0, 2.0, 4.0]) == 4.0

    def test_zero_trough_infinite(self):
        assert peak_to_trough([0.0, 5.0]) == math.inf

    def test_trimming_removes_outliers(self):
        values = [10.0] * 98 + [1.0, 100.0]
        assert peak_to_trough(values, trim_fraction=0.02) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            peak_to_trough([])

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1))
    @settings(max_examples=50)
    def test_at_least_one(self, values):
        assert peak_to_trough(values) >= 1.0


class TestCorrelationAndComplementarity:
    def test_pearson_perfect(self):
        a = [1.0, 2.0, 3.0]
        assert pearson(a, a) == pytest.approx(1.0)
        assert pearson(a, [-x for x in a]) == pytest.approx(-1.0)

    def test_pearson_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_complementarity_flat_sum(self):
        reserved = [3.0, 1.0, 3.0, 1.0]
        opportunistic = [0.0, 2.0, 0.0, 2.0]
        # Sum is perfectly flat → ratio 0.
        assert complementarity(reserved, opportunistic) == pytest.approx(0.0)

    def test_complementarity_no_help(self):
        reserved = [3.0, 1.0, 3.0, 1.0]
        aligned = [3.0, 1.0, 3.0, 1.0]
        assert complementarity(reserved, aligned) == pytest.approx(1.0)

    def test_cv_of_constant_zero(self):
        assert coefficient_of_variation([5.0, 5.0]) == 0.0

    def test_smoothing_factor(self):
        received = [1.0, 4.3, 1.0, 2.0]
        executed = [1.0, 1.4, 1.2, 1.1]
        assert smoothing_factor(received, executed) == pytest.approx(
            4.3 / 1.4, rel=0.01)


class TestTimeToReach:
    def test_reaches_and_sustains(self):
        series = [(0.0, 0.1), (60.0, 0.5), (120.0, 0.95), (180.0, 0.97),
                  (240.0, 0.99)]
        assert time_to_reach(series, 0.95) == 120.0

    def test_transient_spike_ignored(self):
        series = [(0.0, 1.0), (60.0, 0.2), (120.0, 0.96), (180.0, 0.97),
                  (240.0, 0.98)]
        assert time_to_reach(series, 0.95, sustain_points=3) == 120.0

    def test_never_reached(self):
        assert time_to_reach([(0.0, 0.1)], 0.9) == math.inf

    def test_normalize(self):
        assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]
        assert normalize([0.0, 0.0]) == [0.0, 0.0]


def trace(function="f", trigger="queue", cpu=10.0, outcome="ok",
          mem=64.0, exec_s=1.0):
    return CallTrace(call_id=1, function=function, trigger=trigger,
                     criticality=1, quota_type="reserved", submit_time=0.0,
                     start_time_requested=0.0, dispatch_time=1.0,
                     finish_time=2.0, region_submitted="r",
                     region_executed="r", worker="w", outcome=outcome,
                     cpu_minstr=cpu, memory_mb=mem, exec_time_s=exec_s)


class TestTableBuilders:
    def test_table1_shares(self):
        traces = [trace(trigger="queue", cpu=100.0)] * 2 + \
                 [trace(trigger="event", cpu=1.0)] * 8
        rows = table1_from_traces(traces, {"queue": 89, "event": 8,
                                           "timer": 3})
        by_name = {r[0]: r for r in rows}
        assert by_name["queue-triggered"][1] == pytest.approx(89.0)
        assert by_name["event-triggered"][2] == pytest.approx(80.0)
        # Compute share dominated by queue (2×100 vs 8×1).
        assert by_name["queue-triggered"][3] > 90.0

    def test_table1_ignores_failures(self):
        traces = [trace(outcome="error")] * 5 + [trace(trigger="event")]
        rows = table1_from_traces(traces, {"queue": 1, "event": 1,
                                           "timer": 1})
        by_name = {r[0]: r for r in rows}
        assert by_name["event-triggered"][2] == pytest.approx(100.0)

    def test_table3_percentiles(self):
        traces = [trace(cpu=float(i)) for i in range(1, 101)]
        table = table3_from_traces(traces, percentiles=(50, 99))
        assert table["queue"]["cpu"] == [50.0, 99.0]
