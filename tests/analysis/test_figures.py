"""Tests for the figure-series builders against a small live platform."""

import math

import pytest

from repro import FunctionSpec, PlatformParams, Simulator, XFaaS, build_topology
from repro.analysis import (
    backpressure_series,
    distinct_functions_percentiles,
    fleet_utilization_series,
    quota_cpu_series,
    received_vs_executed,
    region_utilization_averages,
    worker_memory_series,
)
from repro.workloads import LogNormal, QuotaType, ResourceProfile


@pytest.fixture(scope="module")
def small_run():
    sim = Simulator(seed=8)
    topo = build_topology(n_regions=2, workers_per_unit=3)
    params = PlatformParams(memory_sample_interval_s=30.0,
                            distinct_window_s=300.0)
    platform = XFaaS(sim, topo, params)
    profile = ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(100.0), sigma=0.5),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
        exec_time_s=LogNormal(mu=math.log(0.5), sigma=0.5))
    platform.register_function(FunctionSpec(name="res", profile=profile))
    platform.register_function(FunctionSpec(
        name="opp", quota_type=QuotaType.OPPORTUNISTIC, profile=profile))
    task = sim.every(2.0, lambda: [platform.submit("res"),
                                   platform.submit("opp")])
    sim.run_until(1800.0)
    task.cancel()
    sim.run_until(2400.0)
    return sim, platform


class TestFigureBuilders:
    def test_received_vs_executed_lengths_match(self, small_run):
        _, platform = small_run
        received, executed = received_vs_executed(platform, 0, 2400.0)
        assert len(received) == len(executed)
        assert sum(received) >= sum(executed) > 0

    def test_region_utilization_averages(self, small_run):
        _, platform = small_run
        utils = region_utilization_averages(platform, 60.0, 2400.0)
        assert set(utils) == set(platform.topology.region_names)
        assert all(0.0 <= u <= 1.0 for u in utils.values())

    def test_fleet_utilization_series(self, small_run):
        _, platform = small_run
        series = fleet_utilization_series(platform, 60.0, 2400.0, step=60.0)
        assert len(series) >= 30
        assert all(0.0 <= v <= 1.0 for _, v in series)

    def test_quota_cpu_series_both_classes(self, small_run):
        _, platform = small_run
        reserved, opportunistic = quota_cpu_series(platform, 0, 2400.0)
        assert sum(reserved) > 0
        assert sum(opportunistic) > 0
        assert len(reserved) == len(opportunistic)

    def test_distinct_functions_percentiles(self, small_run):
        _, platform = small_run
        p50, p95 = distinct_functions_percentiles(platform)
        assert 1 <= p50 <= p95 <= 2

    def test_worker_memory_series_positive(self, small_run):
        _, platform = small_run
        series = worker_memory_series(platform, 60.0, 2400.0, step=120.0)
        assert all(v > 0 for _, v in series)

    def test_backpressure_series_empty_without_downstream(self, small_run):
        _, platform = small_run
        assert backpressure_series(platform, "tao") == []
