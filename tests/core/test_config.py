"""Tests for the Configerator-style config system (§4.1/§4.3)."""

import pytest

from repro.core import CachedConfig, ConfigStore
from repro.sim import Simulator


class TestConfigStore:
    def test_value_invisible_before_propagation(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=5.0)
        store.publish("k", 1)
        assert store.get("k", default="none") == "none"
        sim.run_until(5.0)
        assert store.get("k") == 1

    def test_versions_increment(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=0.0)
        assert store.publish("k", "a") == 1
        assert store.publish("k", "b") == 2
        sim.run_until(1.0)
        assert store.version("k") == 2
        assert store.get("k") == "b"

    def test_subscription_fires_on_visibility(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=2.0)
        seen = []
        store.subscribe("k", lambda key, value: seen.append((sim.now, value)))
        store.publish("k", 42)
        sim.run_until(10.0)
        assert seen == [(2.0, 42)]

    def test_latest_visible_wins(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=10.0)
        store.publish("k", "first")
        sim.run_until(5.0)
        store.publish("k", "second")
        sim.run_until(12.0)
        assert store.get("k") == "first"   # second not yet visible
        sim.run_until(16.0)
        assert store.get("k") == "second"

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ConfigStore(Simulator(), propagation_delay_s=-1)


class TestCachedConfig:
    def test_default_until_refresh(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=0.0)
        cache = CachedConfig(sim, store, "k", default="d",
                             refresh_interval_s=10.0)
        assert cache.value == "d"
        store.publish("k", "live")
        sim.run_until(15.0)
        assert cache.value == "live"

    def test_survives_publisher_silence(self):
        # §4.1: cached configs keep working when controllers die.
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=0.0)
        store.publish("k", "v1")
        sim.run_until(1.0)
        cache = CachedConfig(sim, store, "k", default=None,
                             refresh_interval_s=5.0)
        assert cache.value == "v1"
        # No further publishes for a long time: value persists.
        sim.run_until(10_000.0)
        assert cache.value == "v1"

    def test_stop_freezes_cache(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=0.0)
        cache = CachedConfig(sim, store, "k", default=0,
                             refresh_interval_s=5.0)
        cache.stop()
        store.publish("k", 99)
        sim.run_until(100.0)
        assert cache.value == 0
