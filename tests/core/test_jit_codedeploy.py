"""Tests for the JIT warm-up model (Fig 12) and staged code rollout."""

import pytest

from repro.core import CodeDeployer, CodeVersion, JitParams, RolloutParams, RuntimeJit
from repro.sim import Simulator


class TestRuntimeJit:
    def test_fresh_runtime_is_warm(self):
        jit = RuntimeJit()
        assert jit.speed(0.0) == 1.0
        assert jit.warm

    def test_seeded_restart_ramps_in_3_minutes(self):
        # Figure 12: with seeder data, max RPS at T+180 s.
        jit = RuntimeJit()
        jit.restart(0.0, with_profile_data=True)
        assert jit.speed(0.0) == pytest.approx(0.30)
        assert jit.speed(90.0) < 1.0
        assert jit.speed(180.0) == 1.0
        assert jit.time_to_max(0.0) == pytest.approx(180.0)

    def test_unseeded_restart_takes_21_minutes(self):
        # Figure 12: without data, 21 minutes (1260 s) of profiling.
        jit = RuntimeJit()
        jit.restart(0.0, with_profile_data=False)
        assert jit.speed(180.0) < 1.0
        assert jit.speed(1259.0) < 1.0
        assert jit.speed(1260.0) == 1.0

    def test_seeded_much_faster_than_unseeded(self):
        params = JitParams()
        assert params.unseeded_ramp_s / params.seeded_ramp_s == pytest.approx(
            7.0)  # 21 min / 3 min

    def test_profile_arrival_mid_ramp_shortens(self):
        jit = RuntimeJit()
        jit.restart(0.0, with_profile_data=False)
        jit.receive_profile_data(300.0)
        # Now finishes at 300 + 180 = 480 instead of 1260.
        assert jit.speed(480.0) == 1.0
        assert jit.speed(400.0) < 1.0

    def test_profile_after_warm_is_noop(self):
        jit = RuntimeJit()
        jit.restart(0.0, with_profile_data=False)
        jit.receive_profile_data(2000.0)
        assert jit.speed(2000.0) == 1.0

    def test_speed_monotone_during_ramp(self):
        jit = RuntimeJit()
        jit.restart(0.0, with_profile_data=False)
        speeds = [jit.speed(t) for t in range(0, 1400, 50)]
        assert speeds == sorted(speeds)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            JitParams(floor=0.0)
        with pytest.raises(ValueError):
            JitParams(seeded_ramp_s=2000.0, unseeded_ramp_s=100.0)


class _FakeWorker:
    def __init__(self):
        self.versions = []
        self.profile_received = 0
        self.locality_group = 0
        self.code_version = CodeVersion(version=1, released_at=0.0)

    def adopt_version(self, version, seeded):
        self.versions.append((version.version, seeded))
        self.code_version = version

    def receive_profile_data(self):
        self.profile_received += 1


class TestCodeDeployer:
    def _deploy(self, n_workers=100, cooperative=True):
        sim = Simulator(seed=1)
        deployer = CodeDeployer(
            sim, RolloutParams(push_interval_s=3 * 3600.0,
                               canary_workers=2, phase2_fraction=0.02),
            cooperative_jit=cooperative)
        workers = [_FakeWorker() for _ in range(n_workers)]
        for w in workers:
            deployer.register_worker(w)
        return sim, deployer, workers

    def test_push_reaches_all_workers(self):
        sim, deployer, workers = self._deploy()
        deployer.push_new_version()
        sim.run_until(2 * 3600.0)
        assert all(w.versions and w.versions[-1][0] == 2 for w in workers)

    def test_three_phases_staged_in_time(self):
        sim, deployer, workers = self._deploy()
        deployer.push_new_version()
        p = deployer.params
        sim.run_until(p.distribution_delay_s + 1.0)
        adopted = sum(1 for w in workers if w.versions)
        assert adopted == 2  # canaries only
        sim.run_until(p.distribution_delay_s + p.phase1_duration_s + 1.0)
        adopted = sum(1 for w in workers if w.versions)
        assert adopted == 4  # + 2% of 100
        sim.run_until(2 * 3600.0)
        assert sum(1 for w in workers if w.versions) == 100

    def test_phase3_workers_seeded_with_cooperative_jit(self):
        sim, deployer, workers = self._deploy(cooperative=True)
        deployer.push_new_version()
        sim.run_until(2 * 3600.0)
        seeded_flags = [w.versions[-1][1] for w in workers]
        assert sum(seeded_flags) >= 90  # phase-3 majority seeded

    def test_no_cooperative_jit_all_unseeded(self):
        sim, deployer, workers = self._deploy(cooperative=False)
        deployer.push_new_version()
        sim.run_until(2 * 3600.0)
        assert not any(seeded for w in workers for _, seeded in w.versions)
        assert all(w.profile_received == 0 for w in workers)

    def test_periodic_pushes(self):
        sim, deployer, workers = self._deploy()
        deployer.start()
        sim.run_until(9.5 * 3600.0)  # 3 push intervals
        assert deployer.current_version.version == 4

    def test_stale_version_ignored_by_worker_model(self):
        sim, deployer, workers = self._deploy()
        from repro.cluster import MachineSpec
        from repro.core import Worker
        worker = Worker(sim, "w", "r")
        v_old = CodeVersion(version=0, released_at=0.0)
        worker.adopt_version(v_old, seeded=False)
        assert worker.code_version.version == 1  # unchanged
