"""Tests for the Global Traffic Conductor's matrix computation (§4.4)."""

import pytest

from repro.cluster import NetworkModel
from repro.core import compute_traffic_matrix


def net(n=4):
    return NetworkModel([f"r{i}" for i in range(n)])


def row_sums(matrix):
    return {i: sum(row.values()) for i, row in matrix.items()}


class TestComputeTrafficMatrix:
    def test_balanced_load_stays_identity(self):
        # §4.4: T starts as identity; no overload → no shifting.
        backlog = {"r0": 100.0, "r1": 100.0}
        capacity = {"r0": 100.0, "r1": 100.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(2))
        assert matrix["r0"] == {"r0": 1.0}
        assert matrix["r1"] == {"r1": 1.0}

    def test_overloaded_region_exports_to_spare(self):
        backlog = {"r0": 300.0, "r1": 0.0}
        capacity = {"r0": 100.0, "r1": 100.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(2))
        # r1 should pull roughly half of r0's backlog.
        assert matrix["r1"].get("r0", 0.0) > 0.9
        assert matrix["r0"]["r0"] < 1.0 or True  # r0 keeps its share
        # r0's row keeps pulling only locally.
        assert matrix["r0"] == {"r0": 1.0}

    def test_rows_sum_to_one(self):
        backlog = {"r0": 500.0, "r1": 10.0, "r2": 10.0, "r3": 200.0}
        capacity = {"r0": 50.0, "r1": 100.0, "r2": 100.0, "r3": 100.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(4))
        for region, total in row_sums(matrix).items():
            assert total == pytest.approx(1.0), region

    def test_nearby_regions_preferred(self):
        # Overload in r0; r1 (1 hop) should absorb before r2 (2 hops).
        backlog = {"r0": 400.0, "r1": 0.0, "r2": 0.0, "r3": 0.0,
                   "r4": 0.0}
        capacity = {r: 100.0 for r in ("r0", "r1", "r2", "r3", "r4")}
        matrix = compute_traffic_matrix(backlog, capacity, net(5))
        import_r1 = matrix["r1"].get("r0", 0.0)
        import_r2 = matrix["r2"].get("r0", 0.0)
        assert import_r1 > 0
        # Ring neighbours of r0 are r1 and r4 (distance 1); they fill first.
        assert matrix["r4"].get("r0", 0.0) > 0

    def test_total_overload_leaves_excess_local(self):
        # Demand exceeds global capacity: all regions end up loaded; no
        # crash, rows still normalized.
        backlog = {"r0": 1000.0, "r1": 1000.0}
        capacity = {"r0": 1.0, "r1": 1.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(2))
        for total in row_sums(matrix).values():
            assert total == pytest.approx(1.0)

    def test_zero_backlog_identity(self):
        matrix = compute_traffic_matrix({"r0": 0.0, "r1": 0.0},
                                        {"r0": 10.0, "r1": 10.0}, net(2))
        assert matrix["r0"] == {"r0": 1.0}

    def test_zero_capacity_region_exports_everything(self):
        backlog = {"r0": 100.0, "r1": 0.0}
        capacity = {"r0": 0.0, "r1": 100.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(2))
        assert matrix["r1"].get("r0", 0.0) == pytest.approx(1.0)

    def test_conservation_of_backlog(self):
        # Every unit of backlog is pulled by exactly one region.
        backlog = {"r0": 300.0, "r1": 50.0, "r2": 10.0}
        capacity = {"r0": 50.0, "r1": 100.0, "r2": 200.0}
        matrix = compute_traffic_matrix(backlog, capacity, net(3))
        # Reconstruct pull volumes: volume_i × T[i][j] summed over i = backlog_j.
        # Volumes aren't in the matrix, so instead check every region's
        # backlog has at least one puller.
        for j, b in backlog.items():
            if b > 0:
                pulled = sum(1 for i in matrix if matrix[i].get(j, 0) > 0)
                assert pulled >= 1
