"""Tests for WorkerLB power-of-two dispatch and the Locality Optimizer."""

import math

import pytest

from repro.cluster import MachineSpec
from repro.core import (
    ConfigStore,
    FunctionCall,
    LocalityOptimizer,
    LocalityParams,
    Worker,
    WorkerLB,
)
from repro.core.call import CallIdAllocator
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile(mem=64.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=0.0, sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=0.0, sigma=0.0))


_ids = CallIdAllocator()


def make_call(sim, name="f", mem=64.0, ephemeral=False):
    spec = FunctionSpec(name=name, profile=profile(mem), ephemeral=ephemeral)
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r", call_id=_ids.allocate())


def make_workers(sim, n, threads=4):
    machine = MachineSpec(cores=4, core_mips=1000, threads=threads)
    return [Worker(sim, f"w{i}", "r", machine=machine) for i in range(n)]


class TestWorkerLB:
    def _lb(self, sim, workers, n_groups=1, group_fn=None):
        return WorkerLB(sim, "r", workers,
                        group_of_function=group_fn or (lambda f: 0),
                        n_groups_fn=lambda: n_groups)

    def test_dispatch_reaches_a_worker(self):
        sim = Simulator(seed=1)
        workers = make_workers(sim, 4)
        lb = self._lb(sim, workers)
        assert lb.dispatch(make_call(sim))
        assert sum(w.running_count for w in workers) == 1

    def test_prefers_less_loaded_worker(self):
        sim = Simulator(seed=2)
        workers = make_workers(sim, 2, threads=16)
        lb = self._lb(sim, workers)
        # Saturate worker 0 with long calls.
        for i in range(8):
            workers[0].execute(make_call(sim, name=f"pre{i}"))
        placed = []
        for i in range(10):
            call = make_call(sim, name=f"new{i}")
            lb.dispatch(call)
            placed.append(call.worker_name)
        assert placed.count("w1") >= 8

    def test_group_restriction(self):
        sim = Simulator(seed=3)
        workers = make_workers(sim, 6)
        for i, w in enumerate(workers):
            w.locality_group = i % 2
        lb = self._lb(sim, workers, n_groups=2,
                      group_fn=lambda f: 1)
        for i in range(6):
            lb.dispatch(make_call(sim, name=f"f{i}"))
        even = [w for i, w in enumerate(workers) if w.locality_group == 0]
        odd = [w for i, w in enumerate(workers) if w.locality_group == 1]
        assert sum(w.running_count for w in even) == 0
        assert sum(w.running_count for w in odd) == 6

    def test_all_full_returns_false(self):
        sim = Simulator(seed=4)
        workers = make_workers(sim, 2, threads=1)
        lb = self._lb(sim, workers)
        assert lb.dispatch(make_call(sim, name="a"))
        assert lb.dispatch(make_call(sim, name="b"))
        assert not lb.dispatch(make_call(sim, name="c"))
        assert lb.reject_count == 1

    def test_empty_group_falls_back_to_pool(self):
        sim = Simulator(seed=5)
        workers = make_workers(sim, 2)
        for w in workers:
            w.locality_group = 0
        lb = self._lb(sim, workers, n_groups=4, group_fn=lambda f: 3)
        assert lb.dispatch(make_call(sim))

    def test_no_workers_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WorkerLB(sim, "r", [], lambda f: 0, lambda: 1)

    def test_pool_load_and_free_threads(self):
        sim = Simulator(seed=6)
        workers = make_workers(sim, 2, threads=4)
        lb = self._lb(sim, workers)
        assert lb.free_threads() == 8
        lb.dispatch(make_call(sim))
        assert lb.free_threads() == 7
        assert lb.pool_load() > 0


class TestLocalityOptimizer:
    def _optimizer(self, sim, enabled=True, n_groups=4):
        store = ConfigStore(sim, propagation_delay_s=0.0)
        return LocalityOptimizer(sim, store,
                                 LocalityParams(n_groups=n_groups),
                                 enabled=enabled)

    def test_disabled_single_group(self):
        sim = Simulator()
        opt = self._optimizer(sim, enabled=False)
        opt.register_function(FunctionSpec(name="f", profile=profile()))
        assert opt.n_groups == 1
        assert opt.group_of("f") == 0

    def test_memory_hungry_functions_spread(self):
        # §4.5.2: memory-hungry functions go to different groups.
        sim = Simulator()
        opt = self._optimizer(sim, n_groups=4)
        hogs = [FunctionSpec(name=f"hog{i}", profile=profile(mem=8192.0))
                for i in range(4)]
        for spec in hogs:
            opt.register_function(spec)
        groups = {opt.group_of(s.name) for s in hogs}
        assert len(groups) == 4

    def test_ephemeral_round_robin(self):
        # §4.5.2: Morphing-style ephemeral functions round-robin.
        sim = Simulator()
        opt = self._optimizer(sim, n_groups=3)
        specs = [FunctionSpec(name=f"m{i}", profile=profile(),
                              ephemeral=True) for i in range(6)]
        for spec in specs:
            opt.register_function(spec)
        groups = [opt.group_of(s.name) for s in specs]
        assert groups == [0, 1, 2, 0, 1, 2]

    def test_workers_spread_over_groups(self):
        sim = Simulator()
        opt = self._optimizer(sim, n_groups=2)
        workers = make_workers(sim, 6)
        for w in workers:
            opt.register_worker(w)
        counts = [sum(1 for w in workers if w.locality_group == g)
                  for g in range(2)]
        assert counts == [3, 3]

    def test_reassign_balances_memory(self):
        sim = Simulator()
        opt = self._optimizer(sim, n_groups=2)
        for i in range(8):
            opt.register_function(
                FunctionSpec(name=f"f{i}", profile=profile(mem=100.0)))
        opt.reassign()
        loads = opt._group_memory_loads()
        assert max(loads) - min(loads) <= 100.0

    def test_rebalance_moves_worker_to_hot_group(self):
        sim = Simulator(seed=9)
        opt = self._optimizer(sim, n_groups=2)
        workers = make_workers(sim, 4, threads=4)
        for w in workers:
            opt.register_worker(w)
        # Load only group 0's workers.
        for w in workers:
            if w.locality_group == 0:
                for i in range(3):
                    w.execute(make_call(sim, name=f"x{i}"))
        before = sum(1 for w in workers if w.locality_group == 0)
        opt.rebalance_workers()
        after = sum(1 for w in workers if w.locality_group == 0)
        assert after == before + 1
        assert opt.worker_moves == 1

    def test_register_idempotent(self):
        sim = Simulator()
        opt = self._optimizer(sim)
        spec = FunctionSpec(name="f", profile=profile())
        opt.register_function(spec)
        g = opt.group_of("f")
        opt.register_function(spec)
        assert opt.group_of("f") == g
