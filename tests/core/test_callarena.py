"""Tests for the call-record arena: recycling, generations, view parity."""

import math

import pytest

from repro.core.call import (
    CallArena,
    CallIdAllocator,
    CallOutcome,
    CallState,
    FunctionCall,
    StaleCallError,
)
from repro.workloads import Criticality, FunctionSpec

_ids = CallIdAllocator()


def make_call(arena, name="f", submit=0.0, pinned=False, **kwargs):
    spec = FunctionSpec(name=name, criticality=Criticality.NORMAL,
                        deadline_s=60.0)
    kwargs.setdefault("call_id", _ids.allocate())
    return FunctionCall(spec=spec, submit_time=submit, start_time=submit,
                        region_submitted="r0", arena=arena, pinned=pinned,
                        **kwargs)


class TestSlotRecycling:
    def test_fresh_rows_are_sequential(self):
        arena = CallArena()
        calls = [make_call(arena) for _ in range(5)]
        assert [c.slot for c in calls] == [0, 1, 2, 3, 4]
        assert len(arena) == 5
        assert arena.live_count() == 5

    def test_freed_slots_reused_in_release_order(self):
        arena = CallArena()
        calls = [make_call(arena) for _ in range(6)]
        # Release out of slot order: reuse must follow *release* order
        # (FIFO freelist), not slot order — that is what makes slot
        # assignment a pure function of the event order.
        for i in (3, 1, 4):
            arena.release(calls[i].slot, calls[i].gen)
        replacements = [make_call(arena) for _ in range(4)]
        assert [c.slot for c in replacements] == [3, 1, 4, 6]
        assert arena.released_total == 3
        assert arena.allocated_total == 10

    def test_recycled_slot_resets_every_column(self):
        arena = CallArena()
        old = make_call(arena, name="old", submit=5.0)
        old.dispatch_time = 6.0
        old.finish_time = 7.0
        old.worker_name = "w-1"
        old.scheduler_region = "r9"
        old.outcome = CallOutcome.OK
        old.args_spilled = True
        slot = old.slot
        arena.release(slot, old.gen)
        fresh = make_call(arena, name="new", submit=10.0)
        assert fresh.slot == slot
        assert fresh.dispatch_time is None
        assert fresh.finish_time is None
        assert fresh.worker_name is None
        assert fresh.scheduler_region is None
        assert fresh.outcome is None
        assert fresh.args_spilled is False
        assert fresh.submit_time == 10.0

    def test_pinned_rows_never_recycled(self):
        arena = CallArena()
        call = make_call(arena, pinned=True)
        assert arena.release(call.slot, call.gen) is False
        assert arena.free_count() == 0
        # The view stays valid after the no-op release.
        assert call.state is CallState.SUBMITTED


class TestGenerationGuard:
    def test_stale_view_read_raises(self):
        arena = CallArena()
        call = make_call(arena)
        arena.release(call.slot, call.gen)
        with pytest.raises(StaleCallError):
            call.submit_time
        with pytest.raises(StaleCallError):
            call.state
        with pytest.raises(StaleCallError):
            call.worker_name

    def test_stale_view_write_raises(self):
        arena = CallArena()
        call = make_call(arena)
        arena.release(call.slot, call.gen)
        with pytest.raises(StaleCallError):
            call.dispatch_time = 1.0
        with pytest.raises(StaleCallError):
            call.state = CallState.RUNNING

    def test_double_release_raises(self):
        arena = CallArena()
        call = make_call(arena)
        arena.release(call.slot, call.gen)
        with pytest.raises(StaleCallError):
            arena.release(call.slot, call.gen)

    def test_new_occupant_unaffected_by_stale_view(self):
        arena = CallArena()
        old = make_call(arena, submit=1.0)
        slot = old.slot
        arena.release(slot, old.gen)
        fresh = make_call(arena, submit=2.0)
        assert fresh.slot == slot
        with pytest.raises(StaleCallError):
            old.submit_time
        assert fresh.submit_time == 2.0


class TestViewColumnParity:
    def test_lifecycle_fields_round_trip_through_columns(self):
        """Execute / complete / interrupt / recover, view vs raw columns."""
        arena = CallArena()
        call = make_call(arena, submit=3.0)
        i = call.slot

        # dispatch (execute path)
        call.state = CallState.RUNNING
        call.dispatch_time = 4.25
        call.worker_name = "w-7"
        call.scheduler_region = "r1"
        assert arena.state[i] == CallState.RUNNING.code
        assert arena.dispatch_time[i] == 4.25
        assert arena.worker_name[i] == "w-7"
        assert arena.regions[arena.scheduler_region[i]] == "r1"

        # interrupt (worker failure): back to QUEUED with a retry
        call.state = CallState.QUEUED
        call.attempts += 1
        call.worker_name = None
        assert arena.attempts[i] == 1
        assert arena.worker_name[i] is None
        assert call.attempts == 1

        # recover + complete
        call.state = CallState.RUNNING
        call.worker_name = "w-9"
        call.state = CallState.COMPLETED
        call.outcome = CallOutcome.OK
        call.finish_time = 9.5
        assert arena.state[i] == CallState.COMPLETED.code
        assert arena.outcome[i] == CallOutcome.OK.code
        assert arena.finish_time[i] == 9.5
        # Enum round-trip preserves identity (is-comparisons everywhere).
        assert call.state is CallState.COMPLETED
        assert call.outcome is CallOutcome.OK

    def test_unset_optionals_are_nan_backed(self):
        arena = CallArena()
        call = make_call(arena)
        assert math.isnan(arena.dispatch_time[call.slot])
        assert call.dispatch_time is None

    def test_trace_snapshot_matches_view_fields(self):
        arena = CallArena()
        call = make_call(arena, name="g", submit=2.0)
        call.dispatch_time = 3.0
        call.finish_time = 4.0
        call.worker_name = "w-0"
        call.scheduler_region = "r2"
        snap = call.trace_snapshot("ok")
        assert snap[0] == call.call_id
        assert "g" in snap
        assert 2.0 in snap and 3.0 in snap and 4.0 in snap
        assert "w-0" in snap and "r2" in snap


class TestRunParity:
    def test_two_quick_runs_one_process_bit_identical(self):
        """Recycling must not leak state between runs in one process."""
        from repro.scenarios import build_dayrun
        kwargs = dict(horizon_s=200.0, n_functions=12, n_regions=3,
                      total_rate=4.0)
        first = build_dayrun(**kwargs)
        second = build_dayrun(**kwargs)
        d1 = first.platform.traces.digest()
        d2 = second.platform.traces.digest()
        assert d1 == d2
        # And the runs actually exercised the arena recycler.
        assert first.platform.arena.released_total > 0
