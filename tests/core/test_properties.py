"""Property-based tests of core invariants (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import NetworkModel
from repro.core import FuncBuffer, FunctionCall, RunQ, TokenBucket
from repro.core.call import CallIdAllocator
from repro.core.gtc import compute_traffic_matrix
from repro.workloads import Criticality, FunctionSpec

criticalities = st.sampled_from(list(Criticality))
deadlines = st.floats(min_value=1.0, max_value=86_400.0)


_ids = CallIdAllocator()


def _call(criticality, deadline):
    spec = FunctionSpec(name="f", criticality=criticality,
                        deadline_s=deadline)
    return FunctionCall(spec=spec, submit_time=0.0, start_time=0.0,
                        region_submitted="r", call_id=_ids.allocate())


class TestFuncBufferProperties:
    @given(st.lists(st.tuples(criticalities, deadlines), min_size=1,
                    max_size=40))
    @settings(max_examples=60)
    def test_pop_order_is_criticality_then_deadline(self, items):
        buf = FuncBuffer("f")
        for criticality, deadline in items:
            buf.push(_call(criticality, deadline))
        popped = []
        while len(buf):
            popped.append(buf.pop())
        keys = [(-c.criticality, c.deadline_time) for c in popped]
        assert keys == sorted(keys)

    @given(st.lists(st.tuples(criticalities, deadlines), min_size=1,
                    max_size=40))
    @settings(max_examples=30)
    def test_push_pop_conserves_calls(self, items):
        buf = FuncBuffer("f")
        calls = [_call(c, d) for c, d in items]
        for call in calls:
            buf.push(call)
        popped = set()
        while len(buf):
            popped.add(buf.pop().call_id)
        assert popped == {c.call_id for c in calls}


class TestRunQProperties:
    @given(st.lists(st.tuples(criticalities, deadlines), min_size=1,
                    max_size=30))
    @settings(max_examples=40)
    def test_priority_pop(self, items):
        q = RunQ(capacity=100)
        for criticality, deadline in items:
            q.push(_call(criticality, deadline))
        out = []
        while True:
            call = q.pop()
            if call is None:
                break
            out.append((-call.criticality, call.deadline_time))
        assert out == sorted(out)


class TestTokenBucketProperties:
    @given(st.floats(min_value=0.01, max_value=1000.0),
           st.floats(min_value=0.5, max_value=60.0),
           st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_never_negative_and_capacity_bounded(self, rate, burst, gaps):
        bucket = TokenBucket(rate=rate, burst_s=burst)
        t = 0.0
        for gap in gaps:
            t += gap
            bucket.try_take(t)
            assert bucket.tokens >= 0.0
            assert bucket.tokens <= bucket.capacity + 1e-9

    @given(st.floats(min_value=0.5, max_value=100.0),
           st.integers(min_value=1, max_value=400))
    @settings(max_examples=40)
    def test_long_run_rate_respected(self, rate, n_attempts):
        # Over a horizon, grants never exceed capacity + rate × horizon.
        bucket = TokenBucket(rate=rate, burst_s=5.0)
        horizon = 30.0
        grants = 0
        for i in range(n_attempts):
            t = horizon * i / n_attempts
            if bucket.try_take(t):
                grants += 1
        assert grants <= bucket.capacity + rate * horizon + 1


class TestTrafficMatrixProperties:
    region_names = [f"r{i}" for i in range(5)]

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5),
                    min_size=5, max_size=5),
           st.lists(st.floats(min_value=1.0, max_value=1e4),
                    min_size=5, max_size=5))
    @settings(max_examples=60)
    def test_rows_normalized_and_nonnegative(self, backlogs, capacities):
        net = NetworkModel(self.region_names)
        matrix = compute_traffic_matrix(
            dict(zip(self.region_names, backlogs)),
            dict(zip(self.region_names, capacities)), net)
        for region, row in matrix.items():
            assert all(f >= -1e-12 for f in row.values())
            assert math.isclose(sum(row.values()), 1.0, rel_tol=1e-6)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5),
                    min_size=5, max_size=5))
    @settings(max_examples=40)
    def test_equal_capacity_no_self_abandonment(self, backlogs):
        # A region with backlog always keeps pulling some of its own
        # work or exports it fully to others; nothing is dropped.
        net = NetworkModel(self.region_names)
        capacities = {r: 100.0 for r in self.region_names}
        backlog = dict(zip(self.region_names, backlogs))
        matrix = compute_traffic_matrix(backlog, capacities, net)
        for j, b in backlog.items():
            if b > 1e-6:  # subnormal backlogs underflow in row division
                pulled = sum(matrix[i].get(j, 0.0) for i in matrix)
                assert pulled > 0
