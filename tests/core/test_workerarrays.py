"""WorkerArrays view consistency: SoA columns vs thin Worker views.

The struct-of-arrays refactor split each worker's hot state between a
shared per-region column store (read by the dispatch fast path) and the
``Worker`` object that owns one row (read by cold paths).  These tests
pin the contract that both sides always observe the same state —
admission decisions, load scores, memory budget, online flag, and
locality group must agree whether computed from the columns or through
the view.
"""

import math

from repro.cluster import MachineSpec
from repro.core import Worker, WorkerArrays, WorkerParams
from repro.core.call import CallIdAllocator, FunctionCall
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile

_ids = CallIdAllocator()


def fixed_profile(cpu=100.0, mem=64.0, exec_s=1.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


def make_call(sim, name="f", cpu=100.0, mem=64.0, exec_s=1.0):
    spec = FunctionSpec(name=name, profile=fixed_profile(cpu, mem, exec_s),
                        code_size_mb=5.0)
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r", source_level=0,
                        call_id=_ids.allocate())


def make_worker(sim, arrays=None, name="w0", threads=8, cores=4,
                memory_mb=64 * 1024.0):
    machine = MachineSpec(cores=cores, core_mips=1000.0, threads=threads,
                          memory_mb=memory_mb)
    return Worker(sim, name, "r", machine=machine, params=WorkerParams(),
                  arrays=arrays)


def view_score(arr, i):
    """The dispatch loop's inlined load score, recomputed from columns."""
    s = arr.running[i] / arr.threads[i]
    s = max(s, arr.cpu_load[i] / arr.cores[i])
    return max(s, arr.mem_mb[i] / arr.memory_mb[i])


class TestSharedStoreLayout:
    def test_workers_own_consecutive_rows(self):
        sim = Simulator()
        store = WorkerArrays()
        ws = [make_worker(sim, arrays=store, name=f"w{i}") for i in range(5)]
        assert len(store) == 5
        for i, w in enumerate(ws):
            assert w._arrays is store
            assert w._index == i
            assert store.workers[i] is w
        assert store.capacity_threads() == 5 * 8
        assert store.free_threads() == 5 * 8

    def test_private_store_by_default(self):
        sim = Simulator()
        w = make_worker(sim)
        assert len(w._arrays) == 1
        assert w._arrays.workers[0] is w

    def test_adopt_moves_row_and_running_total(self):
        sim = Simulator()
        w = make_worker(sim)
        w.execute(make_call(sim))
        old = w._arrays
        assert old.total_running == 1
        store = WorkerArrays()
        idx = store.adopt(w)
        assert w._arrays is store and w._index == idx
        assert store.total_running == 1
        assert old.total_running == 0
        assert store.running[idx] == 1
        # Completion after adoption lands in the new store.
        sim.run_until(10.0)
        assert store.total_running == 0
        assert store.running[idx] == 0

    def test_adopt_into_own_store_is_identity(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        assert store.adopt(w) == w._index
        assert len(store) == 1


class TestColumnViewConsistency:
    def test_running_and_cpu_track_execute_complete(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        i = w._index
        assert store.running[i] == 0
        assert w.execute(make_call(sim, exec_s=2.0))
        assert store.running[i] == w.running_count == 1
        assert store.cpu_load[i] == w.cpu_load
        assert store.total_running == 1
        sim.run_until(10.0)
        assert store.running[i] == w.running_count == 0
        assert store.cpu_load[i] == w.cpu_load == 0.0
        assert store.total_running == 0

    def test_memory_column_equals_view_memory(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        i = w._index
        w.execute(make_call(sim, mem=512.0))
        assert store.mem_mb[i] == w.memory_in_use_mb
        sim.run_until(10.0)
        # Resident set (code cache) persists after the call finishes and
        # both sides see it.
        assert store.mem_mb[i] == w.memory_in_use_mb

    def test_load_score_matches_inlined_column_score(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        for k in range(3):
            w.execute(make_call(sim, name=f"f{k}", cpu=4000.0, mem=256.0,
                                exec_s=5.0))
        assert w.load_score() == view_score(store, w._index)

    def test_admission_flips_exactly_when_thread_column_fills(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store, threads=2)
        i = w._index
        probe = make_call(sim, name="probe", cpu=1.0, mem=1.0)
        assert w.can_admit(probe)
        w.execute(make_call(sim, name="a", exec_s=50.0))
        assert store.running[i] < store.threads[i]
        assert w.can_admit(probe)
        w.execute(make_call(sim, name="b", exec_s=50.0))
        assert store.running[i] == store.threads[i]
        assert not w.can_admit(probe)

    def test_memory_budget_refusal_reads_column(self):
        # 64 GiB machine, 0.92 headroom, 4 GiB runtime baseline: one
        # 50 000 MB call leaves room for a small call but not a second
        # large one.  Projection reads the mem column, not the view.
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        w.execute(make_call(sim, name="big", mem=50_000.0, exec_s=50.0))
        assert not w.can_admit(make_call(sim, name="big2", mem=50_000.0))
        assert w.can_admit(make_call(sim, name="small", mem=64.0))

    def test_online_flag_roundtrips_through_column(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        i = w._index
        assert w.online and store.online[i] == 1
        w.online = False
        assert store.online[i] == 0
        assert not w.can_admit(make_call(sim))
        store.online[i] = 1
        assert w.online

    def test_locality_group_roundtrips_through_column(self):
        sim = Simulator()
        store = WorkerArrays()
        ws = [make_worker(sim, arrays=store, name=f"w{i}") for i in range(4)]
        ws[2].locality_group = 3
        assert store.group[2] == 3
        store.group[1] = 7
        assert ws[1].locality_group == 7
        assert [w.locality_group for w in ws] == list(store.group)


class TestFailRecover:
    def test_fail_interrupt_resyncs_columns(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        i = w._index
        for k in range(3):
            w.execute(make_call(sim, name=f"f{k}", exec_s=100.0))
        assert store.total_running == 3
        w.fail()
        assert not w.online and store.online[i] == 0
        assert store.running[i] == w.running_count == 0
        assert store.cpu_load[i] == w.cpu_load == 0.0
        assert store.total_running == 0

    def test_recover_resyncs_memory_column(self):
        sim = Simulator()
        store = WorkerArrays()
        w = make_worker(sim, arrays=store)
        i = w._index
        w.execute(make_call(sim, mem=256.0, exec_s=100.0))
        w.fail()
        w.recover()
        assert w.online and store.online[i] == 1
        assert store.mem_mb[i] == w.memory_in_use_mb
        # Recovered worker admits again through the same columns.
        assert w.can_admit(make_call(sim, name="after"))
