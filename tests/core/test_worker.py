"""Tests for the worker's universal-worker behaviour (§4.5)."""

import math

import pytest

from repro.cluster import MachineSpec
from repro.core import CallOutcome, FunctionCall, Worker, WorkerParams
from repro.core.call import CallIdAllocator
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def fixed_profile(cpu=100.0, mem=64.0, exec_s=1.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


_ids = CallIdAllocator()


def make_call(sim, name="f", cpu=100.0, mem=64.0, exec_s=1.0,
              source_level=0, isolation_level=0, code_mb=5.0):
    spec = FunctionSpec(name=name, profile=fixed_profile(cpu, mem, exec_s),
                        isolation_level=isolation_level,
                        code_size_mb=code_mb)
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r", source_level=source_level,
                        call_id=_ids.allocate())


def make_worker(sim, cores=4, core_mips=1000.0, threads=8,
                memory_mb=64 * 1024.0, on_finish=None, **params):
    machine = MachineSpec(cores=cores, core_mips=core_mips, threads=threads,
                          memory_mb=memory_mb)
    return Worker(sim, "w0", "r", machine=machine,
                  params=WorkerParams(**params), on_finish=on_finish)


class TestExecution:
    def test_call_completes_after_duration(self):
        sim = Simulator()
        done = []
        worker = make_worker(sim, on_finish=lambda c, o: done.append((c, o)))
        call = make_call(sim, exec_s=2.0, cpu=1.0)
        assert worker.execute(call)
        sim.run_until(10.0)
        assert len(done) == 1
        assert done[0][1] is CallOutcome.OK
        # exec 2.0 s + 0.1 s first-call SSD code load.
        assert call.finish_time == pytest.approx(2.1)

    def test_no_cold_start_second_call(self):
        # Universal worker: only the first call pays the SSD code load.
        sim = Simulator()
        worker = make_worker(sim)
        first = make_call(sim, exec_s=1.0, cpu=1.0)
        worker.execute(first)
        sim.run_until(5.0)
        second = make_call(sim, exec_s=1.0, cpu=1.0)
        worker.execute(second)
        sim.run_until(10.0)
        assert second.finish_time - second.dispatch_time == pytest.approx(1.0)

    def test_cpu_bound_call_duration_stretches(self):
        sim = Simulator()
        worker = make_worker(sim, core_mips=1000.0)
        call = make_call(sim, cpu=5000.0, exec_s=0.5)  # 5 s of CPU
        worker.execute(call)
        sim.run_until(20.0)
        assert call.finish_time == pytest.approx(5.0 + 0.1)

    def test_jit_slowdown_after_restart(self):
        sim = Simulator()
        worker = make_worker(sim, core_mips=1000.0)
        worker.jit.restart(0.0, with_profile_data=True)  # speed 0.3 at t=0
        call = make_call(sim, cpu=3000.0, exec_s=0.1)
        worker.execute(call)
        sim.run_until(60.0)
        # CPU time 3 s at full speed → 10 s at floor speed 0.3.
        assert call.finish_time == pytest.approx(10.0 + 0.1)

    def test_concurrent_calls_different_functions(self):
        # §4.5: one runtime executes different functions concurrently.
        sim = Simulator()
        done = []
        worker = make_worker(sim, on_finish=lambda c, o: done.append(c))
        worker.execute(make_call(sim, name="a", exec_s=1.0, cpu=1.0))
        worker.execute(make_call(sim, name="b", exec_s=1.0, cpu=1.0))
        assert worker.running_count == 2
        sim.run_until(5.0)
        assert len(done) == 2

    def test_utilization_accounting(self):
        sim = Simulator()
        worker = make_worker(sim, cores=2, core_mips=1000.0)
        # 2 s CPU over 2 s wall = 1 core busy for ~2 s of a 4 core-s window.
        call = make_call(sim, cpu=2000.0, exec_s=2.0)
        worker.execute(call)
        sim.run_until(2.2)
        util = worker.take_utilization_window()
        assert util == pytest.approx(0.5, rel=0.1)


class TestAdmission:
    def test_thread_limit(self):
        sim = Simulator()
        worker = make_worker(sim, threads=2)
        assert worker.execute(make_call(sim, name="a", cpu=1.0))
        assert worker.execute(make_call(sim, name="b", cpu=1.0))
        assert not worker.execute(make_call(sim, name="c", cpu=1.0))
        assert worker.admission_rejections == 1

    def test_memory_limit(self):
        sim = Simulator()
        worker = make_worker(sim, memory_mb=8 * 1024.0,
                             runtime_baseline_mb=1024.0)
        big = make_call(sim, name="big", mem=6 * 1024.0, cpu=1.0)
        assert worker.execute(big)
        second = make_call(sim, name="big2", mem=6 * 1024.0, cpu=1.0)
        assert not worker.execute(second)

    def test_memory_freed_after_completion(self):
        sim = Simulator()
        worker = make_worker(sim, memory_mb=8 * 1024.0,
                             runtime_baseline_mb=1024.0)
        worker.execute(make_call(sim, name="a", mem=6 * 1024.0, exec_s=1.0,
                                 cpu=1.0))
        sim.run_until(5.0)
        assert worker.execute(make_call(sim, name="b", mem=6 * 1024.0,
                                        cpu=1.0))

    def test_cpu_admission(self):
        sim = Simulator()
        worker = make_worker(sim, cores=1, core_mips=1000.0)
        # Each call is pure CPU: load 1.0; one core → only one admitted.
        assert worker.execute(make_call(sim, name="a", cpu=10_000.0,
                                        exec_s=0.1))
        assert not worker.execute(make_call(sim, name="b", cpu=10_000.0,
                                            exec_s=0.1))

    def test_isolation_enforced_at_worker(self):
        # §4.7: workers independently check Bell–LaPadula flows.
        sim = Simulator()
        done = []
        worker = make_worker(sim, on_finish=lambda c, o: done.append(o))
        call = make_call(sim, source_level=2, isolation_level=0)
        assert worker.execute(call)  # handled (terminally), not refused
        assert worker.isolation_rejections == 1
        assert done == [CallOutcome.ISOLATION_DENIED]


class TestResidency:
    def test_lru_eviction_under_budget(self):
        sim = Simulator()
        worker = make_worker(sim, resident_budget_mb=40.0,
                             resident_multiplier=2.0)
        # Each function is 5 MB code → 10 MB resident; budget holds 4.
        for i in range(6):
            worker.execute(make_call(sim, name=f"f{i}", cpu=1.0,
                                     exec_s=0.01, code_mb=5.0))
            sim.run_until(sim.now + 1.0)
        assert worker.resident_functions == 4
        assert worker.evictions == 2

    def test_distinct_function_window(self):
        sim = Simulator()
        worker = make_worker(sim)
        for name in ("a", "b", "a"):
            worker.execute(make_call(sim, name=name, cpu=1.0, exec_s=0.01))
            sim.run_until(sim.now + 1.0)
        assert worker.take_distinct_functions_window() == 2
        assert worker.take_distinct_functions_window() == 0

    def test_memory_includes_resident_and_live(self):
        sim = Simulator()
        worker = make_worker(sim, runtime_baseline_mb=1000.0,
                             resident_multiplier=3.0)
        base = worker.memory_in_use_mb
        assert base == 1000.0
        worker.execute(make_call(sim, mem=100.0, code_mb=10.0, cpu=1.0,
                                 exec_s=5.0))
        assert worker.memory_in_use_mb == pytest.approx(1000.0 + 100.0 + 30.0)


class TestLoadScore:
    def test_idle_worker_scores_zero(self):
        sim = Simulator()
        worker = make_worker(sim, runtime_baseline_mb=0.0)
        assert worker.load_score() == pytest.approx(0.0)

    def test_score_grows_with_running_calls(self):
        sim = Simulator()
        worker = make_worker(sim, threads=4)
        before = worker.load_score()
        worker.execute(make_call(sim, cpu=1.0))
        assert worker.load_score() > before
