"""Tests for the Scheduler: ordering, gates, flow control, retries (§4.4)."""

import math

from repro.cluster import MachineSpec
from repro.core import (
    S_MULTIPLIER_KEY,
    TRAFFIC_MATRIX_KEY,
    CentralRateLimiter,
    ConfigStore,
    CongestionController,
    CongestionParams,
    DurableQ,
    FunctionCall,
    Scheduler,
    SchedulerParams,
    Worker,
    WorkerLB,
)
from repro.core.call import CallIdAllocator, CallOutcome, CallState
from repro.sim import Simulator
from repro.workloads import (
    Criticality,
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
)


def profile(cpu=10.0, mem=64.0, exec_s=0.5):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


class Harness:
    """One-region scheduler rig with direct DurableQ access."""

    def __init__(self, seed=1, n_workers=2, threads=16, regions=("r0",),
                 sched_params=None, congestion_params=None):
        self.sim = Simulator(seed=seed)
        self.ids = CallIdAllocator()
        self.config = ConfigStore(self.sim, propagation_delay_s=0.0)
        self.rate_limiter = CentralRateLimiter(initial_cost_minstr=10.0)
        self.congestion = CongestionController(
            congestion_params or CongestionParams())
        self.dqs = {r: [DurableQ(self.sim, f"dq/{r}", r)] for r in regions}
        machine = MachineSpec(cores=8, core_mips=1000, threads=threads)
        self.workers = [Worker(self.sim, f"w{i}", "r0", machine=machine)
                        for i in range(n_workers)]
        self.lb = WorkerLB(self.sim, "r0", self.workers,
                           group_of_function=lambda f: 0,
                           n_groups_fn=lambda: 1)
        self.done = []
        self.scheduler = Scheduler(
            self.sim, "r0", self.dqs, self.lb, self.rate_limiter,
            self.congestion, self.config,
            sched_params or SchedulerParams(poll_interval_s=0.5),
            on_done=lambda c, o: self.done.append((c, o)))
        for w in self.workers:
            w.on_finish = self.scheduler.on_call_finished
        self.sim.every(60.0, lambda: self.congestion.adjust(self.sim.now))

    def register(self, spec, cost=10.0):
        self.rate_limiter.register(spec, expected_cost_minstr=cost)
        self.congestion.register(spec)

    def enqueue(self, spec, region="r0", start_delay=0.0, source_level=0):
        call = FunctionCall(spec=spec, submit_time=self.sim.now,
                            start_time=self.sim.now + start_delay,
                            region_submitted=region,
                            source_level=source_level,
                            call_id=self.ids.allocate())
        self.dqs[region][0].enqueue(call)
        return call


class TestBasicFlow:
    def test_end_to_end_completion(self):
        h = Harness()
        spec = FunctionSpec(name="f", profile=profile())
        h.register(spec)
        call = h.enqueue(spec)
        h.sim.run_until(10.0)
        assert call.state is CallState.COMPLETED
        assert call.outcome is CallOutcome.OK
        assert h.scheduler.completed_count == 1
        assert h.done[0][1] is CallOutcome.OK

    def test_future_start_time_honored(self):
        h = Harness()
        spec = FunctionSpec(name="f", profile=profile())
        h.register(spec)
        call = h.enqueue(spec, start_delay=100.0)
        h.sim.run_until(50.0)
        assert call.state is CallState.QUEUED
        h.sim.run_until(150.0)
        assert call.state is CallState.COMPLETED

    def test_criticality_order_under_scarce_capacity(self):
        # One thread: the CRITICAL call must run before the LOW ones
        # even though it was enqueued last.
        h = Harness(n_workers=1, threads=1)
        low = FunctionSpec(name="low", criticality=Criticality.LOW,
                           profile=profile(exec_s=2.0))
        crit = FunctionSpec(name="crit", criticality=Criticality.CRITICAL,
                            profile=profile(exec_s=2.0))
        h.register(low)
        h.register(crit)
        low_calls = [h.enqueue(low) for _ in range(3)]
        crit_call = h.enqueue(crit)
        h.sim.run_until(30.0)
        finished = [c for c, o in h.done]
        # The critical call finishes before at least two LOW calls.
        crit_pos = finished.index(crit_call)
        assert crit_pos <= 1

    def test_deadline_order_within_criticality(self):
        h = Harness(n_workers=1, threads=1)
        relaxed = FunctionSpec(name="relaxed", deadline_s=3600.0,
                               profile=profile(exec_s=1.0))
        urgent = FunctionSpec(name="urgent", deadline_s=10.0,
                              profile=profile(exec_s=1.0))
        h.register(relaxed)
        h.register(urgent)
        r = h.enqueue(relaxed)
        u = h.enqueue(urgent)
        h.sim.run_until(10.0)
        finished = [c for c, o in h.done]
        assert finished.index(u) < finished.index(r)


class TestGates:
    def test_quota_throttles_excess(self):
        h = Harness(n_workers=2, threads=16)
        spec = FunctionSpec(name="f", quota_minstr_per_s=10.0,
                            profile=profile(cpu=10.0, exec_s=0.05))
        h.register(spec, cost=10.0)  # → 1 RPS limit
        for _ in range(100):
            h.enqueue(spec)
        h.sim.run_until(30.0)
        # ~burst (10) + 1/s × 30 s ≈ 40 completions max.
        assert h.scheduler.completed_count <= 45
        assert h.scheduler.deferred_gate_hits > 0

    def test_opportunistic_stopped_when_s_zero(self):
        h = Harness()
        h.config.publish(S_MULTIPLIER_KEY, 0.0)
        # Wait for the scheduler's cached config to pick up S=0 (the
        # cache refresh is part of the design, §4.1).
        h.sim.run_until(15.0)
        spec = FunctionSpec(name="opp", quota_type=QuotaType.OPPORTUNISTIC,
                            profile=profile())
        h.register(spec)
        h.enqueue(spec)
        h.sim.run_until(90.0)
        assert h.scheduler.completed_count == 0

    def test_opportunistic_resumes_when_s_rises(self):
        h = Harness()
        h.config.publish(S_MULTIPLIER_KEY, 0.0)
        spec = FunctionSpec(name="opp", quota_type=QuotaType.OPPORTUNISTIC,
                            profile=profile())
        h.register(spec)
        call = h.enqueue(spec)
        h.sim.run_until(60.0)
        h.config.publish(S_MULTIPLIER_KEY, 1.0)
        h.sim.run_until(120.0)
        assert call.state is CallState.COMPLETED

    def test_concurrency_limit_respected(self):
        h = Harness(n_workers=2, threads=16)
        spec = FunctionSpec(name="f", concurrency_limit=2,
                            profile=profile(exec_s=5.0))
        h.register(spec)
        for _ in range(10):
            h.enqueue(spec)
        h.sim.run_until(4.0)
        running = sum(w.running_count for w in h.workers)
        assert running == 2

    def test_isolation_denied_terminally(self):
        h = Harness()
        spec = FunctionSpec(name="f", isolation_level=0, profile=profile())
        h.register(spec)
        call = h.enqueue(spec, source_level=3)
        h.sim.run_until(10.0)
        assert call.outcome is CallOutcome.ISOLATION_DENIED
        assert h.scheduler.isolation_denials == 1
        # Terminal: removed from the DurableQ, no retry.
        assert h.dqs["r0"][0].pending_count == 0


class TestFlowControl:
    def test_runq_buildup_pauses_polling(self):
        # Tiny workers: the RunQ fills, polling stops, backlog stays in
        # the DurableQ (§4.4 flow control).
        h = Harness(n_workers=1, threads=1,
                    sched_params=SchedulerParams(poll_interval_s=0.5,
                                                 runq_capacity=5,
                                                 buffer_capacity=20))
        spec = FunctionSpec(name="f", profile=profile(exec_s=30.0))
        h.register(spec)
        for _ in range(100):
            h.enqueue(spec)
        h.sim.run_until(10.0)
        assert len(h.scheduler.runq) <= 5
        assert h.scheduler.buffered_count <= 20
        assert h.dqs["r0"][0].pending_count >= 70

    def test_completion_kick_dispatches_promptly(self):
        h = Harness(n_workers=1, threads=1)
        spec = FunctionSpec(name="f", profile=profile(exec_s=1.0))
        h.register(spec)
        for _ in range(3):
            h.enqueue(spec)
        h.sim.run_until(10.0)
        assert h.scheduler.completed_count == 3


class TestRetries:
    def test_worker_error_nacked_and_retried(self):
        h = Harness()
        spec = FunctionSpec(name="f", profile=profile(),
                            retry_policy=RetryPolicy(max_attempts=3,
                                                     retry_delay_s=1.0))
        h.register(spec)
        call = h.enqueue(spec)
        # Force the first completion to report an error.
        original = h.scheduler.on_call_finished
        fail_once = {"done": False}

        def flaky(c, outcome):
            if not fail_once["done"] and c is call:
                fail_once["done"] = True
                original(c, CallOutcome.ERROR)
            else:
                original(c, outcome)
        for w in h.workers:
            w.on_finish = flaky
        h.sim.run_until(30.0)
        assert call.state is CallState.COMPLETED
        assert call.attempts == 1  # one NACK before success

    def test_retries_exhausted_fails(self):
        h = Harness()
        spec = FunctionSpec(name="f", profile=profile(),
                            retry_policy=RetryPolicy(max_attempts=2,
                                                     retry_delay_s=0.5))
        h.register(spec)
        call = h.enqueue(spec)
        original = h.scheduler.on_call_finished
        for w in h.workers:
            w.on_finish = lambda c, o: original(c, CallOutcome.ERROR)
        h.sim.run_until(60.0)
        assert call.state is CallState.FAILED
        assert h.scheduler.failed_count == 1


class TestCrossRegion:
    def test_traffic_matrix_pulls_remote_work(self):
        h = Harness(regions=("r0", "r1"))
        h.config.publish(TRAFFIC_MATRIX_KEY,
                         {"r0": {"r0": 0.5, "r1": 0.5}})
        spec = FunctionSpec(name="f", profile=profile())
        h.register(spec)
        call = h.enqueue(spec, region="r1")
        h.sim.run_until(30.0)
        assert call.state is CallState.COMPLETED
        assert h.scheduler.cross_region_pulls > 0
        assert call.scheduler_region == "r0"
        assert call.durableq_region == "r1"

    def test_no_matrix_stays_local(self):
        h = Harness(regions=("r0", "r1"))
        spec = FunctionSpec(name="f", profile=profile())
        h.register(spec)
        call = h.enqueue(spec, region="r1")
        h.sim.run_until(10.0)
        assert call.state is CallState.QUEUED  # nobody pulls r1
