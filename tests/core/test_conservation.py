"""End-to-end conservation invariants: no call is ever lost.

At-least-once semantics (§4.3) means every accepted call must end up
exactly one of: completed, failed (retries exhausted / isolation),
still pending (DurableQ/buffer/RunQ), or running — across retries,
throttling, worker rejections, and cross-region pulls.
"""

import math

import pytest

from repro import Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.workloads import (
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
)


def profile(cpu=50.0, mem=64.0, exec_s=0.5, sigma=0.5):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=sigma),
        memory_mb=LogNormal(mu=math.log(mem), sigma=sigma),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=sigma))


def account(platform):
    completed = sum(s.completed_count for s in platform.schedulers.values())
    failed = sum(s.failed_count for s in platform.schedulers.values())
    pending = platform.pending_backlog()
    running = sum(w.running_count for w in platform.all_workers)
    # Calls accepted by submitters but not yet persisted (batch in
    # flight) — normally zero at quiescence.
    batched = sum(len(f.normal._batch) + len(f.spiky._batch)
                  for f in platform.frontends.values())
    return completed, failed, pending, running, batched


class TestConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_calls_accounted_at_quiescence(self, seed):
        sim = Simulator(seed=seed)
        topo = build_topology(n_regions=3, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        for i, quota_type in enumerate([QuotaType.RESERVED,
                                        QuotaType.OPPORTUNISTIC]):
            platform.register_function(FunctionSpec(
                name=f"f{i}", quota_type=quota_type, profile=profile()))
        task = sim.every(1.0, lambda: [platform.submit("f0"),
                                       platform.submit("f1")])
        sim.run_until(600.0)
        task.cancel()
        sim.run_until(4000.0)  # drain
        completed, failed, pending, running, batched = account(platform)
        accepted = platform.submitted_count - platform.throttled_count
        assert completed + failed + pending + running + batched == accepted
        assert pending == 0 and running == 0
        assert completed > 0

    def test_conservation_under_worker_scarcity(self):
        # One tiny worker, heavy calls: most work queues, nothing lost.
        sim = Simulator(seed=9)
        topo = build_topology(
            n_regions=1, workers_per_unit=1,
            machine_spec=MachineSpec(cores=1, core_mips=500, threads=2))
        platform = XFaaS(sim, topo)
        platform.register_function(FunctionSpec(
            name="heavy", profile=profile(cpu=2000.0, exec_s=5.0)))
        for _ in range(100):
            platform.submit("heavy")
        sim.run_until(120.0)
        completed, failed, pending, running, batched = account(platform)
        assert completed + failed + pending + running + batched == 100
        assert pending > 0  # genuinely backlogged

    def test_conservation_with_failures_and_retries(self):
        sim = Simulator(seed=10)
        topo = build_topology(n_regions=2, workers_per_unit=2)
        platform = XFaaS(sim, topo)
        platform.register_function(FunctionSpec(
            name="flaky", profile=profile(),
            retry_policy=RetryPolicy(max_attempts=2, retry_delay_s=1.0)))
        # Force every other completion to report an error.
        from repro.core import CallOutcome
        flip = {"n": 0}
        for region, scheduler in platform.schedulers.items():
            original = scheduler.on_call_finished

            def wrapped(call, outcome, original=original):
                flip["n"] += 1
                if flip["n"] % 2 == 0 and outcome is CallOutcome.OK:
                    outcome = CallOutcome.ERROR
                original(call, outcome)
            for worker in platform.workers_by_region[region]:
                worker.on_finish = wrapped
        for _ in range(60):
            platform.submit("flaky")
        sim.run_until(600.0)
        completed, failed, pending, running, batched = account(platform)
        assert completed + failed + pending + running + batched == 60
        assert failed > 0 and completed > 0

    def test_throttled_calls_traced_not_queued(self):
        sim = Simulator(seed=11)
        topo = build_topology(n_regions=1, workers_per_unit=2)
        platform = XFaaS(sim, topo)
        platform.client_limiter.set_limit("team-0", 1.0)
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        for _ in range(50):
            platform.submit("f")
        sim.run_until(300.0)
        assert platform.throttled_count > 0
        throttled_traces = [t for t in platform.traces
                            if t.outcome == "throttled"]
        assert len(throttled_traces) == platform.throttled_count
        completed, failed, pending, running, batched = account(platform)
        accepted = platform.submitted_count - platform.throttled_count
        assert completed + failed + pending + running + batched == accepted
