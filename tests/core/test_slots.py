"""Hot per-call objects must stay ``__slots__``-only.

A single stray class attribute or a refactor back to a plain dataclass
silently re-adds a per-instance ``__dict__`` (28+ bytes and a dict
lookup per attribute access) to objects created hundreds of thousands
of times per simulated hour.  These tests pin the memory layout.
"""

import pytest

from repro.core.call import CallIdAllocator, CallState, FunctionCall
from repro.core.worker import _RunningCall
from repro.metrics.timeseries import Counter, Distribution, Gauge
from repro.sim.events import ScheduledEvent, Signal
from repro.util import add_slots
from repro.workloads.spec import FunctionSpec


_ids = CallIdAllocator()


def _make_call() -> FunctionCall:
    spec = FunctionSpec(name="f", team="t")
    return FunctionCall(spec=spec, submit_time=0.0, start_time=0.0,
                        region_submitted="r0", call_id=_ids.allocate())


def _assert_slotted(obj) -> None:
    assert not hasattr(obj, "__dict__"), (
        f"{type(obj).__name__} grew a per-instance __dict__")
    with pytest.raises(AttributeError):
        obj.this_attribute_does_not_exist = 1


class TestSlottedHotObjects:
    def test_function_call_is_slotted(self):
        call = _make_call()
        _assert_slotted(call)

    def test_function_call_still_behaves_like_a_dataclass(self):
        call = _make_call()
        call.state = CallState.QUEUED  # declared fields stay assignable
        assert call.state is CallState.QUEUED
        assert call.function_name == "f"
        assert call.sort_key()[2] == call.call_id

    def test_running_call_is_slotted(self):
        call = _make_call()
        rc = _RunningCall(call=call, cpu_load=0.5, memory_mb=100.0,
                          finish_handle=None)
        _assert_slotted(rc)

    def test_scheduled_event_is_slotted(self):
        _assert_slotted(ScheduledEvent(0.0, lambda: None, None))

    def test_signal_is_slotted(self):
        _assert_slotted(Signal())

    def test_metrics_primitives_are_slotted(self):
        _assert_slotted(Counter("c"))
        _assert_slotted(Gauge("g"))
        _assert_slotted(Distribution("d"))


class TestAddSlotsHelper:
    def test_rejects_existing_slots(self):
        import dataclasses

        @dataclasses.dataclass
        class Pre:
            __slots__ = ("x",)
            x: int

        with pytest.raises(TypeError):
            add_slots(Pre)

    def test_defaults_survive_the_rebuild(self):
        import dataclasses

        @add_slots
        @dataclasses.dataclass
        class Point:
            x: float
            y: float = 2.5

        p = Point(1.0)
        assert (p.x, p.y) == (1.0, 2.5)
        _assert_slotted(p)
