"""Tests for QueueLB routing and the Submitter pools (§4.2, §4.3)."""

import pytest

from repro.core import (
    ROUTING_KEY,
    CallState,
    ClientRateLimiter,
    ConfigStore,
    DurableQ,
    FunctionCall,
    QueueLB,
    Submitter,
    SubmitterFrontend,
    SubmitterParams,
    capacity_proportional_routing,
    local_only_routing,
)
from repro.core.call import CallIdAllocator
from repro.sim import Simulator
from repro.workloads import FunctionSpec


_ids = CallIdAllocator()


def make_call(sim, name="f", team="team-a", args_kb=4.0):
    spec = FunctionSpec(name=name, team=team)
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="a", args_size_kb=args_kb,
                        call_id=_ids.allocate())


def build_queuelb(sim, regions=("a", "b")):
    store = ConfigStore(sim, propagation_delay_s=0.0)
    dqs = {r: [DurableQ(sim, f"dq/{r}/0", r), DurableQ(sim, f"dq/{r}/1", r)]
           for r in regions}
    lb = QueueLB(sim, "a", dqs, store)
    return lb, dqs, store


class TestRoutingPolicies:
    def test_local_only(self):
        policy = local_only_routing(["a", "b"])
        assert policy["a"] == {"a": 1.0}

    def test_capacity_proportional_rows_sum_to_one(self):
        policy = capacity_proportional_routing(
            ["a", "b", "c"], {"a": 4, "b": 2, "c": 2}, locality_bias=0.5)
        for row in policy.values():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_locality_bias_keeps_traffic_home(self):
        policy = capacity_proportional_routing(
            ["a", "b"], {"a": 1, "b": 1}, locality_bias=0.8)
        assert policy["a"]["a"] > policy["a"]["b"]

    def test_invalid_bias(self):
        with pytest.raises(ValueError):
            capacity_proportional_routing(["a"], {"a": 1}, locality_bias=1.5)


class TestQueueLB:
    def test_default_routes_locally(self):
        sim = Simulator(seed=1)
        lb, dqs, _ = build_queuelb(sim)
        for _ in range(20):
            lb.route(make_call(sim))
        assert sum(q.enqueued_count for q in dqs["a"]) == 20
        assert sum(q.enqueued_count for q in dqs["b"]) == 0

    def test_uuid_sharding_spreads_over_shards(self):
        sim = Simulator(seed=2)
        lb, dqs, _ = build_queuelb(sim)
        for _ in range(200):
            lb.route(make_call(sim))
        counts = [q.enqueued_count for q in dqs["a"]]
        assert all(c > 50 for c in counts)

    def test_routing_policy_shifts_traffic(self):
        sim = Simulator(seed=3)
        lb, dqs, store = build_queuelb(sim)
        store.publish(ROUTING_KEY, {"a": {"a": 0.0, "b": 1.0}})
        sim.run_until(60.0)  # let the cached config refresh
        for _ in range(50):
            lb.route(make_call(sim))
        assert sum(q.enqueued_count for q in dqs["b"]) == 50

    def test_enqueued_call_state(self):
        sim = Simulator(seed=4)
        lb, _, _ = build_queuelb(sim)
        call = make_call(sim)
        lb.route(call)
        assert call.state is CallState.QUEUED
        assert call.durableq_region == "a"


class TestSubmitter:
    def _submitter(self, sim, pool="normal", **params):
        lb, dqs, _ = build_queuelb(sim)
        limiter = ClientRateLimiter(default_rps=1000.0)
        throttled = []
        sub = Submitter(sim, "a", lb, limiter,
                        SubmitterParams(**params), pool=pool,
                        on_throttle=lambda c: throttled.append(c))
        return sub, dqs, throttled

    def test_batching_delays_enqueue(self):
        sim = Simulator(seed=5)
        sub, dqs, _ = self._submitter(sim, batch_flush_interval_s=0.1,
                                      batch_max_size=1000)
        sub.submit(make_call(sim))
        assert sum(q.enqueued_count for q in dqs["a"]) == 0
        sim.run_until(0.5)
        assert sum(q.enqueued_count for q in dqs["a"]) == 1

    def test_full_batch_flushes_immediately(self):
        sim = Simulator(seed=6)
        sub, dqs, _ = self._submitter(sim, batch_max_size=5)
        for _ in range(5):
            sub.submit(make_call(sim))
        assert sum(q.enqueued_count for q in dqs["a"]) == 5

    def test_big_args_spill_to_kv_store(self):
        # §4.2: oversized arguments go to a distributed KV store.
        sim = Simulator(seed=7)
        sub, _, _ = self._submitter(sim, args_spill_threshold_kb=64.0)
        call = make_call(sim, args_kb=500.0)
        sub.submit(call)
        assert call.args_spilled
        assert sub.spill_count == 1

    def test_client_rate_limit_throttles(self):
        sim = Simulator(seed=8)
        lb, _, _ = build_queuelb(sim)
        limiter = ClientRateLimiter(default_rps=1.0, burst_s=2.0)
        throttled = []
        sub = Submitter(sim, "a", lb, limiter, SubmitterParams(),
                        on_throttle=lambda c: throttled.append(c))
        results = [sub.submit(make_call(sim)) for _ in range(10)]
        assert results.count(True) == 2
        assert len(throttled) == 8
        assert throttled[0].state is CallState.THROTTLED

    def test_spiky_client_detected_and_throttled_on_normal_pool(self):
        # §4.2: spiky clients on the normal pool are throttled by default
        # and operators get alerted.
        sim = Simulator(seed=9)
        sub, _, throttled = self._submitter(sim, spiky_rate_threshold=50.0)

        def burst():
            for _ in range(300):
                sub.submit(make_call(sim, team="spiky-team"))
        task = sim.every(1.0, burst)
        sim.run_until(30.0)
        task.cancel()
        assert "spiky-team" in sub.spiky_alerts
        assert len(throttled) > 0

    def test_spiky_pool_does_not_throttle_spiky_clients(self):
        sim = Simulator(seed=10)
        sub, _, throttled = self._submitter(sim, pool="spiky",
                                            spiky_rate_threshold=50.0)

        def burst():
            for _ in range(300):
                sub.submit(make_call(sim, team="spiky-team"))
        task = sim.every(1.0, burst)
        sim.run_until(30.0)
        task.cancel()
        assert len(throttled) == 0


class TestSubmitterFrontend:
    def test_routes_registered_spiky_clients(self):
        sim = Simulator(seed=11)
        lb, _, _ = build_queuelb(sim)
        limiter = ClientRateLimiter()
        normal = Submitter(sim, "a", lb, limiter, pool="normal")
        spiky = Submitter(sim, "a", lb, limiter, pool="spiky")
        frontend = SubmitterFrontend(normal, spiky)
        frontend.register_spiky_client("big-team")
        frontend.submit(make_call(sim, team="big-team"))
        frontend.submit(make_call(sim, team="other"))
        assert spiky.accepted_count == 1
        assert normal.accepted_count == 1

    def test_mismatched_regions_rejected(self):
        sim = Simulator(seed=12)
        lb, _, _ = build_queuelb(sim)
        limiter = ClientRateLimiter()
        normal = Submitter(sim, "a", lb, limiter, pool="normal")
        lb2, _, _ = build_queuelb(sim)
        spiky = Submitter(sim, "b", lb2, limiter, pool="spiky")
        with pytest.raises(ValueError):
            SubmitterFrontend(normal, spiky)
