"""Tests for namespaces and Bell–LaPadula data isolation (§4.7)."""

import pytest

from repro.core import IsolationViolation, NamespaceRegistry, check_flow, flow_allowed
from repro.workloads import FunctionSpec


class TestBellLaPadula:
    def test_data_flows_low_to_high(self):
        # §4.7: data can only flow from lower to higher classification.
        assert flow_allowed(source_level=0, execution_level=2)
        assert flow_allowed(source_level=1, execution_level=1)

    def test_high_to_low_denied(self):
        assert not flow_allowed(source_level=2, execution_level=0)

    def test_check_flow_raises(self):
        with pytest.raises(IsolationViolation):
            check_flow(3, 1, "secret-fn")
        check_flow(1, 3)  # no raise

    def test_violation_message_names_function(self):
        with pytest.raises(IsolationViolation, match="secret-fn"):
            check_flow(5, 0, "secret-fn")


class TestNamespaceRegistry:
    def test_create_and_assign(self):
        reg = NamespaceRegistry()
        reg.create("php-ns", runtime="php")
        spec = FunctionSpec(name="f", namespace="php-ns")
        ns = reg.assign(spec)
        assert ns.name == "php-ns"
        assert reg.namespace_of("f") == "php-ns"

    def test_assign_creates_missing_namespace(self):
        reg = NamespaceRegistry()
        reg.assign(FunctionSpec(name="f", namespace="new-ns"))
        assert "new-ns" in [n.name for n in reg.namespaces()]

    def test_function_belongs_to_single_namespace(self):
        # §2.4: a function belongs to a single namespace.
        reg = NamespaceRegistry()
        reg.assign(FunctionSpec(name="f", namespace="a"))
        with pytest.raises(ValueError):
            reg.assign(FunctionSpec(name="f", namespace="b"))

    def test_namespace_single_runtime(self):
        # §2.4: each namespace supports only one runtime.
        reg = NamespaceRegistry()
        reg.create("ns", runtime="php")
        with pytest.raises(ValueError):
            reg.create("ns", runtime="python")

    def test_create_idempotent_same_runtime(self):
        reg = NamespaceRegistry()
        a = reg.create("ns", runtime="php")
        b = reg.create("ns", runtime="php")
        assert a is b

    def test_functions_in(self):
        reg = NamespaceRegistry()
        reg.assign(FunctionSpec(name="b", namespace="ns"))
        reg.assign(FunctionSpec(name="a", namespace="ns"))
        reg.assign(FunctionSpec(name="c", namespace="other"))
        assert reg.functions_in("ns") == ["a", "b"]

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            NamespaceRegistry().namespace_of("ghost")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            NamespaceRegistry().create("")
