"""Tests for quotas and the Central Rate Limiter (§4.6.1)."""

import pytest

from repro.core import CentralRateLimiter, ClientRateLimiter, TokenBucket
from repro.workloads import FunctionSpec, QuotaType


class TestTokenBucket:
    def test_starts_full(self):
        b = TokenBucket(rate=10.0, burst_s=2.0)
        assert b.tokens == pytest.approx(20.0)

    def test_take_and_refill(self):
        b = TokenBucket(rate=1.0, burst_s=5.0)
        for _ in range(5):
            assert b.try_take(0.0)
        assert not b.try_take(0.0)
        assert b.try_take(1.0)  # one second refills one token

    def test_capacity_floored_at_one_token(self):
        # Regression: low-RPS functions must not starve forever.
        b = TokenBucket(rate=0.05, burst_s=10.0)
        assert b.capacity >= 1.0
        assert b.try_take(0.0)
        assert not b.try_take(1.0)
        assert b.try_take(21.0)  # 0.05/s × 20 s ≥ 1 token again

    def test_zero_rate_blocks(self):
        b = TokenBucket(rate=0.0)
        assert not b.try_take(0.0)
        assert not b.try_take(1000.0)

    def test_set_rate_settles_tokens_first(self):
        b = TokenBucket(rate=10.0, burst_s=1.0)
        for _ in range(10):
            b.try_take(0.0)
        b.set_rate(1.0, 100.0)  # accrue 10 tokens at old rate first
        assert b.tokens == pytest.approx(10.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0)


class TestCentralRateLimiter:
    def _spec(self, quota=1000.0, quota_type=QuotaType.RESERVED, name="f"):
        return FunctionSpec(name=name, quota_minstr_per_s=quota,
                            quota_type=quota_type)

    def test_rps_from_quota_over_cost(self):
        # §4.6.1: RPS limit = quota / average cost per invocation.
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1000.0))
        assert limiter.rps_limit("f") == pytest.approx(10.0)

    def test_observed_costs_update_limit(self):
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1000.0))
        # Flood with observations: the cumulative mean converges to the
        # observed cost, dominating the registration prior.
        for _ in range(2000):
            limiter.record_cost("f", 500.0)
        assert limiter.rps_limit("f") == pytest.approx(2.0, rel=0.02)

    def test_single_tail_sample_does_not_crater_limit(self):
        # Heavy-tail robustness: one 5M-instr call must not collapse
        # the limit (the EMA failure mode this design replaced).
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1000.0))
        for _ in range(200):
            limiter.record_cost("f", 100.0)
        before = limiter.rps_limit("f")
        limiter.record_cost("f", 5.0e6)
        after = limiter.rps_limit("f")
        assert after > before * 0.004  # EMA with α=0.05 would cut ~2500x
        assert after == pytest.approx(
            1000.0 / ((220 * 100.0 + 5.0e6) / 221), rel=1e-6)

    def test_opportunistic_scaled_by_s(self):
        # §4.6.2: r = r0 × S for opportunistic functions.
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1000.0,
                                    quota_type=QuotaType.OPPORTUNISTIC))
        assert limiter.rps_limit("f", s_multiplier=0.5) == pytest.approx(5.0)
        assert limiter.rps_limit("f", s_multiplier=0.0) == 0.0

    def test_reserved_ignores_s(self):
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1000.0))
        assert limiter.rps_limit("f", s_multiplier=0.0) == pytest.approx(10.0)

    def test_throttling_over_limit(self):
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=100.0))  # 1 RPS, burst 10
        grants = sum(1 for _ in range(50) if limiter.try_acquire("f", 0.0))
        assert grants == 10  # burst capacity only
        assert limiter.throttle_count == 40

    def test_s_zero_stops_opportunistic(self):
        limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        limiter.register(self._spec(quota=1.0e6,
                                    quota_type=QuotaType.OPPORTUNISTIC))
        assert not limiter.try_acquire("f", 100.0, s_multiplier=0.0)

    def test_register_idempotent(self):
        limiter = CentralRateLimiter()
        spec = self._spec()
        limiter.register(spec, expected_cost_minstr=50.0)
        limiter.register(spec, expected_cost_minstr=999.0)
        assert limiter.avg_cost("f") == 50.0

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            CentralRateLimiter().rps_limit("missing")


class TestClientRateLimiter:
    def test_default_limit_allows_normal_traffic(self):
        limiter = ClientRateLimiter(default_rps=10.0, burst_s=1.0)
        assert limiter.try_acquire("team", 0.0)

    def test_burst_exhaustion_throttles(self):
        limiter = ClientRateLimiter(default_rps=1.0, burst_s=2.0)
        assert limiter.try_acquire("t", 0.0)
        assert limiter.try_acquire("t", 0.0)
        assert not limiter.try_acquire("t", 0.0)
        assert limiter.throttle_count == 1

    def test_per_client_isolation(self):
        limiter = ClientRateLimiter(default_rps=1.0, burst_s=1.0)
        assert limiter.try_acquire("a", 0.0)
        assert limiter.try_acquire("b", 0.0)  # b unaffected by a

    def test_set_limit(self):
        limiter = ClientRateLimiter(default_rps=1.0, burst_s=1.0)
        limiter.set_limit("vip", 100.0)
        grants = sum(1 for _ in range(150)
                     if limiter.try_acquire("vip", 0.0))
        assert grants == 100
