"""Tests for the scheduler's dispatch pipeline mechanics.

These pin down behaviours found the hard way during calibration:

* the RunQ acts as a bounded *pipeline* of gated calls so completions
  between ticks immediately refill workers (kick), and parked calls are
  recycled (tokens refunded) at the next tick;
* an unplaceable oversized call must not head-of-line-block either its
  own function or others;
* quota tokens consumed by calls that could not be placed are refunded,
  so unplaceable work cannot hoard a function's token stream.
"""

import math

from repro.cluster import MachineSpec
from repro.core import (
    CentralRateLimiter,
    ConfigStore,
    CongestionController,
    CongestionParams,
    DurableQ,
    FunctionCall,
    Scheduler,
    SchedulerParams,
    Worker,
    WorkerLB,
)
from repro.core.call import CallIdAllocator, CallState
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile(cpu=100.0, mem=64.0, exec_s=1.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


class Rig:
    def __init__(self, seed=1, n_workers=1, cores=2, core_mips=500,
                 threads=48, poll_interval=2.0):
        self.sim = Simulator(seed=seed)
        self.ids = CallIdAllocator()
        self.config = ConfigStore(self.sim, propagation_delay_s=0.0)
        self.rate_limiter = CentralRateLimiter(initial_cost_minstr=100.0)
        self.congestion = CongestionController(CongestionParams())
        self.dqs = {"r0": [DurableQ(self.sim, "dq", "r0")]}
        machine = MachineSpec(cores=cores, core_mips=core_mips,
                              threads=threads)
        self.workers = [Worker(self.sim, f"w{i}", "r0", machine=machine)
                        for i in range(n_workers)]
        self.lb = WorkerLB(self.sim, "r0", self.workers,
                           group_of_function=lambda f: 0,
                           n_groups_fn=lambda: 1)
        self.scheduler = Scheduler(
            self.sim, "r0", self.dqs, self.lb, self.rate_limiter,
            self.congestion, self.config,
            SchedulerParams(poll_interval_s=poll_interval))
        for w in self.workers:
            w.on_finish = self.scheduler.on_call_finished
        self.sim.every(60.0, lambda: self.congestion.adjust(self.sim.now))

    def register(self, spec, cost=100.0):
        self.rate_limiter.register(spec, expected_cost_minstr=cost)
        self.congestion.register(spec)

    def enqueue(self, spec):
        call = FunctionCall(spec=spec, submit_time=self.sim.now,
                            start_time=self.sim.now, region_submitted="r0",
                            call_id=self.ids.allocate())
        self.dqs["r0"][0].enqueue(call)
        return call


class TestPipeline:
    def test_kick_fills_freed_slots_between_ticks(self):
        # 1-second calls on a 2-core/500-MIPS worker, 2s scheduler tick:
        # without the parked pipeline, half the capacity idles.
        rig = Rig()
        spec = FunctionSpec(name="f", quota_minstr_per_s=1.0e9,
                            profile=profile(cpu=500.0, exec_s=0.5))
        rig.register(spec)
        for _ in range(400):
            rig.enqueue(spec)
        rig.sim.run_until(120.0)
        # Theoretical max: 2 cores × 120 s / 1 core-s per call = 240.
        assert rig.scheduler.completed_count >= 0.85 * 240

    def test_parked_calls_recycled_not_leaked(self):
        # Workers saturated by a long call: parked pipeline entries are
        # recycled every tick; accounting stays balanced.
        rig = Rig(cores=1, threads=1)
        hog = FunctionSpec(name="hog", quota_minstr_per_s=1.0e9,
                           profile=profile(cpu=50_000.0, exec_s=1.0))
        light = FunctionSpec(name="light", quota_minstr_per_s=1.0e9,
                             profile=profile(cpu=10.0, exec_s=0.1))
        rig.register(hog)
        rig.register(light)
        rig.enqueue(hog)       # occupies the only thread for 100 s
        for _ in range(20):
            rig.enqueue(light)
        rig.sim.run_until(50.0)
        # Nothing dispatched beyond the hog yet; running accounting sane.
        assert rig.congestion.running("light") == len(rig.scheduler.runq) \
            + sum(1 for w in rig.workers
                  for rc in w._running.values()
                  if rc.call.function_name == "light")
        rig.sim.run_until(300.0)
        assert rig.scheduler.completed_count == 21

    def test_oversized_call_does_not_block_function(self):
        # A call whose memory can never fit keeps retrying while the
        # rest of its function flows.
        rig = Rig(n_workers=2)
        spec = FunctionSpec(name="f", quota_minstr_per_s=1.0e9,
                            profile=profile(cpu=10.0, exec_s=0.1))
        rig.register(spec)
        big = FunctionCall(spec=spec, submit_time=0.0, start_time=0.0,
                           region_submitted="r0",
                           call_id=rig.ids.allocate())
        big.resources = (10.0, 10_000_000.0, 0.1)  # 10 TB: never fits
        rig.dqs["r0"][0].enqueue(big)
        small = [rig.enqueue(spec) for _ in range(30)]
        rig.sim.run_until(120.0)
        done = sum(1 for c in small if c.state is CallState.COMPLETED)
        assert done == 30
        assert big.state is not CallState.COMPLETED

    def test_unplaceable_work_does_not_hoard_tokens(self):
        # Function with a tight quota: an unplaceable oversized head
        # must not consume the token stream needed by placeable calls.
        rig = Rig(n_workers=1)
        spec = FunctionSpec(name="f", quota_minstr_per_s=500.0,  # 5 RPS
                            profile=profile(cpu=100.0, exec_s=0.05))
        rig.register(spec, cost=100.0)
        big = FunctionCall(spec=spec, submit_time=0.0, start_time=0.0,
                           region_submitted="r0",
                           call_id=rig.ids.allocate())
        big.resources = (100.0, 10_000_000.0, 0.05)
        rig.dqs["r0"][0].enqueue(big)
        small = [rig.enqueue(spec) for _ in range(100)]
        rig.sim.run_until(60.0)
        done = sum(1 for c in small if c.state is CallState.COMPLETED)
        # 5 RPS × 60 s plus burst ≈ 300+; bounded by the 100 offered.
        assert done >= 90

    def test_saturation_reaches_full_utilization(self):
        # Overloaded homogeneous workload must pin utilization near 1.0
        # (the pipeline regression that capped it at ~0.6).
        rig = Rig(n_workers=2)
        spec = FunctionSpec(name="f", quota_minstr_per_s=1.0e9,
                            profile=profile(cpu=500.0, exec_s=0.5))
        rig.register(spec)
        task = rig.sim.every(1.0, lambda: [rig.enqueue(spec)
                                           for _ in range(10)])
        rig.sim.run_until(1800.0)
        task.cancel()
        util = sum(w.cpu.utilization_total(rig.sim.now)
                   for w in rig.workers) / len(rig.workers)
        assert util > 0.9
