"""Property-based DurableQ tests: no call lost, no call duplicated."""

from hypothesis import given, settings, strategies as st

from repro.core import DurableQ, FunctionCall
from repro.core.call import CallIdAllocator
from repro.sim import Simulator
from repro.workloads import FunctionSpec

# Operation alphabet for the stateful sequence:
#   ("enqueue", fn_idx), ("poll", n), ("ack", k), ("nack", k), ("advance",)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("enqueue"), st.integers(0, 9)),
        st.tuples(st.just("poll"), st.integers(1, 5)),
        st.tuples(st.just("ack"), st.integers(0, 4)),
        st.tuples(st.just("nack"), st.integers(0, 4)),
        st.tuples(st.just("advance"), st.just(0)),
    ),
    min_size=1, max_size=80)


class TestDurableQStateMachine:
    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_uniqueness(self, operations):
        sim = Simulator(seed=3)
        ids = CallIdAllocator()
        q = DurableQ(sim, "q", "r", lease_timeout_s=1e9)
        enqueued = set()
        leased = {}
        finished = set()
        for op in operations:
            kind, arg = op
            if kind == "enqueue":
                call = FunctionCall(
                    spec=FunctionSpec(name=f"fn{arg}"),
                    submit_time=sim.now, start_time=sim.now,
                    region_submitted="r", call_id=ids.allocate())
                q.enqueue(call)
                enqueued.add(call.call_id)
            elif kind == "poll":
                for call in q.poll("s", arg):
                    # Never handed out twice while leased/finished.
                    assert call.call_id not in leased
                    assert call.call_id not in finished
                    leased[call.call_id] = call
            elif kind == "ack" and leased:
                key = sorted(leased)[arg % len(leased)]
                q.ack(leased.pop(key))
                finished.add(key)
            elif kind == "nack" and leased:
                key = sorted(leased)[arg % len(leased)]
                q.nack(leased[key])
                del leased[key]
            elif kind == "advance":
                sim.run_until(sim.now + 10.0)
        # Conservation: every enqueued call is exactly one of
        # pending-in-queue, leased, or finished.
        assert q.pending_count + len(leased) + len(finished) == len(enqueued)
        # Everything still pending is drainable.
        drained = []
        while True:
            batch = q.poll("s2", 50)
            if not batch:
                break
            drained.extend(batch)
            for c in batch:
                q.ack(c)
        assert len(drained) == len(enqueued) - len(finished) - len(leased)

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_start_time_gating(self, delays):
        """A call is never offered before its execution start time."""
        sim = Simulator(seed=4)
        ids = CallIdAllocator()
        q = DurableQ(sim, "q", "r")
        calls = []
        for d in delays:
            call = FunctionCall(spec=FunctionSpec(name="f"),
                                submit_time=sim.now,
                                start_time=sim.now + d,
                                region_submitted="r",
                                call_id=ids.allocate())
            q.enqueue(call)
            calls.append(call)
        for checkpoint in (0.0, 50.0, 100.0, 250.0):
            sim.run_until(checkpoint)
            for call in q.poll("s", 100):
                assert call.start_time <= sim.now
                q.ack(call)
