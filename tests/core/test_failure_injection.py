"""Failure-injection tests: scheduler death, controller outages, rollouts."""

import math

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.core import TRAFFIC_MATRIX_KEY, RolloutParams, SchedulerParams
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile(cpu=50.0, exec_s=0.3):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.3),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.3))


class TestSchedulerFailure:
    def test_lease_expiry_lets_peer_region_recover_work(self):
        """A dead scheduler's leased calls are redelivered after the
        lease timeout and can be pulled by another region (§4.3)."""
        sim = Simulator(seed=14)
        topo = build_topology(n_regions=2, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        r0, r1 = topo.region_names

        # Kill r0's scheduler immediately: it leases nothing more.
        platform.schedulers[r0].stop()
        # Tell r1's scheduler to pull from r0 as well.
        platform.config.publish(TRAFFIC_MATRIX_KEY,
                                {r1: {r1: 0.5, r0: 0.5}})
        sim.run_until(30.0)
        calls = [platform.submit("f", region=r0) for _ in range(20)]
        sim.run_until(600.0)
        done = sum(1 for c in calls if c.state.value == "completed")
        assert done == 20
        # Every completion happened through region r1's scheduler.
        assert all(c.scheduler_region == r1 for c in calls
                   if c.state.value == "completed")

    def test_inflight_lease_expires_and_retries(self):
        """Calls leased (buffered) by a scheduler that dies mid-flight
        are re-offered after the lease timeout."""
        sim = Simulator(seed=15)
        topo = build_topology(n_regions=2, workers_per_unit=3)
        params = PlatformParams(scheduler=SchedulerParams(
            poll_interval_s=1.0, lease_extension_interval_s=30.0))
        platform = XFaaS(sim, topo, params)
        # A function gated off so calls sit leased in FuncBuffers.
        platform.register_function(
            FunctionSpec(name="f", concurrency_limit=1,
                         profile=profile(exec_s=30.0)))
        r0, r1 = topo.region_names
        calls = [platform.submit("f", region=r0) for _ in range(5)]
        sim.run_until(10.0)
        # r0 scheduler dies holding leases on the queued calls.
        platform.schedulers[r0].stop()
        platform.config.publish(TRAFFIC_MATRIX_KEY,
                                {r1: {r1: 0.5, r0: 0.5}})
        sim.run_until(1200.0)
        done = sum(1 for c in calls if c.state.value == "completed")
        assert done == 5


class TestCodeRolloutUnderTraffic:
    def _run(self, cooperative: bool):
        sim = Simulator(seed=16)
        topo = build_topology(n_regions=1, workers_per_unit=6)
        params = PlatformParams(
            cooperative_jit=cooperative,
            start_code_deployer=True,
            rollout=RolloutParams(push_interval_s=3600.0,
                                  canary_workers=1,
                                  phase2_fraction=0.2,
                                  phase1_duration_s=60.0,
                                  phase2_duration_s=120.0,
                                  distribution_delay_s=30.0))
        platform = XFaaS(sim, topo, params)
        platform.register_function(FunctionSpec(
            name="hot", profile=profile(cpu=400.0, exec_s=0.1)))
        sim.every(0.5, lambda: [platform.submit("hot") for _ in range(4)])
        sim.run_until(2.5 * 3600.0)  # two rollouts land
        latencies = sorted(
            t.completion_latency for t in platform.traces.completed()
            if t.submit_time > 3600.0)
        return latencies[int(0.99 * len(latencies))], \
            platform.completed_count()

    def test_rollouts_complete_and_traffic_survives(self):
        p99_coop, completed_coop = self._run(cooperative=True)
        p99_solo, completed_solo = self._run(cooperative=False)
        # Both configurations keep serving through rollouts.
        assert completed_coop > 0.9 * completed_solo
        # Cooperative JIT's shorter warm-up shows up as lower tail
        # latency after code pushes.
        assert p99_coop <= p99_solo


class TestControllerOutage:
    def test_all_controllers_down_traffic_flows(self):
        sim = Simulator(seed=18)
        topo = build_topology(n_regions=2, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        sim.run_until(300.0)  # controllers publish at least once
        platform.gtc.stop()
        platform.utilization_controller.stop()
        platform.locality_optimizer.stop()
        platform.rim.stop()
        before = platform.completed_count()
        task = sim.every(1.0, lambda: platform.submit("f"))
        sim.run_until(1500.0)  # "tens of minutes" of outage (§4.1)
        task.cancel()
        sim.run_until(1800.0)
        assert platform.completed_count() >= before + 1100
