"""Tests for the Utilization Controller, RIM, and GTC integration."""

import math

import pytest

from repro.cluster import MachineSpec, NetworkModel
from repro.core import (
    S_MULTIPLIER_KEY,
    TRAFFIC_MATRIX_KEY,
    ConfigStore,
    FunctionCall,
    GlobalTrafficConductor,
    GtcParams,
    Rim,
    UtilizationController,
    UtilizationParams,
    Worker,
)
from repro.core.call import CallIdAllocator
from repro.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def cpu_profile(cpu=2000.0, exec_s=2.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


def make_rig(n_workers=2, region="r0"):
    sim = Simulator(seed=1)
    metrics = MetricsRegistry()
    rim = Rim(sim, metrics, sample_interval_s=10.0)
    machine = MachineSpec(cores=2, core_mips=1000, threads=16)
    workers = [Worker(sim, f"w{i}", region, machine=machine)
               for i in range(n_workers)]
    rim.register_workers(region, workers)
    rim.start()
    return sim, metrics, rim, workers


_ids = CallIdAllocator()


def busy_call(sim, name="f"):
    spec = FunctionSpec(name=name, profile=cpu_profile())
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r0", call_id=_ids.allocate())


class TestRim:
    def test_utilization_sampling(self):
        sim, metrics, rim, workers = make_rig()
        # Keep workers ~50% busy: 2 s CPU over 2 s wall on 2 cores.
        workers[0].execute(busy_call(sim, "a"))
        workers[1].execute(busy_call(sim, "b"))
        sim.run_until(10.0)
        # Window: 2 core-s busy of 20 core-s per worker... (2s/20s = .1)
        assert rim.fleet_utilization() == pytest.approx(0.1, abs=0.03)
        assert metrics.has_gauge("region.r0.utilization")

    def test_region_capacity_and_free_threads(self):
        sim, _, rim, workers = make_rig()
        assert rim.region_capacity("r0") == 32.0
        workers[0].execute(busy_call(sim))
        assert rim.region_free_threads("r0") == 31

    def test_double_start_rejected(self):
        sim, _, rim, _ = make_rig()
        with pytest.raises(RuntimeError):
            rim.start()


class TestUtilizationController:
    def _controller(self, util_value, **params):
        sim = Simulator(seed=2)
        config = ConfigStore(sim, propagation_delay_s=0.0)

        class FakeRim:
            def fleet_utilization(self):
                return util_value
        ctl = UtilizationController(sim, FakeRim(), config,
                                    UtilizationParams(**params))
        return sim, config, ctl

    def test_s_rises_when_underutilized(self):
        # §4.6.2: underutilized workers → S increases, pulling deferred
        # opportunistic work forward.
        sim, config, ctl = self._controller(0.2, target_utilization=0.7,
                                            gain=2.0)
        s0 = ctl.s
        ctl.update()
        assert ctl.s == pytest.approx(s0 + 2.0 * 0.5)

    def test_s_falls_when_above_target(self):
        sim, config, ctl = self._controller(0.8, target_utilization=0.7,
                                            gain=2.0)
        s0 = ctl.s
        ctl.update()
        assert ctl.s < s0

    def test_overload_backoff_to_zero(self):
        # S can decrease all the way to zero (§4.6.2).
        sim, config, ctl = self._controller(0.97,
                                            overload_utilization=0.9)
        for _ in range(20):
            ctl.update()
        assert ctl.s == 0.0

    def test_s_bounded(self):
        sim, config, ctl = self._controller(0.0, gain=100.0, s_max=10.0)
        for _ in range(10):
            ctl.update()
        assert ctl.s == 10.0

    def test_publishes_to_config(self):
        sim, config, ctl = self._controller(0.2)
        ctl.update()
        sim.run_until(1.0)
        assert config.get(S_MULTIPLIER_KEY) == ctl.s

    def test_stop_freezes_s(self):
        sim, config, ctl = self._controller(0.2)
        ctl.start()
        sim.run_until(120.0)
        ctl.stop()
        s_frozen = ctl.s
        sim.run_until(600.0)
        assert ctl.s == s_frozen


class TestGtcController:
    def test_publishes_matrix_periodically(self):
        sim = Simulator(seed=3)
        metrics = MetricsRegistry()
        config = ConfigStore(sim, propagation_delay_s=0.0)
        rim = Rim(sim, metrics, sample_interval_s=30.0)
        machine = MachineSpec(cores=2, core_mips=1000, threads=4)
        for region in ("r0", "r1"):
            workers = [Worker(sim, f"{region}/w", region, machine=machine)]
            rim.register_workers(region, workers)
        rim.start()
        network = NetworkModel(["r0", "r1"])
        gtc = GlobalTrafficConductor(sim, rim, config, network,
                                     GtcParams(update_interval_s=30.0))
        gtc.start()
        sim.run_until(120.0)
        assert gtc.update_count >= 3
        assert config.get(TRAFFIC_MATRIX_KEY) is not None

    def test_stop_leaves_stale_matrix(self):
        # §4.1: controller failure leaves the cached matrix in place.
        sim = Simulator(seed=4)
        config = ConfigStore(sim, propagation_delay_s=0.0)
        metrics = MetricsRegistry()
        rim = Rim(sim, metrics)
        rim.register_workers("r0", [Worker(sim, "w", "r0")])
        network = NetworkModel(["r0"])
        gtc = GlobalTrafficConductor(sim, rim, config, network,
                                     GtcParams(update_interval_s=10.0))
        gtc.start()
        sim.run_until(30.0)
        version_before = config.version(TRAFFIC_MATRIX_KEY)
        gtc.stop()
        sim.run_until(300.0)
        assert config.version(TRAFFIC_MATRIX_KEY) == version_before
        assert config.get(TRAFFIC_MATRIX_KEY) is not None
