"""Tests for the elastic/harvest-capacity extension (§5.3 ongoing work)."""

import math

import pytest

from repro import Simulator, XFaaS, build_topology
from repro.core import CallOutcome, FunctionCall
from repro.core.call import CallIdAllocator
from repro.core.elastic import ElasticPool, ElasticSchedule, ElasticWorker
from repro.workloads import (
    Criticality,
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
)


def profile(cpu=10.0, exec_s=1.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(32.0), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


_ids = CallIdAllocator()


def opportunistic_call(sim, name="opp"):
    spec = FunctionSpec(name=name, quota_type=QuotaType.OPPORTUNISTIC,
                        profile=profile())
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r", call_id=_ids.allocate())


def reserved_call(sim, name="res"):
    spec = FunctionSpec(name=name, criticality=Criticality.HIGH,
                        profile=profile())
    return FunctionCall(spec=spec, submit_time=sim.now, start_time=sim.now,
                        region_submitted="r", call_id=_ids.allocate())


class TestElasticWorker:
    def test_rejects_reserved_calls(self):
        sim = Simulator(seed=1)
        worker = ElasticWorker(sim, "e", "r")
        worker.grant()
        assert not worker.execute(reserved_call(sim))
        assert worker.execute(opportunistic_call(sim))

    def test_unavailable_rejects_everything(self):
        sim = Simulator(seed=2)
        worker = ElasticWorker(sim, "e", "r")
        assert not worker.execute(opportunistic_call(sim))

    def test_reclaim_interrupts_and_nacks(self):
        sim = Simulator(seed=3)
        outcomes = []
        worker = ElasticWorker(sim, "e", "r",
                               on_finish=lambda c, o: outcomes.append(o))
        worker.grant()
        call = opportunistic_call(sim)
        assert worker.execute(call)
        worker.reclaim()
        assert outcomes == [CallOutcome.WORKER_FULL]
        assert worker.running_count == 0
        # CPU accounting balanced after interruption.
        sim.run_until(100.0)
        assert worker.cpu.load == pytest.approx(0.0)

    def test_schedule_windows(self):
        sched = ElasticSchedule(available_windows=((0.0, 3600.0),))
        assert sched.is_available(100.0)
        assert not sched.is_available(7200.0)
        assert sched.is_available(86_400.0 + 100.0)  # next day


class TestElasticPool:
    def test_grant_reclaim_cycle(self):
        sim = Simulator(seed=4)
        pool = ElasticPool(sim, "r", n_workers=2,
                           schedule=ElasticSchedule(
                               available_windows=((0.0, 600.0),)),
                           check_interval_s=30.0)
        assert len(pool.available_workers) == 2
        sim.run_until(700.0)
        assert len(pool.available_workers) == 0
        assert pool.reclaims == 2

    def test_platform_integration(self):
        sim = Simulator(seed=5)
        topo = build_topology(n_regions=1, workers_per_unit=2)
        platform = XFaaS(sim, topo)
        region = topo.region_names[0]
        pool = platform.add_elastic_pool(region, n_workers=3)
        spec = FunctionSpec(name="opp", quota_type=QuotaType.OPPORTUNISTIC,
                            profile=profile(exec_s=0.5))
        platform.register_function(spec)
        for _ in range(50):
            platform.submit("opp")
        sim.run_until(300.0)
        assert platform.completed_count() == 50
        # Elastic workers actually absorbed some of the work.
        assert sum(w.calls_completed for w in pool.workers) > 0

    def test_interrupted_calls_retry_to_completion(self):
        sim = Simulator(seed=6)
        topo = build_topology(n_regions=1, workers_per_unit=2)
        platform = XFaaS(sim, topo)
        region = topo.region_names[0]
        # Capacity vanishes at t=120 and returns at t=600.
        platform.add_elastic_pool(
            region, n_workers=2,
            schedule=ElasticSchedule(available_windows=(
                (0.0, 120.0), (600.0, 86_400.0))))
        spec = FunctionSpec(name="long", quota_type=QuotaType.OPPORTUNISTIC,
                            profile=profile(exec_s=300.0))
        platform.register_function(spec)
        for _ in range(4):
            platform.submit("long")
        sim.run_until(3600.0)
        # Every call completed despite reclaims (at-least-once retries).
        assert platform.completed_count() == 4
