"""Multiple namespaces: dedicated worker pools, shared simulation.

§2.4/§4.5: a namespace is a strongly isolated environment with its own
worker pool and runtime; each platform instance hosts one namespace, and
several instances share the simulated cluster — mirroring how XFaaS's
namespaces share datacenters but not workers.
"""

import math

import pytest

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile():
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(50.0), sigma=0.3),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
        exec_time_s=LogNormal(mu=math.log(0.3), sigma=0.3))


class TestMultiNamespace:
    def test_two_namespaces_share_a_cluster(self):
        sim = Simulator(seed=20)
        topo = build_topology(n_regions=2, workers_per_unit=3,
                              namespace="php",
                              extra_namespaces={"python": 2})
        php = XFaaS(sim, topo, PlatformParams(namespace="php"))
        py = XFaaS(sim, topo, PlatformParams(namespace="python"))

        php.register_function(FunctionSpec(name="web-hook",
                                           namespace="php",
                                           profile=profile()))
        py.register_function(FunctionSpec(name="ml-feature",
                                          namespace="python",
                                          profile=profile()))
        for _ in range(30):
            php.submit("web-hook")
            py.submit("ml-feature")
        sim.run_until(120.0)

        assert php.completed_count() == 30
        assert py.completed_count() == 30
        # Physical isolation: no worker appears in both platforms.
        php_workers = {w.name for w in php.all_workers}
        py_workers = {w.name for w in py.all_workers}
        assert not php_workers & py_workers

    def test_function_cannot_register_across_namespaces(self):
        sim = Simulator(seed=21)
        topo = build_topology(n_regions=1, workers_per_unit=2,
                              namespace="php")
        php = XFaaS(sim, topo, PlatformParams(namespace="php"))
        with pytest.raises(ValueError):
            php.register_function(
                FunctionSpec(name="other", namespace="erlang"))

    def test_namespace_pools_sized_independently(self):
        topo = build_topology(n_regions=3, workers_per_unit=10,
                              namespace="php",
                              extra_namespaces={"python": 4})
        assert topo.total_workers("php") > topo.total_workers("python") > 0
