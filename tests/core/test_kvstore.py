"""Tests for the distributed KV store (big-args spill, §4.2)."""

import math

import pytest

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.core import DistributedKVStore, KVStoreParams
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile():
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(20.0), sigma=0.2),
        memory_mb=LogNormal(mu=math.log(32.0), sigma=0.2),
        exec_time_s=LogNormal(mu=math.log(0.2), sigma=0.2))


class TestKVStore:
    def test_put_get_delete_roundtrip(self):
        store = DistributedKVStore(Simulator())
        assert store.put("k", 128.0)
        assert store.contains("k")
        assert store.get("k") == pytest.approx(0.125)
        store.delete("k")
        assert not store.contains("k")
        assert store.used_mb == pytest.approx(0.0)

    def test_duplicate_put_rejected(self):
        store = DistributedKVStore(Simulator())
        store.put("k", 1.0)
        with pytest.raises(KeyError):
            store.put("k", 1.0)

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            DistributedKVStore(Simulator()).get("ghost")

    def test_delete_missing_is_noop(self):
        store = DistributedKVStore(Simulator())
        store.delete("ghost")
        assert store.delete_count == 0

    def test_shard_capacity_rejection(self):
        store = DistributedKVStore(
            Simulator(), KVStoreParams(shards=1, shard_capacity_mb=1.0))
        assert store.put("a", 512.0)   # 0.5 MB
        assert store.put("b", 500.0)
        assert not store.put("c", 200.0)  # shard full
        assert store.reject_count == 1
        store.delete("a")
        assert store.put("c", 200.0)

    def test_occupancy_accounting(self):
        store = DistributedKVStore(Simulator())
        for i in range(10):
            store.put(f"k{i}", 1024.0)
        assert store.entry_count == 10
        assert store.used_mb == pytest.approx(10.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            KVStoreParams(shards=0)
        with pytest.raises(ValueError):
            KVStoreParams(shard_capacity_mb=0.0)


class TestPlatformSpillLifecycle:
    def test_spilled_args_deleted_on_completion(self):
        sim = Simulator(seed=7)
        platform = XFaaS(sim, build_topology(n_regions=1, workers_per_unit=2))
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        for _ in range(10):
            platform.submit("f", args_size_kb=500.0)  # above spill threshold
        assert platform.kvstore.entry_count == 10
        sim.run_until(120.0)
        assert platform.completed_count() == 10
        # Finalized calls clean their spilled arguments up.
        assert platform.kvstore.entry_count == 0
        assert platform.kvstore.used_mb == pytest.approx(0.0)

    def test_small_args_not_spilled(self):
        sim = Simulator(seed=8)
        platform = XFaaS(sim, build_topology(n_regions=1, workers_per_unit=2))
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        platform.submit("f", args_size_kb=4.0)
        assert platform.kvstore.entry_count == 0

    def test_full_store_throttles_submission(self):
        sim = Simulator(seed=9)
        params = PlatformParams()
        platform = XFaaS(sim, build_topology(n_regions=1, workers_per_unit=2),
                         params)
        # Replace the store with a tiny one.
        from repro.core import DistributedKVStore as KV
        platform.kvstore = KV(sim, KVStoreParams(shards=1,
                                                 shard_capacity_mb=0.5))
        for frontend in platform.frontends.values():
            frontend.normal.kvstore = platform.kvstore
            frontend.spiky.kvstore = platform.kvstore
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        results = [platform.submit("f", args_size_kb=200.0)
                   for _ in range(10)]
        throttled = sum(1 for r in results if r is None)
        assert throttled > 0
        assert platform.kvstore.reject_count == throttled
