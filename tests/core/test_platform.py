"""Integration tests of the full XFaaS platform façade."""

import math

import pytest

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.downstream import ServiceRegistry, build_tao_stack
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile(cpu=10.0, mem=64.0, exec_s=0.3):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(mem), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


def make_platform(seed=1, n_regions=3, workers=4, params=None):
    sim = Simulator(seed=seed)
    topo = build_topology(n_regions=n_regions, workers_per_unit=workers)
    return sim, XFaaS(sim, topo, params or PlatformParams())


class TestLifecycle:
    def test_submit_execute_complete(self):
        sim, platform = make_platform()
        spec = FunctionSpec(name="f", profile=profile())
        platform.register_function(spec)
        calls = [platform.submit("f") for _ in range(20)]
        sim.run_until(60.0)
        assert platform.completed_count() == 20
        assert all(c.finish_time is not None for c in calls)

    def test_unknown_function_raises(self):
        sim, platform = make_platform()
        with pytest.raises(KeyError):
            platform.submit("ghost")

    def test_wrong_namespace_rejected(self):
        sim, platform = make_platform()
        with pytest.raises(ValueError):
            platform.register_function(
                FunctionSpec(name="f", namespace="other"))

    def test_trace_collection(self):
        sim, platform = make_platform()
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        platform.submit("f")
        sim.run_until(30.0)
        assert len(platform.traces) == 1
        trace = next(iter(platform.traces))
        assert trace.outcome == "ok"
        assert trace.completion_latency > 0

    def test_metrics_counters(self):
        sim, platform = make_platform()
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        for _ in range(10):
            platform.submit("f")
        sim.run_until(60.0)
        assert platform.metrics.counter("calls.received").total == 10
        assert platform.metrics.counter("calls.executed").total == 10

    def test_future_start_delays_execution(self):
        sim, platform = make_platform()
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        call = platform.submit("f", start_delay_s=300.0)
        sim.run_until(200.0)
        assert call.finish_time is None
        sim.run_until(400.0)
        assert call.finish_time is not None
        assert call.dispatch_time >= 300.0

    def test_determinism_across_runs(self):
        def run():
            sim, platform = make_platform(seed=99)
            platform.register_function(
                FunctionSpec(name="f", profile=profile()))
            for _ in range(30):
                platform.submit("f")
            sim.run_until(120.0)
            base = min(t.call_id for t in platform.traces)
            return sorted((t.call_id - base, t.finish_time, t.worker)
                          for t in platform.traces)
        assert run() == run()


class TestIsolationIntegration:
    def test_high_to_low_flow_denied_end_to_end(self):
        sim, platform = make_platform()
        platform.register_function(
            FunctionSpec(name="f", isolation_level=0, profile=profile()))
        call = platform.submit("f", source_level=5)
        sim.run_until(30.0)
        assert call.outcome is not None
        assert call.outcome.value == "isolation_denied"

    def test_low_to_high_allowed(self):
        sim, platform = make_platform()
        platform.register_function(
            FunctionSpec(name="f", isolation_level=3, profile=profile()))
        call = platform.submit("f", source_level=1)
        sim.run_until(30.0)
        assert call.outcome.value == "ok"


class TestDownstreamIntegration:
    def test_backpressure_reduces_function_rate(self):
        sim = Simulator(seed=5)
        topo = build_topology(n_regions=2, workers_per_unit=4)
        services = ServiceRegistry()
        tao, wtcache, kvstore = build_tao_stack(
            sim, services, wtcache_capacity_rps=20.0,
            kvstore_capacity_rps=10.0)
        from repro.core import CongestionParams
        params = PlatformParams(
            congestion=CongestionParams(
                backpressure_threshold_per_min=30.0, adjust_window_s=30.0))
        platform = XFaaS(sim, topo, params, services=services)
        spec = FunctionSpec(name="hammer", profile=profile(exec_s=0.05),
                            downstream=(("wtcache", 2),))
        platform.register_function(spec)
        # Saturate: 50 submissions/second for 5 minutes.
        task = sim.every(1.0, lambda: [platform.submit("hammer")
                                       for _ in range(50)])
        sim.run_until(300.0)
        task.cancel()
        # AIMD must have engaged and cut the rate below the initial cap.
        assert platform.congestion.decrease_count > 0
        assert platform.congestion.rps_limit("hammer") < 1e9

    def test_downstream_exceptions_counted(self):
        sim = Simulator(seed=6)
        topo = build_topology(n_regions=1, workers_per_unit=4)
        services = ServiceRegistry()
        build_tao_stack(sim, services, wtcache_capacity_rps=5.0,
                        kvstore_capacity_rps=5.0)
        platform = XFaaS(sim, topo, services=services)
        spec = FunctionSpec(name="f", profile=profile(exec_s=0.05),
                            downstream=(("wtcache", 5),))
        platform.register_function(spec)
        task = sim.every(1.0, lambda: [platform.submit("f")
                                       for _ in range(30)])
        sim.run_until(120.0)
        task.cancel()
        assert platform.metrics.counter("backpressure.wtcache").total > 0


class TestAblationFlags:
    def test_no_time_shifting_pins_s_high(self):
        sim, platform = make_platform(
            params=PlatformParams(time_shifting=False))
        from repro.core import S_MULTIPLIER_KEY
        sim.run_until(30.0)
        assert platform.config.get(S_MULTIPLIER_KEY) == 1.0e9

    def test_no_locality_groups_single_group(self):
        sim, platform = make_platform(
            params=PlatformParams(locality_groups=False))
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        assert platform.locality_optimizer.n_groups == 1

    def test_no_global_dispatch_identity_matrix(self):
        sim, platform = make_platform(
            params=PlatformParams(global_dispatch=False))
        sim.run_until(300.0)
        from repro.core import TRAFFIC_MATRIX_KEY
        assert platform.config.get(TRAFFIC_MATRIX_KEY) is None

    def test_spiky_client_registration(self):
        sim, platform = make_platform()
        platform.register_spiky_client("big-team")
        spec = FunctionSpec(name="f", team="big-team", profile=profile())
        platform.register_function(spec)
        platform.submit("f")
        sim.run_until(10.0)
        spiky_accepted = sum(f.spiky.accepted_count
                             for f in platform.frontends.values())
        assert spiky_accepted == 1


class TestControllerFailure:
    def test_platform_survives_controller_outage(self):
        # §4.1: critical path keeps executing on cached configs when the
        # central controllers are down.
        sim, platform = make_platform()
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        sim.run_until(120.0)
        platform.gtc.stop()
        platform.utilization_controller.stop()
        platform.locality_optimizer.stop()
        before = platform.completed_count()
        for _ in range(20):
            platform.submit("f")
        sim.run_until(300.0)
        assert platform.completed_count() == before + 20


class TestQueueLBStorageBalancing:
    def test_policy_spreads_durableq_writes(self):
        # §4.3: with a capacity-proportional routing policy, a region's
        # submissions are stored across multiple regions' DurableQs.
        sim, platform = make_platform(
            seed=13, params=PlatformParams(queuelb_locality_bias=0.3))
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        sim.run_until(30.0)  # let QueueLB caches pick up the policy
        region = platform.topology.region_names[0]
        for _ in range(300):
            platform.submit("f", region=region)
        sim.run_until(40.0)
        by_region = {
            r: sum(q.enqueued_count for q in qs)
            for r, qs in platform.durableqs_by_region.items()}
        stored_remotely = sum(n for r, n in by_region.items() if r != region)
        assert stored_remotely > 50  # meaningful cross-region storage

    def test_default_keeps_storage_local(self):
        sim, platform = make_platform(seed=14)
        platform.register_function(FunctionSpec(name="f", profile=profile()))
        region = platform.topology.region_names[0]
        for _ in range(100):
            platform.submit("f", region=region)
        sim.run_until(10.0)
        by_region = {
            r: sum(q.enqueued_count for q in qs)
            for r, qs in platform.durableqs_by_region.items()}
        assert by_region[region] == 100
