"""Tests for AIMD, concurrency limits, and slow start (§4.6.3)."""

import pytest

from repro.core import CongestionController, CongestionParams
from repro.workloads import FunctionSpec


def make_controller(**overrides):
    defaults = dict(multiplicative_decrease=0.5, additive_increase_rps=10.0,
                    adjust_window_s=60.0, backpressure_threshold_per_min=100.0,
                    slow_start_threshold_calls=100.0, slow_start_growth=0.2)
    defaults.update(overrides)
    return CongestionController(CongestionParams(**defaults))


class TestAimd:
    def test_decrease_on_backpressure_over_threshold(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        # Simulate a window of dispatches at ~200 RPS with heavy exceptions.
        for _ in range(1000):
            if ctl.can_dispatch("f", 0.0):
                ctl.on_dispatch("f")
        ctl.on_backpressure("f", "svc", 150.0)
        ctl.adjust(60.0)
        r1 = ctl.rps_limit("f")
        assert r1 < 1e9  # engaged and anchored to the observed rate
        ctl.on_backpressure("f", "svc", 150.0)
        ctl.adjust(120.0)
        # Multiplicative decrease: halved (M = 0.5).
        assert ctl.rps_limit("f") == pytest.approx(r1 * 0.5)

    def test_additive_increase_when_clear(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        ctl.on_dispatch("f")
        ctl.on_backpressure("f", "svc", 150.0)
        ctl.adjust(60.0)
        r1 = ctl.rps_limit("f")
        ctl.adjust(120.0)  # clean window
        assert ctl.rps_limit("f") == pytest.approx(r1 + 10.0)

    def test_below_threshold_no_decrease(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        ctl.on_backpressure("f", "svc", 50.0)  # below 100/min
        ctl.adjust(60.0)
        assert ctl.rps_limit("f") == pytest.approx(1e9)

    def test_per_service_thresholds(self):
        # §4.6.3: thresholds set per downstream service by its owner.
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        ctl.set_service_threshold("tolerant", 5000.0)
        ctl.on_backpressure("f", "tolerant", 1000.0)
        ctl.adjust(60.0)
        assert ctl.rps_limit("f") == pytest.approx(1e9)  # under 5000/min
        ctl.on_backpressure("f", "tolerant", 6000.0)
        ctl.adjust(120.0)
        assert ctl.rps_limit("f") < 1e9

    def test_limit_floor(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        for window in range(1, 60):
            ctl.on_backpressure("f", "svc", 500.0)
            ctl.adjust(window * 60.0)
        assert ctl.rps_limit("f") == pytest.approx(ctl.params.min_rps)

    def test_full_recovery_disengages(self):
        ctl = make_controller(additive_increase_rps=1e9)
        ctl.register(FunctionSpec(name="f"))
        ctl.on_dispatch("f")
        ctl.on_backpressure("f", "svc", 150.0)
        ctl.adjust(60.0)
        ctl.adjust(120.0)  # huge additive step → back to initial
        assert ctl.rps_limit("f") == pytest.approx(1e9)


class TestConcurrencyLimit:
    def test_cap_enforced(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f", concurrency_limit=2))
        assert ctl.can_dispatch("f", 0.0)
        ctl.on_dispatch("f")
        assert ctl.can_dispatch("f", 0.0)
        ctl.on_dispatch("f")
        assert not ctl.can_dispatch("f", 0.0)
        assert ctl.concurrency_denials == 1

    def test_finish_frees_slot(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f", concurrency_limit=1))
        ctl.on_dispatch("f")
        ctl.on_finish("f")
        assert ctl.can_dispatch("f", 0.0)

    def test_unbalanced_finish_raises(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        with pytest.raises(RuntimeError):
            ctl.on_finish("f")

    def test_r_equals_rate_times_exec_time(self):
        # §4.6.3: R = r × p concurrent instances.
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        state = ctl._functions["f"]
        state.rps_limit = 10.0
        assert ctl.max_concurrency_estimate("f", 3.0) == pytest.approx(30.0)


class TestSlowStart:
    def test_free_below_threshold(self):
        # W=1 min, T=100: under 100 calls per window no gating applies.
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        for _ in range(99):
            assert ctl.can_dispatch("f", 0.0)
            ctl.on_dispatch("f")

    def test_growth_capped_at_alpha(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        dispatched_per_window = []
        for window in range(6):
            count = 0
            for _ in range(10_000):
                if ctl.can_dispatch("f", window * 60.0):
                    ctl.on_dispatch("f")
                    ctl.on_finish("f")
                    count += 1
            dispatched_per_window.append(count)
            ctl.adjust((window + 1) * 60.0)
        # First window: T = 100.  Each later window ≤ prev × 1.2.
        assert dispatched_per_window[0] == 100
        for prev, cur in zip(dispatched_per_window, dispatched_per_window[1:]):
            assert cur <= prev * 1.2 + 1
        assert dispatched_per_window[-1] > dispatched_per_window[0]

    def test_denial_counted(self):
        ctl = make_controller()
        ctl.register(FunctionSpec(name="f"))
        for _ in range(150):
            if ctl.can_dispatch("f", 0.0):
                ctl.on_dispatch("f")
        assert ctl.slow_start_denials == 50


class TestValidation:
    def test_param_validation(self):
        with pytest.raises(ValueError):
            CongestionParams(multiplicative_decrease=1.5)
        with pytest.raises(ValueError):
            CongestionParams(additive_increase_rps=0)

    def test_unregistered_function_raises(self):
        with pytest.raises(KeyError):
            make_controller().can_dispatch("nope", 0.0)

    def test_service_threshold_validation(self):
        with pytest.raises(ValueError):
            make_controller().set_service_threshold("svc", 0.0)
