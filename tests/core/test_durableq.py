"""Tests for DurableQ at-least-once semantics (§4.3)."""

import pytest

from repro.core import DurableQ, FunctionCall
from repro.core.call import CallIdAllocator
from repro.sim import Simulator
from repro.workloads import FunctionSpec


_ids = CallIdAllocator()


def make_call(sim, name="f", start_delay=0.0):
    spec = FunctionSpec(name=name)
    return FunctionCall(spec=spec, submit_time=sim.now,
                        start_time=sim.now + start_delay,
                        region_submitted="r", call_id=_ids.allocate())


class TestEnqueuePoll:
    def test_poll_leases_ready_calls(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        call = make_call(sim)
        q.enqueue(call)
        leased = q.poll("s1", 10)
        assert leased == [call]
        assert q.leased_count == 1
        assert q.pending_count == 0

    def test_future_start_time_not_offered(self):
        # §4.3: queues ordered by execution start time; future calls wait.
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        q.enqueue(make_call(sim, start_delay=100.0))
        assert q.poll("s1", 10) == []
        sim.run_until(100.0)
        assert len(q.poll("s1", 10)) == 1

    def test_leased_not_offered_to_another_scheduler(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        q.enqueue(make_call(sim))
        q.poll("s1", 10)
        assert q.poll("s2", 10) == []

    def test_max_items_respected(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        for i in range(10):
            q.enqueue(make_call(sim, name=f"f{i}"))
        assert len(q.poll("s1", 3)) == 3
        assert q.pending_count == 7

    def test_fairness_across_functions(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        for _ in range(10):
            q.enqueue(make_call(sim, name="hog"))
        q.enqueue(make_call(sim, name="small"))
        leased = q.poll("s1", 20)
        names = {c.function_name for c in leased}
        assert names == {"hog", "small"}

    def test_start_time_order_within_function(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        late = make_call(sim, start_delay=50.0)
        early = make_call(sim, start_delay=10.0)
        q.enqueue(late)
        q.enqueue(early)
        sim.run_until(100.0)
        leased = q.poll("s1", 10)
        assert leased == [early, late]


class TestAckNack:
    def test_ack_removes_permanently(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        call = make_call(sim)
        q.enqueue(call)
        q.poll("s1", 1)
        q.ack(call)
        assert q.leased_count == 0
        assert q.pending_count == 0
        assert q.acked_count == 1

    def test_nack_redelivers(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        call = make_call(sim)
        q.enqueue(call)
        q.poll("s1", 1)
        q.nack(call)
        assert call.attempts == 1
        assert len(q.poll("s2", 1)) == 1

    def test_nack_with_retry_delay(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        call = make_call(sim)
        q.enqueue(call)
        q.poll("s1", 1)
        q.nack(call, retry_delay_s=30.0)
        assert q.poll("s1", 1) == []
        sim.run_until(30.0)
        assert len(q.poll("s1", 1)) == 1

    def test_ack_unknown_is_noop(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        q.ack(make_call(sim))
        assert q.acked_count == 0


class TestLeaseExpiry:
    def test_expired_lease_redelivered(self):
        # §4.3: no ACK/NACK within the timeout → another scheduler may retry.
        sim = Simulator()
        q = DurableQ(sim, "q", "r", lease_timeout_s=60.0,
                     sweep_interval_s=10.0)
        call = make_call(sim)
        q.enqueue(call)
        q.poll("s1", 1)
        sim.run_until(100.0)
        assert q.expired_lease_count == 1
        assert len(q.poll("s2", 1)) == 1

    def test_extended_lease_survives(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r", lease_timeout_s=60.0,
                     sweep_interval_s=10.0)
        call = make_call(sim)
        q.enqueue(call)
        q.poll("s1", 1)
        for t in range(30, 200, 30):
            sim.run_until(float(t))
            q.extend_lease(call.call_id)
        assert q.expired_lease_count == 0
        assert q.leased_count == 1

    def test_ready_count(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        q.enqueue(make_call(sim))
        q.enqueue(make_call(sim, start_delay=1000.0))
        assert q.pending_count == 2
        assert q.ready_count() == 1

    def test_invalid_lease_timeout(self):
        with pytest.raises(ValueError):
            DurableQ(Simulator(), "q", "r", lease_timeout_s=0.0)


class TestRotationGc:
    def test_function_resurfaces_after_gc_prune(self):
        """Regression: a function whose queue went momentarily empty must
        be pollable again after later enqueues, even once the rotation
        GC pruned its name (66+ functions trigger the GC path)."""
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        # Register 70 functions with one call each and drain them,
        # spinning the cursor enough to trigger the GC.
        for i in range(70):
            q.enqueue(make_call(sim, name=f"fn{i}"))
        drained = q.poll("s1", 100)
        assert len(drained) == 70
        for _ in range(10):
            q.poll("s1", 50)  # spin the cursor past the GC threshold
        # New calls for previously-seen functions must be visible.
        for i in range(70):
            q.enqueue(make_call(sim, name=f"fn{i}"))
        leased = q.poll("s2", 200)
        assert len(leased) == 70

    def test_poll_eventually_serves_every_function(self):
        sim = Simulator()
        q = DurableQ(sim, "q", "r")
        for round_ in range(5):
            for i in range(80):
                q.enqueue(make_call(sim, name=f"fn{i}"))
            leased = []
            while True:
                batch = q.poll("s1", 7)
                if not batch:
                    break
                leased.extend(batch)
                for c in batch:
                    q.ack(c)
            assert len(leased) == 80, f"round {round_} lost calls"
