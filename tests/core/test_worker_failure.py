"""Tests for worker failure injection and outage recovery (§4.4)."""

import math

import pytest

from repro import Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.core import TRAFFIC_MATRIX_KEY, CallOutcome, Worker
from repro.core.call import CallIdAllocator, CallState, FunctionCall
from repro.workloads import (
    Criticality,
    FunctionSpec,
    LogNormal,
    ResourceProfile,
    RetryPolicy,
)


def profile(cpu=50.0, exec_s=0.5):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.2),
        memory_mb=LogNormal(mu=math.log(32.0), sigma=0.2),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.2))


_ids = CallIdAllocator()


class TestWorkerFail:
    def test_fail_interrupts_running_calls(self):
        sim = Simulator(seed=1)
        outcomes = []
        worker = Worker(sim, "w", "r",
                        on_finish=lambda c, o: outcomes.append(o))
        spec = FunctionSpec(name="f", profile=profile(exec_s=100.0))
        call = FunctionCall(spec=spec, submit_time=0.0, start_time=0.0,
                            region_submitted="r", call_id=_ids.allocate())
        assert worker.execute(call)
        worker.fail()
        assert outcomes == [CallOutcome.WORKER_FULL]
        assert worker.running_count == 0
        assert worker.cpu.load == pytest.approx(0.0)

    def test_offline_refuses_admission(self):
        sim = Simulator(seed=2)
        worker = Worker(sim, "w", "r")
        worker.fail()
        call = FunctionCall(spec=FunctionSpec(name="f", profile=profile()),
                            submit_time=0.0, start_time=0.0,
                            region_submitted="r", call_id=_ids.allocate())
        assert not worker.execute(call)

    def test_recover_restarts_jit_cold(self):
        sim = Simulator(seed=3)
        worker = Worker(sim, "w", "r")
        worker.fail()
        worker.recover()
        assert worker.online
        # Runtime restarted without profile data: the 21-minute ramp.
        assert worker.jit.speed(sim.now) < 1.0
        assert worker.jit.time_to_max(sim.now) == pytest.approx(1260.0)
        assert worker.resident_functions == 0

    def test_fail_idempotent(self):
        sim = Simulator(seed=4)
        worker = Worker(sim, "w", "r")
        worker.fail()
        worker.fail()
        worker.recover()
        worker.recover()
        assert worker.online


class TestRegionOutage:
    def test_calls_retry_to_surviving_region(self):
        """A whole region goes down mid-flight; its calls complete in the
        other region through NACK redelivery and cross-region pulls."""
        sim = Simulator(seed=5)
        topo = build_topology(n_regions=2, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        spec = FunctionSpec(name="f", profile=profile(exec_s=20.0),
                            retry_policy=RetryPolicy(max_attempts=5,
                                                     retry_delay_s=1.0))
        platform.register_function(spec)
        r0, r1 = topo.region_names
        # Let r1 help r0 once the outage hits.
        platform.config.publish(TRAFFIC_MATRIX_KEY,
                                {r1: {r1: 0.5, r0: 0.5}})
        calls = [platform.submit("f", region=r0) for _ in range(12)]
        sim.run_until(10.0)  # calls are running in both regions
        for worker in platform.workers_by_region[r0]:
            worker.fail()
        platform.schedulers[r0].stop()  # region infrastructure down too
        sim.run_until(900.0)
        done = sum(1 for c in calls if c.state is CallState.COMPLETED)
        assert done == 12
        # Everything that finished after the outage ran in r1.
        late = [c for c in calls if c.finish_time and c.finish_time > 10.0]
        assert late and all(c.worker_name.startswith(r1) for c in late)

    def test_criticality_survival_under_capacity_crunch(self):
        """§4.4: under a capacity crunch, high-criticality calls are more
        likely to execute (on time) than low-criticality ones."""
        sim = Simulator(seed=6)
        topo = build_topology(
            n_regions=1, workers_per_unit=2,
            machine_spec=MachineSpec(cores=2, core_mips=500, threads=8))
        platform = XFaaS(sim, topo)
        crit = FunctionSpec(name="crit", criticality=Criticality.CRITICAL,
                            quota_minstr_per_s=1.0e9,
                            profile=profile(cpu=500.0, exec_s=1.0))
        low = FunctionSpec(name="low", criticality=Criticality.LOW,
                           quota_minstr_per_s=1.0e9,
                           profile=profile(cpu=500.0, exec_s=1.0))
        platform.register_function(crit)
        platform.register_function(low)
        # Crunch: lose half the workers, then offer 3x capacity demand.
        workers = platform.workers_by_region[topo.region_names[0]]
        workers[0].fail()
        for _ in range(300):
            platform.submit("crit")
            platform.submit("low")
        sim.run_until(240.0)
        crit_traces = [t for t in platform.traces.completed()
                       if t.function == "crit"]
        low_traces = [t for t in platform.traces.completed()
                      if t.function == "low"]
        # The critical function gets the scarce capacity first: all of
        # it completes, the low-criticality backlog is still deferred.
        assert len(crit_traces) == 300
        assert len(low_traces) < 0.8 * 300
        crit_delay = sorted(t.queueing_delay for t in crit_traces)
        low_delay = sorted(t.queueing_delay for t in low_traces)
        assert crit_delay[len(crit_delay) // 2] < \
            low_delay[len(low_delay) // 2]
