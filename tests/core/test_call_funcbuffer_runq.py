"""Tests for FunctionCall, FuncBuffer ordering, and RunQ flow control."""

import pytest

from repro.core import FuncBuffer, FunctionCall, RunQ
from repro.core.call import CallIdAllocator, CallState
from repro.workloads import Criticality, FunctionSpec


_ids = CallIdAllocator()


def make_call(name="f", submit=0.0, start=None, criticality=Criticality.NORMAL,
              deadline=60.0, **kwargs):
    spec = FunctionSpec(name=name, criticality=criticality,
                        deadline_s=deadline)
    kwargs.setdefault("call_id", _ids.allocate())
    return FunctionCall(spec=spec, submit_time=submit,
                        start_time=start if start is not None else submit,
                        region_submitted="r0", **kwargs)


class TestFunctionCall:
    def test_deadline_from_start_time(self):
        call = make_call(submit=10.0, start=100.0, deadline=60.0)
        assert call.deadline_time == 160.0

    def test_start_before_submit_rejected(self):
        with pytest.raises(ValueError):
            make_call(submit=10.0, start=5.0)

    def test_is_ready(self):
        call = make_call(submit=0.0, start=50.0)
        assert not call.is_ready(49.9)
        assert call.is_ready(50.0)

    def test_unique_ids(self):
        ids = {make_call().call_id for _ in range(100)}
        assert len(ids) == 100

    def test_sort_key_criticality_dominates(self):
        low = make_call(criticality=Criticality.LOW, deadline=1.0)
        high = make_call(criticality=Criticality.CRITICAL, deadline=86_400.0)
        assert high.sort_key() < low.sort_key()

    def test_sort_key_deadline_breaks_ties(self):
        urgent = make_call(deadline=10.0)
        relaxed = make_call(deadline=3600.0)
        assert urgent.sort_key() < relaxed.sort_key()


class TestFuncBuffer:
    def test_orders_by_criticality_then_deadline(self):
        buf = FuncBuffer("f")
        normal_urgent = make_call(criticality=Criticality.NORMAL, deadline=5.0)
        high_relaxed = make_call(criticality=Criticality.HIGH, deadline=3600.0)
        high_urgent = make_call(criticality=Criticality.HIGH, deadline=60.0)
        for c in (normal_urgent, high_relaxed, high_urgent):
            buf.push(c)
        assert buf.pop() is high_urgent
        assert buf.pop() is high_relaxed
        assert buf.pop() is normal_urgent

    def test_rejects_wrong_function(self):
        buf = FuncBuffer("other")
        with pytest.raises(ValueError):
            buf.push(make_call(name="f"))

    def test_peek_does_not_remove(self):
        buf = FuncBuffer("f")
        call = make_call()
        buf.push(call)
        assert buf.peek() is call
        assert len(buf) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FuncBuffer("f").pop()

    def test_head_key_none_when_empty(self):
        assert FuncBuffer("f").head_key() is None

    def test_fifo_within_equal_priority(self):
        buf = FuncBuffer("f")
        first = make_call(deadline=60.0)
        second = make_call(deadline=60.0)
        buf.push(second)
        buf.push(first)
        # Same criticality+deadline → lower call_id (earlier) first.
        assert buf.pop() is first


class TestRunQ:
    def test_fifo(self):
        q = RunQ(capacity=10)
        a, b = make_call(), make_call()
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b
        assert q.pop() is None

    def test_push_sets_state(self):
        q = RunQ()
        call = make_call()
        q.push(call)
        assert call.state is CallState.RUNNABLE

    def test_capacity_enforced(self):
        q = RunQ(capacity=1)
        q.push(make_call())
        assert q.full
        with pytest.raises(OverflowError):
            q.push(make_call())

    def test_push_front_preserves_order(self):
        q = RunQ()
        a, b = make_call(), make_call()
        q.push(b)
        q.push_front(a)
        assert q.pop() is a

    def test_fill_fraction(self):
        q = RunQ(capacity=4)
        q.push(make_call())
        assert q.fill_fraction() == 0.25
        assert q.free_space == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RunQ(capacity=0)
