"""Edge-case coverage for corners the main suites do not reach."""

import math

import pytest

from repro.analysis import aggregate_percentiles
from repro.core import CodeDeployer, ConfigStore, RolloutParams
from repro.metrics import MetricsRegistry
from repro.sim import Signal, Simulator
from repro.workloads import CallTrace, LogNormal


def trace(cpu=10.0, outcome="ok"):
    return CallTrace(call_id=1, function="f", trigger="queue", criticality=1,
                     quota_type="reserved", submit_time=0.0,
                     start_time_requested=0.0, dispatch_time=1.0,
                     finish_time=2.0, region_submitted="r",
                     region_executed="r", worker="w", outcome=outcome,
                     cpu_minstr=cpu, memory_mb=64.0, exec_time_s=1.0)


class TestAggregatePercentiles:
    def test_values_and_filtering(self):
        traces = [trace(cpu=float(i)) for i in range(1, 101)]
        traces.append(trace(cpu=1e9, outcome="error"))  # excluded
        p50, p99 = aggregate_percentiles(traces, "cpu_minstr", (50, 99))
        assert p50 == 50.0
        assert p99 == 99.0


class TestMetricsRegistryWindows:
    def test_counter_window_override(self):
        reg = MetricsRegistry(counter_window=60.0)
        c = reg.counter("custom", window=10.0)
        assert c.window == 10.0

    def test_distributions_matching(self):
        reg = MetricsRegistry()
        reg.distribution("a.x")
        reg.distribution("a.y")
        reg.distribution("b.z")
        assert len(list(reg.distributions_matching("a."))) == 2


class TestSignalEdgeCases:
    def test_fail_then_fire_rejected(self):
        sig = Signal()
        sig.fail(ValueError("x"))
        with pytest.raises(RuntimeError):
            sig.fire(1)

    def test_error_visible_to_late_waiter(self):
        sig = Signal()
        err = ValueError("boom")
        sig.fail(err)
        seen = []
        sig.add_waiter(lambda s: seen.append(s.error))
        assert seen == [err]


class TestLogNormalAnalytics:
    def test_mean_matches_closed_form_unclamped(self):
        ln = LogNormal(mu=1.0, sigma=0.5)
        assert ln.mean == pytest.approx(math.exp(1.0 + 0.125))

    def test_mean_with_tight_cap_approaches_cap(self):
        ln = LogNormal(mu=10.0, sigma=2.0, hi=5.0)
        # Essentially all mass is above the cap.
        assert ln.mean == pytest.approx(5.0, rel=0.01)

    def test_degenerate_sigma_zero(self):
        ln = LogNormal(mu=math.log(7.0), sigma=0.0)
        assert ln.mean == pytest.approx(7.0)
        assert ln.median == pytest.approx(7.0)


class TestCodeDeployerLifecycle:
    def test_start_twice_rejected(self):
        sim = Simulator()
        deployer = CodeDeployer(sim)
        deployer.start()
        with pytest.raises(RuntimeError):
            deployer.start()

    def test_stop_halts_pushes(self):
        sim = Simulator()
        deployer = CodeDeployer(
            sim, RolloutParams(push_interval_s=100.0))
        deployer.start()
        sim.run_until(150.0)
        version_after_one = deployer.current_version.version
        deployer.stop()
        sim.run_until(1000.0)
        assert deployer.current_version.version == version_after_one

    def test_push_with_no_workers_is_safe(self):
        sim = Simulator()
        deployer = CodeDeployer(sim)
        deployer.push_new_version()
        sim.run_until(5000.0)
        assert deployer.current_version.version == 2


class TestConfigStoreEdge:
    def test_unsubscribed_key_get_default(self):
        store = ConfigStore(Simulator(), propagation_delay_s=0.0)
        assert store.get("nope", default=42) == 42
        assert store.version("nope") == 0

    def test_multiple_subscribers_all_fire(self):
        sim = Simulator()
        store = ConfigStore(sim, propagation_delay_s=1.0)
        seen = []
        store.subscribe("k", lambda k, v: seen.append(("a", v)))
        store.subscribe("k", lambda k, v: seen.append(("b", v)))
        store.publish("k", 5)
        sim.run_until(2.0)
        assert seen == [("a", 5), ("b", 5)]
