"""Sweep engine: grid expansion, determinism under fan-out, failure
handling, and aggregation.

The headline invariant: the same specs and master seed produce
bit-identical per-run trace digests and identical merged statistics
whether the sweep runs serially in-process or across spawn workers.
"""

import pytest

from repro.sim import derive_seed
from repro.sweep import (
    ABLATIONS,
    RunResult,
    RunSpec,
    aggregate_summaries,
    build_grid,
    confidence_interval,
    execute_spec,
    merge_metrics,
    run_sweep,
    seed_for_rep,
    sweep_report,
)

# Small enough to keep the multiprocess test quick, big enough to
# exercise the full platform (spike may or may not attach at this size).
TINY = dict(horizon_s=900.0, total_rate=1.5, n_functions=20, n_regions=3)


def tiny_grid(n_reps=2, variants=None):
    return build_grid(n_reps=n_reps, master_seed=7, variants=variants, **TINY)


class TestGrid:
    def test_indices_and_order_are_deterministic(self):
        specs = tiny_grid(n_reps=3, variants=[("a", {}), ("b", {})])
        assert [s.index for s in specs] == list(range(6))
        assert [s.label for s in specs] == ["a"] * 3 + ["b"] * 3
        assert specs == tiny_grid(n_reps=3, variants=[("a", {}), ("b", {})])

    def test_seeds_are_paired_across_variants(self):
        specs = tiny_grid(n_reps=2, variants=[("a", {}),
                                              ("b", {"time_shifting": False})])
        a_seeds = [s.seed for s in specs if s.label == "a"]
        b_seeds = [s.seed for s in specs if s.label == "b"]
        assert a_seeds == b_seeds  # rep i runs the same workload in A and B
        assert len(set(a_seeds)) == len(a_seeds)

    def test_seed_derivation_uses_master_seed(self):
        assert seed_for_rep(7, 0) == derive_seed(7, "sweep:rep0")
        assert seed_for_rep(7, 0) != seed_for_rep(8, 0)
        assert seed_for_rep(7, 0) != seed_for_rep(7, 1)

    def test_overrides_roundtrip_and_ablation_table(self):
        spec = tiny_grid(variants=[("x", ABLATIONS["time-shifting"])])[0]
        assert spec.overrides_dict() == {"time_shifting": False}
        assert set(ABLATIONS) == {"time-shifting", "global-dispatch",
                                  "locality-groups", "cooperative-jit",
                                  "aimd"}

    def test_rejects_bad_grids(self):
        with pytest.raises(ValueError):
            build_grid(n_reps=0)
        with pytest.raises(ValueError):
            run_sweep([RunSpec(index=1, seed=1), RunSpec(index=1, seed=2)])


class TestExecution:
    def test_result_is_compact_and_serializable(self):
        import json
        import pickle
        res = execute_spec(tiny_grid(n_reps=1)[0])
        assert res.ok, res.error
        assert res.trace_digest and res.n_traces > 0
        assert res.summary["completed"] > 0
        pickle.dumps(res)
        json.dumps(res.to_json(include_metrics=True))

    def test_failed_spec_reported_sweep_continues(self):
        import dataclasses
        specs = [RunSpec(index=0, seed=1, scenario="no-such-scenario"),
                 dataclasses.replace(tiny_grid(n_reps=1)[0], index=1)]
        results = run_sweep(specs, workers=1)
        assert [r.index for r in results] == [0, 1]
        assert not results[0].ok
        assert "unknown scenario" in results[0].error
        assert results[1].ok
        report = sweep_report(results)
        assert report["n_failed"] == 1 and report["n_runs"] == 2

    def test_workers_do_not_change_results(self):
        """Same grid, workers 1 vs 4: identical digests and stats."""
        specs = tiny_grid(n_reps=2)
        serial = run_sweep(specs, workers=1)
        parallel = run_sweep(specs, workers=4)  # spawn pool
        assert all(r.ok for r in serial + parallel)
        assert [r.index for r in parallel] == [r.index for r in serial]
        assert [r.trace_digest for r in parallel] == \
               [r.trace_digest for r in serial]
        assert [r.summary for r in parallel] == [r.summary for r in serial]
        merged_s = merge_metrics(serial).snapshot()
        merged_p = merge_metrics(parallel).snapshot()
        assert merged_s == merged_p
        assert aggregate_summaries(serial) == aggregate_summaries(parallel)

    def test_repeated_serial_runs_are_reproducible(self):
        spec = tiny_grid(n_reps=1)[0]
        assert execute_spec(spec).trace_digest == \
               execute_spec(spec).trace_digest


class TestAggregation:
    def make_result(self, index, label, util):
        return RunResult(index=index, seed=index, label=label, ok=True,
                         wall_s=1.0, summary={"fleet_util_mean": util})

    def test_confidence_interval(self):
        stats = confidence_interval([0.6, 0.7])
        assert stats["n"] == 2
        assert stats["mean"] == pytest.approx(0.65)
        # df=1 t-critical is 12.706; halfwidth = t * std / sqrt(2)
        assert stats["ci95"] == pytest.approx(
            12.706 * stats["std"] / 2 ** 0.5)
        single = confidence_interval([0.5])
        assert single["std"] == 0.0 and single["ci95"] != single["ci95"]  # NaN
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_aggregate_groups_by_label_and_skips_failures(self):
        results = [self.make_result(0, "a", 0.6),
                   self.make_result(1, "a", 0.7),
                   self.make_result(2, "b", 0.5),
                   RunResult(index=3, seed=3, label="a", ok=False,
                             wall_s=0.0, error="boom")]
        agg = aggregate_summaries(results)
        assert agg["a"]["fleet_util_mean"]["n"] == 2
        assert agg["b"]["fleet_util_mean"]["n"] == 1
        report = sweep_report(results)
        assert report["n_failed"] == 1
        assert report["runs"][3]["error"] == "boom"
