"""True positives for SL010: aliased/interprocedural cross-region
access.  Every finding here is invisible to SL009 — no expression in
this file matches the syntactic ``map[key].attr`` pattern — which is
exactly the acceptance pairing (SL009-clean, SL010-hit)."""


class ShardPlatform:
    def __init__(self, schedulers, durableqs_by_region,
                 workers_by_region):
        self.schedulers = schedulers
        self.durableqs_by_region = durableqs_by_region
        self.workers_by_region = workers_by_region
        self.region = "region-00"

    def _sched(self, r):
        return self.schedulers[r]

    def _depth(self, q):
        return q.depth

    def peek_via_alias(self):
        # SL009 sees nothing: the subscript and the attribute read are
        # two statements apart.
        s = self.schedulers["region-01"]
        return s.pending_demand

    def tick_via_helper(self):
        # The subscript lives inside _sched(); the foreign key is here.
        remote = self._sched("region-02")
        return remote.pending_demand

    def drain_via_argument(self):
        # The deep use lives inside _depth(); the taint flows through
        # the call argument.
        dq = self.durableqs_by_region["region-03"]
        return self._depth(dq)

    def sample_foreign_row(self):
        # A WorkerArrays row stays shard-owned through the element
        # subscript.
        foreign = "region-04"
        w = self.workers_by_region[foreign][0]
        return w.memory_in_use_mb

    def scan_foreign_pool(self):
        total = 0
        for w in self.workers_by_region["region-05"]:
            total += w.running
        return total
