"""True negatives for SL011: plain-data payloads across the Pipe."""


class ShardMessage:
    def __init__(self, deliver_at, src_region, src_seq, payload):
        self.deliver_at = deliver_at
        self.payload = payload


class ShardPlatform:
    def __init__(self, durableqs_by_region, mailbox):
        self.durableqs_by_region = durableqs_by_region
        self.mailbox = mailbox
        self.region = "region-00"

    def send(self, dst_region, deliver_at, payload):
        self.mailbox.append((dst_region, deliver_at, payload))

    def report(self, dst, call_id):
        # Plain data (names, ids, timestamps) is the mailbox protocol.
        self.send(dst, 1.0, (self.region, call_id, "done"))

    def ship_untainted_closure(self, dst, n):
        # A closure over plain locals is pickle-fine and shard-safe.
        base = n * 2
        self.send(dst, 2.0, lambda: base + 1)

    def local_callback(self):
        # Closures over shard-owned state are fine when they *stay*
        # on this shard (a sim callback, not a Pipe crossing).
        dq = self.durableqs_by_region[self.region]
        self.mailbox.append(lambda: dq.pop_head())
