"""True positives for SL012: mutation through a non-owning region key.
None of these match SL009's syntactic pattern — subscript stores have
no attribute node, and the aliased/interprocedural forms hide the
subscript from the mutation site."""


class ShardPlatform:
    def __init__(self, counts_by_region, durableqs_by_region,
                 schedulers, queuelbs):
        self.counts_by_region = counts_by_region
        self.durableqs_by_region = durableqs_by_region
        self.schedulers = schedulers
        self.queuelbs = queuelbs
        self.region = "region-00"

    def _bump(self, counters):
        counters.update({"stolen": 1})

    def steal_credit(self):
        # Direct augmented store: no attribute access, SL009-blind.
        other = "region-01"
        self.counts_by_region[other] += 1

    def replace_foreign_queue(self):
        # Rebinding another shard's map entry outright.
        self.durableqs_by_region["region-02"] = []

    def push_foreign(self, item):
        # Aliased mutating method call.
        lb = self.queuelbs["region-03"]
        lb.push(item)

    def pause_foreign(self):
        # Aliased attribute store.
        s = self.schedulers["region-04"]
        s.paused = True

    def bump_via_helper(self):
        # The mutation lives inside _bump(); the foreign key is here.
        self._bump(self.counts_by_region["region-05"])
