"""Suppression check for SL011."""


class ShardPlatform:
    def __init__(self, durableqs_by_region, mailbox):
        self.durableqs_by_region = durableqs_by_region
        self.mailbox = mailbox
        self.region = "region-00"

    def send(self, dst_region, deliver_at, payload):
        self.mailbox.append((dst_region, deliver_at, payload))

    def offload(self, dst):
        # In-process test harness only; never spawns.
        dq = self.durableqs_by_region[self.region]
        self.send(dst, 1.0, lambda: dq.depth)  # simlint: disable=SL011 -- test harness
