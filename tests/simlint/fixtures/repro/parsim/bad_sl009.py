"""True positives for SL009: cross-region access bypassing the mailbox."""


class ShardPlatform:
    def __init__(self, schedulers, durableqs_by_region, workerlbs):
        self.schedulers = schedulers
        self.durableqs_by_region = durableqs_by_region
        self.workerlbs = workerlbs
        self.region = "region-00"

    def steal_work(self, other_region):
        # Driving another region's scheduler at this instant: its shard
        # may live in a different process, and even in-process the tick
        # happens a network latency too early.
        self.schedulers[other_region].tick()

    def peek_backlog(self, other_region):
        # Reading remote mutable state without a message round trip.
        return self.schedulers[other_region].pending_demand

    def requeue_remote(self, call, r):
        # nack_by_id is owner-side bookkeeping, not the handle surface —
        # calling it across regions skips the delivery delay.
        self.durableqs_by_region[r][0].nack_by_id(call.call_id)

    def rebalance(self, other_region, workers):
        # Mutating a foreign region's balancer directly.
        self.workerlbs[other_region].add_workers(workers)
