"""True negatives for SL009: sanctioned region-map access patterns."""


class ShardPlatform:
    def __init__(self, schedulers, durableqs_by_region, frontends):
        self.schedulers = schedulers
        self.durableqs_by_region = durableqs_by_region
        self.frontends = frontends
        self.region = "region-00"
        # Structural wiring may index any region freely.
        self.schedulers["region-01"].on_done = self._on_done

    def _on_done(self, call, outcome):
        pass

    def submit_local(self, call, region):
        # The handle surface is identical for local queues and remote
        # handles, so calls through it are mailbox-safe by construction.
        return self.frontends[region].submit(call)

    def poll_own_region(self, scheduler_id):
        # A component's own region is the sanctioned synchronous path.
        return self.durableqs_by_region[self.region][0].poll(
            scheduler_id, 10)

    def handle_message(self, msg):
        # The mailbox's receiving end applies messages on the owner
        # side — direct access here IS the protocol.
        region, call_id = msg
        self.durableqs_by_region[region][0].ack_by_id(call_id)

    def register_function(self, spec, region):
        # Registration runs O(1) times at construction.
        self.schedulers[region].functions.append(spec)
