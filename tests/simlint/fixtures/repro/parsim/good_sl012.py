"""True negatives for SL012: mutations under owned keys only."""


class ShardPlatform:
    def __init__(self, counts_by_region, durableqs_by_region,
                 queuelbs):
        self.counts_by_region = counts_by_region
        self.durableqs_by_region = durableqs_by_region
        self.queuelbs = queuelbs
        self.region = "region-00"
        self.owned_regions = ("region-00",)

    def _bump(self, counters):
        counters.update({"local": 1})

    def credit_local(self):
        # Own-region stores are the sanctioned synchronous path.
        self.counts_by_region[self.region] += 1

    def reset_owned(self):
        for r in self.owned_regions:
            self.counts_by_region[r] = 0

    def push_local(self, item):
        lb = self.queuelbs[self.region]
        lb.push(item)

    def bump_local_via_helper(self):
        self._bump(self.counts_by_region[self.region])

    def enqueue_anywhere(self, call, region):
        # The handle surface is mailbox-safe: enqueue() is how remote
        # submission is *supposed* to look.
        self.durableqs_by_region[region].enqueue(call)
