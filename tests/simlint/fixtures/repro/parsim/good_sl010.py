"""True negatives for SL010: aliases and helpers over *owned* keys."""


class ShardPlatform:
    def __init__(self, schedulers, durableqs_by_region,
                 workers_by_region):
        self.schedulers = schedulers
        self.durableqs_by_region = durableqs_by_region
        self.workers_by_region = workers_by_region
        self.region = "region-00"
        self.owned_regions = ("region-00",)

    def _sched(self, r):
        return self.schedulers[r]

    def peek_own_region(self):
        # Aliasing the own-region component is the sanctioned path.
        s = self.schedulers[self.region]
        return s.pending_demand

    def peek_own_alias(self):
        # ...including through an alias of self.region itself.
        mine = self.region
        s = self.schedulers[mine]
        return s.pending_demand

    def tick_owned_loop(self):
        # Loop over owned_regions: every key is local by definition.
        total = 0
        for r in self.owned_regions:
            s = self.schedulers[r]
            total += s.pending_demand
        return total

    def backlog_own_map(self):
        # Iterating the map's own items touches only local entries.
        total = 0
        for r, dq in sorted(self.durableqs_by_region.items()):
            total += dq.depth
        return total

    def helper_with_owned_key(self):
        # Interprocedural, but the key handed to the helper is owned.
        return self._sched(self.region).pending_demand

    def enqueue_remote(self, call):
        # The handle surface is mailbox-safe even through an alias.
        handle = self.durableqs_by_region["region-09"]
        return handle.enqueue(call)
