"""True positives for SL011: shard-owned state captured in closures
that cross the inter-shard Pipe boundary."""


class ShardMessage:
    def __init__(self, deliver_at, src_region, src_seq, payload):
        self.deliver_at = deliver_at
        self.payload = payload


class ShardPlatform:
    def __init__(self, durableqs_by_region, schedulers, mailbox):
        self.durableqs_by_region = durableqs_by_region
        self.schedulers = schedulers
        self.mailbox = mailbox
        self.region = "region-00"

    def send(self, dst_region, deliver_at, handler):
        self.mailbox.append((dst_region, deliver_at, handler))

    def offload_lambda(self, dst):
        # Even an *owned* component must not cross the boundary: the
        # receiving shard gets a pickled copy (or a pickle error).
        dq = self.durableqs_by_region[self.region]
        self.send(dst, 1.0, lambda: dq.pop_head())

    def offload_stored_lambda(self, dst):
        sched = self.schedulers["region-02"]
        poke = lambda: sched.tick()  # noqa: E731
        self.send(dst, 2.0, poke)

    def offload_nested_def(self, dst):
        q = self.durableqs_by_region["region-03"]

        def flush():
            return q.drain()

        return ShardMessage(3.0, self.region, 0, flush)
