"""Suppression check for SL012."""


class MigrationTool:
    def __init__(self, counts_by_region):
        self.counts_by_region = counts_by_region
        self.region = "region-00"

    def rehome(self):
        # Offline migration utility, runs outside the simulation.
        self.counts_by_region["region-01"] = 0  # simlint: disable=SL012
