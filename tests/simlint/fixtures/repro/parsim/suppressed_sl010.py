"""Suppression check for SL010."""


class DebugProbe:
    def __init__(self, schedulers):
        self.schedulers = schedulers

    def dump(self):
        # Test-only introspection, deliberately out-of-band.
        s = self.schedulers["region-01"]
        return s.pending_demand  # simlint: disable=SL010 -- debug probe
