"""Suppression check for SL009."""


class DebugProbe:
    def __init__(self, schedulers):
        self.schedulers = schedulers

    def dump(self, region):
        # Test-only introspection, deliberately out-of-band.
        return self.schedulers[region].pending_demand  # simlint: disable=SL009 -- debug probe
