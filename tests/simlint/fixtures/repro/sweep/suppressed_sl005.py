"""Fixture: SL005 silenced per line (never crosses a process boundary)."""


class LocalOnly:
    def __init__(self):
        self.fmt = lambda v: f"{v:.3f}"  # simlint: disable=SL005 -- local
