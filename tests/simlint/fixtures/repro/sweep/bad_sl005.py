"""Fixture: pickle-unsafe payloads in sweep-reachable code (SL005 TPs)."""


def make_task(rate):
    class Task:
        def run(self):
            return rate
    return Task()


class SweepPoint:
    transform = lambda x: x * 2  # noqa: E731

    def __init__(self, scale):
        self.scale_fn = lambda v: v * scale
