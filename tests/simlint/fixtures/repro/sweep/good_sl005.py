"""Fixture: picklable module-level classes and functions (SL005 negatives)."""


class Task:
    def __init__(self, rate):
        self.rate = rate

    def run(self):
        return self.rate


def double(x):
    return x * 2


def apply_all(items):
    #: Local lambdas that never land on an instance are consumed in
    #: process and never cross a pickle boundary.
    key = lambda v: v.rate  # noqa: E731
    return sorted(items, key=key)
