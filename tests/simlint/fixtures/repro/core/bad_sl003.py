"""Fixture: iteration over unordered containers (SL003 true positives)."""


def drain(pending):
    for worker in set(pending):
        worker.kick()


def snapshot(names):
    return [n.upper() for n in {"a", "b", "c"}] + sorted(names)


def pairs(items):
    return {k: 1 for k in frozenset(items)}
