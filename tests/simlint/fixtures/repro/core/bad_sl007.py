"""Fixture: per-event metric/stream lookups (SL007 true positives)."""


class Handler:
    def __init__(self, sim, metrics):
        self.sim = sim
        self.metrics = metrics

    def on_event(self, call):
        #: Name rebuilt + re-resolved for every simulated event.
        self.metrics.counter(f"calls.{call.name}").add(self.sim.now, 1)
        self.metrics.gauge(f"load.{call.region}").set(self.sim.now, 0.5)
        rng = self.sim.rng.stream(f"resources/{call.name}")
        return rng

    def sample(self, workers):
        for w in workers:
            #: Constant name, but the registry dict lookup runs once per
            #: worker per sample instead of once at init.
            self.metrics.gauge("worker.memory_mb").set(self.sim.now, w.mem)
        while workers:
            self.metrics.histogram("worker.load").observe(
                self.sim.now, workers.pop().load)
