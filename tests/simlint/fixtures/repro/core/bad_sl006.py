"""Fixture: event-handle misuse (SL006 true positives)."""


def schedule(sim, fn):
    sim.call_after(-1.0, fn)
    sim.call_at(-0.5, fn)


def rearm(handle):
    #: Re-arming a cancelled handle corrupts the event queue; schedule
    #: a fresh event instead.
    handle.cancelled = False
    return handle
