"""Fixture: SL003 silenced per line (order provably irrelevant)."""


def total(buckets):
    acc = 0
    for b in set(buckets):  # simlint: disable=SL003 -- commutative sum
        acc += b.count
    return acc
