"""Suppression check for SL016."""

from repro.core.call import CallState


class PinnedCallLog:
    def __init__(self):
        self.kept = []

    def keep_pinned_call(self, call):
        # Pinned rows are never recycled, so retaining this particular
        # view is deliberate and safe.
        call.state = CallState.COMPLETED
        self.kept.append(call)  # simlint: disable=SL016 -- pinned row
