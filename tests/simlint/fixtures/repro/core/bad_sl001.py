"""Fixture: module-level mutable id state (SL001 true positives)."""

import itertools

_call_ids = itertools.count(1)

_instance_registry = {}

_seen_ids = []


class Tracker:
    _serials = itertools.count()
