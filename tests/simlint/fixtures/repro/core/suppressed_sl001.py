"""Fixture: SL001 hazards silenced by suppression comments."""

import itertools

_call_ids = itertools.count(1)  # simlint: disable=SL001 -- legacy shim

_seen_ids = []  # simlint: disable=SL001
