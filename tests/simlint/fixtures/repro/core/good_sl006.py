"""Fixture: correct handle usage (SL006 negatives)."""


class Handle:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


def schedule(sim, fn, delay):
    if delay >= 0:
        return sim.call_after(delay, fn)
    return sim.call_after(0.0, fn)
