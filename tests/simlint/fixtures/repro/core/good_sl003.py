"""Fixture: ordered iteration (SL003 negatives)."""


def drain(pending):
    for worker in sorted(set(pending), key=lambda w: w.name):
        worker.kick()


def snapshot(names):
    for n in list(names):
        yield n.upper()


def member(items, x):
    #: Membership tests on sets are fine — only *iteration* is ordered.
    return x in set(items)
