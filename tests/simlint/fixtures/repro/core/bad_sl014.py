"""True positives for SL014: DurableQ lease-protocol violations."""


def settle(q, call):
    q.ack(call)


def double_ack(q):
    for call in q.poll("sched-0", 4):
        q.ack(call)
        q.ack(call)


def ack_then_nack(q):
    for call in q.poll("sched-0", 4):
        q.ack(call)
        q.nack(call, retry_delay_s=1.0)


def extend_after_settle(q):
    for call in q.poll("sched-0", 4):
        q.ack(call)
        q.extend_lease(call.call_id)


def dropped_poll_result(q):
    q.poll("sched-0", 4)


def unsettled_on_one_branch(q, ok):
    calls = q.poll("sched-0", 4)
    for call in calls:
        if ok:
            q.ack(call)


def double_settle_via_helper(q):
    for call in q.poll("sched-0", 4):
        settle(q, call)
        q.ack(call)
