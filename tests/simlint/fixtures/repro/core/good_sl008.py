"""True negatives for SL008: structural scans and column aggregates."""

WORKER_NAMES = ["w0", "w1"]

#: Module-level scan runs once per import — out of scope.
_CAPACITY = sum(len(name) for name in WORKER_NAMES)


class Pool:
    def __init__(self, workers):
        # Construction-time scan: runs once per pool.
        self.workers = list(workers)
        self.capacity = sum(w.machine.threads for w in self.workers)
        self.total_running = 0

    def register_workers(self, region, workers):
        # Registration is structural: O(1) occurrences per run.
        for w in workers:
            self.workers.append(w)

    def add_workers(self, new_workers):
        for w in new_workers:
            self.workers.append(w)

    def build_group_index(self, n_groups):
        return {i: [w for w in self.workers if w.group == i]
                for i in range(n_groups)}

    def free_threads(self):
        # The fix SL008 points at: O(1) aggregate, no scan.
        return self.capacity - self.total_running

    def sample(self):
        # Scans over non-worker collections are fine.
        total = 0.0
        for shard in self.shards:
            total += shard.backlog()
        return total
