"""Fixture: absolute-time arithmetic and non-time accumulators (SL004 negs)."""


class Ticker:
    def __init__(self, sim):
        self.sim = sim
        self.events = 0

    def advance(self, dt):
        #: Recompute from an absolute base instead of accumulating.
        deadline = self.sim.now + dt
        return deadline

    def count(self):
        self.events += 1
