"""True positives for SL016: call views retained past terminalization."""

from repro.core.call import CallState


class CompletionLog:
    def __init__(self):
        self.finished = []
        self.by_id = {}
        self.last_call = None

    def on_done_keeps_in_list(self, call):
        call.state = CallState.COMPLETED
        self.finished.append(call)          # escapes past the release

    def on_fail_keeps_in_dict(self, call):
        call.state = CallState.FAILED
        self.by_id[call.call_id] = call     # escapes past the release

    def on_expire_keeps_attr(self, call):
        call.state = CallState.EXPIRED
        self.last_call = call               # escapes past the release


def throttle_and_stash(call, dead_letter):
    call.state = CallState.THROTTLED
    dead_letter.add(call)                   # escapes past the release


def finalize_and_stash(call, outcome, state, now, graveyard):
    call.terminalize(outcome, state, now)   # fused terminal transition
    graveyard.append(call)                  # escapes past the release
