"""Fixture: float accumulation of simulated time (SL004 true positives)."""


class Ticker:
    def __init__(self):
        self.now = 0.0
        self.idle_time = 0.0

    def advance(self, dt):
        self.now += dt

    def account(self, dt):
        self.idle_time += dt


def drift(finish_time, dt):
    finish_time -= dt
    return finish_time
