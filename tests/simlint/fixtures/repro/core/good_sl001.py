"""Fixture: per-instance allocators and non-counter state (SL001 negatives)."""

import itertools

#: A constant is fine; only mutable containers / live counters are state.
MAX_IDS = 100

#: Public mutable module state with a non-counter name is out of scope.
defaults = {"region": "r0"}


class Allocator:
    def __init__(self):
        self._next = itertools.count(1)
        self._ids = []

    def fresh(self):
        local_ids = []
        return local_ids
