"""True positives for SL008: O(n) worker scans in sim-clock handlers."""


class Rim:
    def __init__(self, workers):
        self.workers = workers
        self._workers_by_region = {"a": workers}

    def sample(self):
        # Plain for-loop over the pool inside a periodic handler.
        total = 0.0
        for w in self.workers:
            total += w.load_score()
        return total

    def free_threads(self):
        # Generator expression scan.
        return sum(w.machine.threads - w.running_count
                   for w in self.workers)

    def region_report(self):
        # Scan hidden behind sorted(...).items() unwrapping.
        out = {}
        for region, workers in sorted(self._workers_by_region.items()):
            out[region] = len(workers)
        return out


class Balancer:
    def __init__(self, all_workers):
        self.all_workers = all_workers

    def pool_load(self):
        # List comprehension over an `all_workers` attribute.
        scores = [w.load_score() for w in self.all_workers]
        return sum(scores) / len(scores)

    def on_tick(self, workers):
        # enumerate(...) wrapper does not hide the scan.
        for i, w in enumerate(workers):
            w.poke(i)
