"""Fixture: handle binding done right (SL007 true negatives)."""

RATE_NAMES = [f"calls.{kind}" for kind in ("ok", "error")]


class Handler:
    def __init__(self, sim, metrics, names):
        self.sim = sim
        #: Resolving (even with f-strings) at construction is the fix.
        self.calls = metrics.counter(f"calls.{sim.region}")
        self.mem_gauge = metrics.gauge("worker.memory_mb")
        self.per_name = {n: metrics.counter(f"calls.{n}") for n in names}
        self.rng = sim.rng.stream(f"handler/{sim.region}")

    def on_event(self, call):
        #: Bound handles: no name build, no registry lookup per event.
        self.calls.add(self.sim.now, 1)
        self.per_name[call.name].add(self.sim.now, 1)
        return self.rng.random()

    def sample(self, workers):
        gauge = self.mem_gauge
        for w in workers:
            gauge.set(self.sim.now, w.mem)
