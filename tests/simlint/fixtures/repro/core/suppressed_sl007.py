"""Fixture: SL007 silenced per line (memoized miss path)."""


class Handler:
    def __init__(self, sim, metrics):
        self.sim = sim
        self.metrics = metrics
        self._counters = {}

    def on_event(self, call):
        ctr = self._counters.get(call.name)
        if ctr is None:
            ctr = self._counters[call.name] = \
                self.metrics.counter(  # simlint: disable=SL007 -- memo miss
                    f"calls.{call.name}")
        ctr.add(self.sim.now, 1)
