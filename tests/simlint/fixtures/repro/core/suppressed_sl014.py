"""Suppression check for SL014."""


def drain_probe(q):
    # A diagnostics probe that deliberately leans on the lease sweep
    # to re-queue what it polled.
    q.poll("sched-0", 1)  # simlint: disable=SL014 -- sweep re-queues
