"""Fixture: SL006 silenced per line (kernel-internal handle pooling)."""


def recycle(handle):
    handle.cancelled = False  # simlint: disable=SL006 -- pooled reset
    return handle
