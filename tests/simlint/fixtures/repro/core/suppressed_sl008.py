"""Suppressed SL008 sites: justified per-worker passes."""


class Rim:
    def __init__(self, workers):
        self.workers = workers

    def sample(self):
        # Taking the window mutates each worker — no aggregate exists.
        utils = [w.take_utilization_window()  # simlint: disable=SL008 -- windows
                 for w in self.workers]
        return sum(utils) / len(utils)

    def sweep(self):
        for w in self.workers:  # simlint: disable=SL008 -- reclaim sweep
            w.maybe_reclaim()
