"""True negatives for SL014: the blessed lease idioms."""


class Buffer:
    def __init__(self):
        self._inflight = {}

    def take(self, call, q):
        # Handing an unsettled call to an owner is the scheduler's
        # normal path: the inflight map settles it later.
        self._inflight[call.call_id] = (call, q)


def ack_each_exactly_once(q):
    for call in q.poll("sched-0", 8):
        q.ack(call)


def settle_on_every_branch(q, ok):
    for call in q.poll("sched-0", 8):
        if ok:
            q.ack(call)
        else:
            q.nack(call, retry_delay_s=1.0)


def try_finally_ack(q, run):
    for call in q.poll("sched-0", 8):
        try:
            run(call)
        finally:
            q.ack(call)


def extend_while_polled(q):
    for call in q.poll("sched-0", 8):
        q.extend_lease(call.call_id)
        q.ack(call)


def buffer_escape(q, buf):
    for call in q.poll("sched-0", 8):
        buf.take(call, q)


def return_poll_result(q):
    # The caller owns the collection and its obligations.
    return q.poll("sched-0", 8)
