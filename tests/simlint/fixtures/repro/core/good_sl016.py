"""True negatives for SL016: terminal handlers that read but don't keep."""

from repro.core.call import CallState, CallOutcome


class CompletionLog:
    def __init__(self):
        self.finished = []
        self.latencies = []

    def on_done_snapshots(self, call, traces):
        call.state = CallState.COMPLETED
        # Reading fields (and snapshotting) before the release is the
        # supported idiom — only the *view* must not outlive the handler.
        traces.add_call(call, "ok")
        self.latencies.append(call.finish_time - call.submit_time)

    def stash_before_terminalizing(self, call):
        # Escape *before* the terminal transition: the call is still
        # live (e.g. retry bookkeeping), not a retention bug.
        self.finished.append(call)
        call.state = CallState.RUNNING

    def on_done_notifies(self, call, listener):
        call.state = CallState.FAILED
        # A plain call argument is fine: listeners run synchronously,
        # before the handler returns and the slot is released.
        listener(call, CallOutcome.ERROR)

    def finalize_and_snapshot(self, call, outcome, state, now, traces):
        # The fused form counts as a terminal transition too; reads and
        # call-arg passing after it are still the supported idiom.
        call.terminalize(outcome, state, now)
        traces.add_call(call, "ok")
