"""Fixture: SL004 silenced per line (integer-nanosecond accumulator)."""


class NsTicker:
    def __init__(self):
        self.busy_time = 0

    def account(self, dt_ns):
        self.busy_time += dt_ns  # simlint: disable=SL004 -- integer ns
