"""Fixture: sim-scoped rules don't fire outside sim-facing packages."""

import itertools
import time

_request_ids = itertools.count(1)


def wall_stamp():
    return time.time()
