"""True negatives for SL013: every handle idiom the kernel blesses."""


class Component:
    def __init__(self, sim, fn):
        # Stored handles have an owner that can cancel them later.
        self._tick = sim.every(1.0, fn)
        self._timeout = sim.call_after(30.0, fn)

    def stop(self):
        self._tick.cancel()


def fire_and_forget(sim, fn):
    # An unbound schedule is the normal one-shot idiom.
    sim.call_after(1.0, fn)


def cancel_once(sim, fn):
    h = sim.call_after(1.0, fn)
    h.cancel()


def cancel_on_one_branch_then_escape(sim, fn, registry, early):
    h = sim.call_after(1.0, fn)
    if early:
        h.cancel()
        return None
    registry.append(h)
    return h


def rebind_after_cancel(sim, fn):
    # Rearming the *name* is fine once the old handle is settled.
    h = sim.call_after(1.0, fn)
    h.cancel()
    h = sim.call_after(2.0, fn)
    return h


def alias_single_cancel(sim, fn):
    h = sim.call_after(1.0, fn)
    alias = h
    alias.cancel()
    return h.cancelled
