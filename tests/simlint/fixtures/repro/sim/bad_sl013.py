"""True positives for SL013: event-handle lifecycle violations.

Every finding here is invisible to SL006 — no negative delay literal
and no literal ``.cancelled = False`` store — which is the acceptance
pairing (SL006-clean, SL013-hit): the typestate rule follows the
handle through aliases, helpers, and rebinding.
"""


def stop(handle):
    handle.cancel()


def double_cancel_via_alias(sim, fn):
    h = sim.call_after(1.0, fn)
    alias = h
    alias.cancel()
    h.cancel()


def double_cancel_via_helper(sim, fn):
    h = sim.call_after(1.0, fn)
    stop(h)
    h.cancel()


def rearm_with_flag(sim, fn, flag):
    h = sim.call_after(1.0, fn)
    h.cancel()
    h.cancelled = flag


def double_arm(sim, fn):
    h = sim.call_after(1.0, fn)
    h = sim.call_after(2.0, fn)
    h.cancel()


def leaked_armed_local(sim, fn, work):
    h = sim.call_at(5.0, fn)
    return work()
