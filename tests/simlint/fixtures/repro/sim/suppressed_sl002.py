# simlint: disable-file=SL002 -- wall-clock benchmarking harness
"""Fixture: file-wide suppression of SL002."""

import time


def wall_elapsed(t0):
    return time.time() - t0


def wall_now():
    return time.perf_counter()
