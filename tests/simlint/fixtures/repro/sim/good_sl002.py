"""Fixture: clock/randomness through the kernel (SL002 negatives)."""

import random


def stamp(sim):
    return sim.now


def jitter(rng):
    return rng.uniform(0.0, 1.0)


def make_stream(seed):
    #: Seeded Random instances are replayable; only the module-level
    #: functions (shared global state) and SystemRandom are banned.
    return random.Random(seed)
