"""Fixture: wall-clock and entropy leaks (SL002 true positives)."""

import os
import random
import time
import uuid
from datetime import datetime
from time import monotonic


def stamp():
    return time.time()


def tick():
    return monotonic()


def label():
    return f"{datetime.now()}-{uuid.uuid4()}"


def jitter():
    return random.random() * len(os.urandom(4))
