"""Suppression check for SL013."""


def idempotent_teardown(sim, fn):
    h = sim.call_after(1.0, fn)
    h.cancel()
    # The kernel's cancel() is flag-guarded, so a second call is a
    # deliberate belt-and-braces teardown here.
    h.cancel()  # simlint: disable=SL013 -- idempotent teardown probe
