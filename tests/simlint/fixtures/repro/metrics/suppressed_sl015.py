"""Suppression check for SL015."""


def double_fold_for_weighting(merged, shard):
    # Deliberate 2x weighting of one shard in an ablation harness.
    snap = shard.snapshot()
    merged.merge(snap)
    merged.merge(snap)  # simlint: disable=SL015 -- deliberate 2x weight
