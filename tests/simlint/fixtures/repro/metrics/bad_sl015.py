"""True positives for SL015: snapshot/merge discipline violations."""


def merge_twice(merged, shard):
    snap = shard.snapshot()
    merged.merge(snap)
    merged.merge(snap)


def mutate_between_snapshot_and_merge(registry, merged):
    snap = registry.snapshot()
    registry.counter("calls_total").inc()
    merged.merge(snap)


def self_merge(registry):
    registry.merge(registry)


def rehydrate_then_merge_again(registry, merged):
    snap = registry.snapshot()
    merged.merge(snap)
    return type(registry).from_snapshot(snap)
