"""True negatives for SL015: the blessed snapshot/merge idioms."""


def merge_once(merged, shard):
    snap = shard.snapshot()
    merged.merge(snap)


def mutate_after_merge(registry, merged):
    snap = registry.snapshot()
    merged.merge(snap)
    registry.counter("calls_total").inc()


def mutate_unrelated_registry(registry, scratch, merged):
    snap = registry.snapshot()
    scratch.counter("calls_total").inc()
    merged.merge(snap)


def fold_shard_snapshots(merged, shards):
    for shard in shards:
        merged.merge(shard.snapshot())


def ship_snapshot(registry, outbox):
    # Escaping a snapshot hands its merge obligation to the receiver.
    outbox.append(registry.snapshot())


def resnapshot_after_mutation(registry, merged):
    snap = registry.snapshot()
    merged.merge(snap)
    registry.counter("calls_total").inc()
    merged.merge(registry.snapshot())
