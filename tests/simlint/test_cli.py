"""CLI and baseline tests, plus the dogfood gate: the real tree at HEAD
must lint clean."""

import json
from pathlib import Path

import repro.cli
from repro.simlint import ALL_RULES, Baseline, Severity, lint_paths
from repro.simlint.cli import default_lint_root, main as lint_main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestExitCodes:
    def test_fixture_tree_fails(self):
        assert lint_main([str(FIXTURES)]) == 1

    def test_clean_file_passes(self, capsys):
        assert lint_main([str(FIXTURES / "core" / "good_sl001.py")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warnings_alone_do_not_gate(self):
        # SL003/SL004 are warnings: they print but exit 0.
        rc = lint_main([str(FIXTURES / "core" / "bad_sl003.py"),
                        "--select", "SL003"])
        assert rc == 0

    def test_missing_path_is_usage_error(self):
        assert lint_main(["does/not/exist.py"]) == 2

    def test_unknown_rule_is_usage_error(self):
        try:
            lint_main([str(FIXTURES), "--select", "SL999"])
        except SystemExit as exc:
            assert "SL999" in str(exc)
        else:
            raise AssertionError("expected SystemExit")


class TestJsonOutput:
    def test_document_shape(self, capsys):
        lint_main([str(FIXTURES), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "simlint"
        assert doc["version"] == 1
        assert doc["files_checked"] > 10
        assert doc["n_errors"] > 0
        sample = doc["findings"][0]
        assert set(sample) == {"rule", "severity", "path", "module",
                               "line", "col", "message", "fix_hint"}


class TestGithubFormat:
    def test_annotations_and_summary_line(self, capsys):
        rc = lint_main([str(FIXTURES / "core" / "bad_sl001.py"),
                        "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        first = out.splitlines()[0]
        assert first.startswith("::error file=")
        assert ",line=" in first and ",col=" in first
        assert "title=simlint SL001::" in first
        assert "(hint: " in first
        assert "error(s)" in out.splitlines()[-1]

    def test_warning_severity_maps_to_warning_level(self, capsys):
        lint_main([str(FIXTURES / "core" / "bad_sl003.py"),
                   "--select", "SL003", "--format", "github"])
        assert "::warning file=" in capsys.readouterr().out

    def test_newlines_and_percents_are_escaped(self, capsys):
        # Workflow commands are line-oriented: any %, CR, or LF in the
        # message must be %xx-escaped or the annotation truncates.
        lint_main([str(FIXTURES), "--format", "github"])
        for line in capsys.readouterr().out.splitlines():
            if line.startswith("::"):
                assert "\r" not in line
                command, _, message = line.partition("::")
                assert "\n" not in message

    def test_json_flag_is_an_alias_for_format_json(self, capsys):
        lint_main([str(FIXTURES / "core" / "good_sl001.py"), "--json"])
        alias = capsys.readouterr().out
        lint_main([str(FIXTURES / "core" / "good_sl001.py"),
                   "--format", "json"])
        assert json.loads(alias) == json.loads(capsys.readouterr().out)


class TestBaselineMigration:
    def test_v1_baseline_rekeys_to_v2(self, tmp_path, capsys):
        target = str(FIXTURES / "core" / "bad_sl001.py")
        findings = lint_paths([target], ALL_RULES)
        # Hand-build a v1 (module-keyed) baseline covering everything.
        v1 = {"version": 1, "findings": [
            {"rule": f.rule_id, "module": f.module,
             "text": Path(f.path).read_text().splitlines()[
                 f.line - 1].strip(), "count": 1}
            for f in findings]}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(v1), encoding="utf-8")

        assert lint_main([target, "--migrate-baseline",
                          str(baseline)]) == 0
        capsys.readouterr()
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        assert doc["version"] == 2
        assert len(doc["findings"]) == len(findings)
        assert all("path" in e and "module" not in e
                   for e in doc["findings"])
        # The migrated baseline still mutes everything.
        assert lint_main([target, "--baseline", str(baseline)]) == 0

    def test_stale_entries_are_dropped(self, tmp_path, capsys):
        v1 = {"version": 1, "findings": [
            {"rule": "SL001", "module": "repro.gone",
             "text": "x = itertools.count()", "count": 3}]}
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(v1), encoding="utf-8")
        rc = lint_main([str(FIXTURES / "core" / "good_sl001.py"),
                        "--migrate-baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "3 stale" in out
        assert json.loads(baseline.read_text())["findings"] == []

    def test_v2_fingerprints_survive_layout_moves(self, tmp_path):
        # src/repro/... and a bare repro/... checkout fingerprint alike:
        # the path is normalized from its last repro/ segment.
        src = FIXTURES / "core" / "bad_sl001.py"
        for prefix in ("src", "elsewhere/deeper"):
            moved = tmp_path / prefix / "repro" / "core"
            moved.mkdir(parents=True)
            (moved / "bad_sl001.py").write_text(src.read_text(),
                                                encoding="utf-8")
        a = Baseline.from_findings(lint_paths(
            [tmp_path / "src" / "repro" / "core" / "bad_sl001.py"],
            ALL_RULES))
        moved = lint_paths(
            [tmp_path / "elsewhere" / "deeper" / "repro" / "core" /
             "bad_sl001.py"], ALL_RULES)
        assert a.filter(moved) == []


class TestForeignScope:
    def _harness(self, tmp_path, name="bench_thing.py"):
        # No repro/ path segment: package-scoped rules see it only
        # under --include-foreign.
        target = tmp_path / "benchmarks" / name
        target.parent.mkdir(exist_ok=True)
        target.write_text("import time\n\n\ndef stamp():\n"
                          "    return time.time()\n", encoding="utf-8")
        return target

    def test_foreign_file_is_skipped_by_default(self, tmp_path):
        target = self._harness(tmp_path)
        assert lint_main([str(target), "--select", "SL002"]) == 0

    def test_include_foreign_extends_scoped_rules(self, tmp_path):
        target = self._harness(tmp_path)
        rc = lint_main([str(target), "--select", "SL002",
                        "--include-foreign"])
        assert rc == 1

    def test_exclude_substring_drops_files(self, tmp_path, capsys):
        self._harness(tmp_path)
        self._harness(tmp_path, name="keep_me.py")
        rc = lint_main([str(tmp_path / "benchmarks"), "--select",
                        "SL002", "--include-foreign", "--exclude",
                        "bench_thing", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["files_checked"] == 1
        assert all("bench_thing" not in f["path"]
                   for f in doc["findings"])

    def test_scoped_lane_is_green_at_head(self, capsys):
        """ISSUE acceptance: the committed scoped baseline covers every
        SL002/SL004 finding in benchmarks/ and tests/ at HEAD."""
        repo = Path(__file__).resolve().parents[2]
        rc = lint_main([str(repo / "benchmarks"), str(repo / "tests"),
                        "--select", "SL002,SL004", "--include-foreign",
                        "--exclude", "tests/simlint/fixtures",
                        "--baseline",
                        str(repo / "simlint_scoped_baseline.json")])
        assert rc == 0, capsys.readouterr().out


class TestDispatch:
    def test_repro_cli_routes_lint_with_flags(self, capsys):
        # Regression: argparse REMAINDER mangles a leading --json
        # (bpo-17050), so repro.cli dispatches 'lint' before parsing.
        rc = repro.cli.main(
            ["lint", "--json", str(FIXTURES / "core" / "good_sl001.py")])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["n_errors"] == 0


class TestBaseline:
    def test_baseline_roundtrip_mutes_everything(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        lint_main([str(FIXTURES), "--write-baseline", str(baseline)])
        capsys.readouterr()
        rc = lint_main([str(FIXTURES), "--baseline", str(baseline),
                        "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["n_errors"] == 0 and doc["n_warnings"] == 0
        assert doc["baseline"] == str(baseline)

    def test_new_finding_escapes_baseline(self, tmp_path):
        findings = lint_paths([FIXTURES / "core" / "bad_sl001.py"],
                              ALL_RULES)
        base = Baseline.from_findings(findings[:-1])
        fresh = base.filter(findings)
        assert fresh == [findings[-1]]

    def test_fingerprints_survive_line_renumbering(self, tmp_path):
        # Baselines key on (rule, module, stripped text), not line
        # numbers: inserting lines above must not invalidate them.
        src = FIXTURES / "core" / "bad_sl001.py"
        moved = tmp_path / "repro" / "core"
        moved.mkdir(parents=True)
        target = moved / "bad_sl001.py"
        target.write_text("# pad\n# pad\n" + src.read_text(),
                          encoding="utf-8")
        base = Baseline.from_findings(lint_paths([src], ALL_RULES))
        assert base.filter(lint_paths([target], ALL_RULES)) == []

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        assert lint_main([str(FIXTURES), "--baseline", str(bad)]) == 2


class TestDogfood:
    def test_real_tree_has_zero_error_findings(self):
        """ISSUE acceptance: `python -m repro lint` on src/repro at HEAD
        exits 0 — the codebase satisfies its own determinism contract."""
        findings = lint_paths([default_lint_root()], ALL_RULES)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], "\n".join(f.format_text() for f in errors)

    def test_default_root_is_the_repro_package(self):
        assert default_lint_root().name == "repro"
        assert (default_lint_root() / "simlint").is_dir()


class TestParallelJobs:
    def test_jobs_output_identical_to_serial(self, capsys):
        # --jobs must be a pure wall-clock knob: same findings, same
        # order, same exit code as the serial path.
        serial_rc = lint_main([str(FIXTURES), "--json"])
        serial = json.loads(capsys.readouterr().out)
        parallel_rc = lint_main([str(FIXTURES), "--json", "--jobs", "2"])
        parallel = json.loads(capsys.readouterr().out)
        assert parallel_rc == serial_rc == 1
        assert parallel["findings"] == serial["findings"]
        assert parallel["files_checked"] == serial["files_checked"]

    def test_jobs_reports_syntax_errors_once(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "broken.py").write_text("def f(:\n", encoding="utf-8")
        lint_main([str(bad), "--json", "--jobs", "2"])
        doc = json.loads(capsys.readouterr().out)
        sl000 = [f for f in doc["findings"] if f["rule"] == "SL000"]
        assert len(sl000) == 1
