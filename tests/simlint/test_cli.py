"""CLI and baseline tests, plus the dogfood gate: the real tree at HEAD
must lint clean."""

import json
from pathlib import Path

import repro.cli
from repro.simlint import ALL_RULES, Baseline, Severity, lint_paths
from repro.simlint.cli import default_lint_root, main as lint_main

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestExitCodes:
    def test_fixture_tree_fails(self):
        assert lint_main([str(FIXTURES)]) == 1

    def test_clean_file_passes(self, capsys):
        assert lint_main([str(FIXTURES / "core" / "good_sl001.py")]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_warnings_alone_do_not_gate(self):
        # SL003/SL004 are warnings: they print but exit 0.
        rc = lint_main([str(FIXTURES / "core" / "bad_sl003.py"),
                        "--select", "SL003"])
        assert rc == 0

    def test_missing_path_is_usage_error(self):
        assert lint_main(["does/not/exist.py"]) == 2

    def test_unknown_rule_is_usage_error(self):
        try:
            lint_main([str(FIXTURES), "--select", "SL999"])
        except SystemExit as exc:
            assert "SL999" in str(exc)
        else:
            raise AssertionError("expected SystemExit")


class TestJsonOutput:
    def test_document_shape(self, capsys):
        lint_main([str(FIXTURES), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "simlint"
        assert doc["version"] == 1
        assert doc["files_checked"] > 10
        assert doc["n_errors"] > 0
        sample = doc["findings"][0]
        assert set(sample) == {"rule", "severity", "path", "module",
                               "line", "col", "message", "fix_hint"}


class TestDispatch:
    def test_repro_cli_routes_lint_with_flags(self, capsys):
        # Regression: argparse REMAINDER mangles a leading --json
        # (bpo-17050), so repro.cli dispatches 'lint' before parsing.
        rc = repro.cli.main(
            ["lint", "--json", str(FIXTURES / "core" / "good_sl001.py")])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["n_errors"] == 0


class TestBaseline:
    def test_baseline_roundtrip_mutes_everything(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        lint_main([str(FIXTURES), "--write-baseline", str(baseline)])
        capsys.readouterr()
        rc = lint_main([str(FIXTURES), "--baseline", str(baseline),
                        "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["n_errors"] == 0 and doc["n_warnings"] == 0
        assert doc["baseline"] == str(baseline)

    def test_new_finding_escapes_baseline(self, tmp_path):
        findings = lint_paths([FIXTURES / "core" / "bad_sl001.py"],
                              ALL_RULES)
        base = Baseline.from_findings(findings[:-1])
        fresh = base.filter(findings)
        assert fresh == [findings[-1]]

    def test_fingerprints_survive_line_renumbering(self, tmp_path):
        # Baselines key on (rule, module, stripped text), not line
        # numbers: inserting lines above must not invalidate them.
        src = FIXTURES / "core" / "bad_sl001.py"
        moved = tmp_path / "repro" / "core"
        moved.mkdir(parents=True)
        target = moved / "bad_sl001.py"
        target.write_text("# pad\n# pad\n" + src.read_text(),
                          encoding="utf-8")
        base = Baseline.from_findings(lint_paths([src], ALL_RULES))
        assert base.filter(lint_paths([target], ALL_RULES)) == []

    def test_corrupt_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99}', encoding="utf-8")
        assert lint_main([str(FIXTURES), "--baseline", str(bad)]) == 2


class TestDogfood:
    def test_real_tree_has_zero_error_findings(self):
        """ISSUE acceptance: `python -m repro lint` on src/repro at HEAD
        exits 0 — the codebase satisfies its own determinism contract."""
        findings = lint_paths([default_lint_root()], ALL_RULES)
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert errors == [], "\n".join(f.format_text() for f in errors)

    def test_default_root_is_the_repro_package(self):
        assert default_lint_root().name == "repro"
        assert (default_lint_root() / "simlint").is_dir()
