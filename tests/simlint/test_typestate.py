"""Unit tests for the typestate (protocol FSM) layer.

Fixture-file coverage lives in test_rules.py; these tests poke the
machinery directly — the abstract lattice joins at branches and loops,
alias tracking, escape discipline, and summary replay across calls —
via lint_source on small crafted modules."""

from repro.simlint import ALL_RULES, lint_source
from repro.simlint.engine import LintContext, Project
from repro.simlint.typestate import (
    HANDLE,
    LEASE,
    OPAQUE,
    PROTOCOLS,
    SNAPSHOT,
    TypestateAnalysis,
    typestate_analysis,
)

MOD = "repro/core/tsmod.py"


def ts_findings(src, rule_id=None, path=MOD):
    found = lint_source(src, path, ALL_RULES)
    if rule_id is not None:
        found = [f for f in found if f.rule_id == rule_id]
    return found


def analysis_of(src, path=MOD):
    ctx = LintContext(src, path)
    return TypestateAnalysis(Project([ctx]))


class TestProtocolDeclarations:
    """The FSMs are data; pin the load-bearing shape."""

    def test_lease_settles_exactly_once(self):
        assert LEASE.transitions[("polled", "ack")] == "acked"
        assert LEASE.transitions[("polled", "nack")] == "nacked"
        for settled in ("acked", "nacked"):
            for event in ("ack", "nack", "extend"):
                assert (settled, event) in LEASE.errors

    def test_extend_only_while_polled(self):
        assert LEASE.transitions[("polled", "extend")] == "polled"

    def test_handle_is_one_shot(self):
        assert HANDLE.transitions[("armed", "cancel")] == "cancelled"
        assert ("cancelled", "cancel") in HANDLE.errors

    def test_snapshot_pairs_once(self):
        assert SNAPSHOT.transitions[("fresh", "consume")] == "consumed"
        assert ("consumed", "consume") in SNAPSHOT.errors

    def test_every_protocol_steps_opaque_sources(self):
        # Parameters enter functions in the OPAQUE state; every event
        # must have a transition out of it or summaries cannot form.
        for proto in PROTOCOLS:
            events = set(proto.arg_events.values()) | set(
                proto.recv_events.values())
            for event in events:
                assert (OPAQUE, event) in proto.transitions, (
                    proto.name, event)


class TestBranchJoins:
    def test_settle_in_one_branch_only_leaks(self):
        found = ts_findings(
            "def f(q, ok):\n"
            "    for call in q.poll('s', 4):\n"
            "        if ok:\n"
            "            q.ack(call)\n",
            "SL014")
        assert len(found) == 1
        assert "unsettled" in found[0].message

    def test_settle_in_both_branches_is_clean(self):
        found = ts_findings(
            "def f(q, ok):\n"
            "    for call in q.poll('s', 4):\n"
            "        if ok:\n"
            "            q.ack(call)\n"
            "        else:\n"
            "            q.nack(call, retry_delay_s=1.0)\n",
            "SL014")
        assert found == []

    def test_settle_then_settle_after_join_is_may_violation(self):
        # One branch acks; the join state is {polled, acked}; a second
        # ack is an error on the acked member.
        found = ts_findings(
            "def f(q, ok):\n"
            "    for call in q.poll('s', 4):\n"
            "        if ok:\n"
            "            q.ack(call)\n"
            "        q.ack(call)\n",
            "SL014")
        assert len(found) == 1
        assert "already ACKed" in found[0].message

    def test_early_return_after_settle_is_clean(self):
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    if call.urgent:\n"
            "        q.ack(call)\n"
            "        return True\n"
            "    q.nack(call, retry_delay_s=1.0)\n"
            "    return False\n",
            "SL014")
        assert found == []

    def test_early_return_with_unsettled_path_leaks(self):
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    if call.urgent:\n"
            "        return True\n"
            "    q.ack(call)\n"
            "    return False\n",
            "SL014")
        assert len(found) == 1
        assert "unsettled" in found[0].message

    def test_raise_path_carries_no_leak(self):
        # An exception path abandons the lease to the sweep by design.
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    if call.poisoned:\n"
            "        raise ValueError(call.call_id)\n"
            "    q.ack(call)\n",
            "SL014")
        assert found == []


class TestLoops:
    def test_settle_inside_loop_is_double_settle(self):
        # The second monotone pass sees the first pass's acked state —
        # and the zero-iteration path legitimately leaks the lease too.
        found = ts_findings(
            "def f(q, times):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    for _ in times:\n"
            "        q.ack(call)\n",
            "SL014")
        assert any("already ACKed" in f.message for f in found)
        assert any("unsettled" in f.message for f in found)

    def test_fresh_element_per_iteration_is_clean(self):
        # Each loop iteration binds a *fresh* element of the poll
        # result; one ack per element is the blessed idiom.
        found = ts_findings(
            "def f(q):\n"
            "    for call in q.poll('s', 8):\n"
            "        q.ack(call)\n",
            "SL014")
        assert found == []

    def test_break_path_joins_into_loop_exit(self):
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    while True:\n"
            "        if call.ready:\n"
            "            break\n"
            "    q.ack(call)\n",
            "SL014")
        assert found == []


class TestAliases:
    def test_alias_settle_is_one_settle(self):
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    same = call\n"
            "    q.ack(same)\n",
            "SL014")
        assert found == []

    def test_settle_through_both_alias_and_original(self):
        found = ts_findings(
            "def f(q):\n"
            "    calls = q.poll('s', 1)\n"
            "    call = calls[0]\n"
            "    same = call\n"
            "    q.ack(same)\n"
            "    q.ack(call)\n",
            "SL014")
        assert len(found) == 1

    def test_alias_rebinding_forgets_old_object(self):
        # After `h` is rebound to the second handle, cancelling via
        # the alias and via `h` touch *different* objects — clean.
        found = ts_findings(
            "def f(sim, fn):\n"
            "    h = sim.call_after(1.0, fn)\n"
            "    alias = h\n"
            "    alias.cancel()\n"
            "    h = sim.call_after(2.0, fn)\n"
            "    h.cancel()\n",
            "SL013")
        assert found == []

    def test_rebinding_an_armed_handle_is_double_arm(self):
        found = ts_findings(
            "def f(sim, fn):\n"
            "    h = sim.call_after(1.0, fn)\n"
            "    h = sim.call_after(2.0, fn)\n"
            "    h.cancel()\n",
            "SL013")
        assert any("double-arm" in f.message for f in found)


class TestTryFinally:
    def test_try_finally_ack_is_clean(self):
        found = ts_findings(
            "def f(q, run):\n"
            "    for call in q.poll('s', 4):\n"
            "        try:\n"
            "            run(call)\n"
            "        finally:\n"
            "            q.ack(call)\n",
            "SL014")
        assert found == []

    def test_ack_in_body_nack_in_handler_is_clean(self):
        # The handler resumes from the try's entry state (polled), so
        # ack-then-nack across body/handler is not a violation.
        found = ts_findings(
            "def f(q, run):\n"
            "    for call in q.poll('s', 4):\n"
            "        try:\n"
            "            run(call)\n"
            "            q.ack(call)\n"
            "        except Exception:\n"
            "            q.nack(call, retry_delay_s=1.0)\n",
            "SL014")
        assert found == []

    def test_finally_ack_after_body_ack_is_double(self):
        found = ts_findings(
            "def f(q):\n"
            "    for call in q.poll('s', 4):\n"
            "        try:\n"
            "            q.ack(call)\n"
            "        finally:\n"
            "            q.ack(call)\n",
            "SL014")
        assert len(found) == 1


class TestEscapes:
    def test_store_into_attribute_escapes(self):
        found = ts_findings(
            "class B:\n"
            "    def take(self, q):\n"
            "        for call in q.poll('s', 4):\n"
            "            self._inflight[call.call_id] = call\n",
            "SL014")
        assert found == []

    def test_unknown_call_escapes(self):
        # ship() is unresolved: the call may settle or store the lease;
        # conservatism means no finding either way afterwards.
        found = ts_findings(
            "def f(q, ship):\n"
            "    for call in q.poll('s', 4):\n"
            "        ship(call)\n",
            "SL014")
        assert found == []

    def test_closure_capture_escapes(self):
        found = ts_findings(
            "def f(q, defer):\n"
            "    for call in q.poll('s', 4):\n"
            "        defer(lambda: q.ack(call))\n",
            "SL014")
        assert found == []

    def test_deferred_settle_in_lambda_does_not_step_fsm(self):
        # A settle inside a lambda runs later (if ever): it must not
        # advance the FSM now, so an eager ack before the deferred
        # nack is NOT a double-settle — the capture just escapes.
        found = ts_findings(
            "def f(q, defer):\n"
            "    for call in q.poll('s', 4):\n"
            "        q.ack(call)\n"
            "        defer(lambda: q.nack(call))\n",
            "SL014")
        assert found == []

    def test_attribute_read_does_not_escape(self):
        # Reading fields off a leased call must not launder the
        # obligation away: the unsettled path still leaks.
        found = ts_findings(
            "def f(q, log):\n"
            "    for call in q.poll('s', 4):\n"
            "        log(call.call_id, call.function_name)\n",
            "SL014")
        assert len(found) == 1
        assert "unsettled" in found[0].message


class TestParameters:
    def test_double_settle_of_parameter(self):
        # Parameters enter OPAQUE: the first ack is legal, the second
        # is not.
        found = ts_findings(
            "def f(q, call):\n"
            "    q.ack(call)\n"
            "    q.ack(call)\n",
            "SL014")
        assert len(found) == 1

    def test_parameter_never_leaks(self):
        # Obligations for parameters belong to the caller.
        found = ts_findings(
            "def f(q, call):\n"
            "    q.extend_lease(call.call_id)\n",
            "SL014")
        assert found == []


class TestSummaries:
    def test_helper_settle_then_caller_settle(self):
        found = ts_findings(
            "def settle(q, call):\n"
            "    q.ack(call)\n"
            "\n"
            "def f(q):\n"
            "    for call in q.poll('s', 4):\n"
            "        settle(q, call)\n"
            "        q.ack(call)\n",
            "SL014")
        assert len(found) == 1
        assert "via settle()" in found[0].message or (
            "already ACKed" in found[0].message)

    def test_helper_settle_alone_discharges_obligation(self):
        found = ts_findings(
            "def settle(q, call):\n"
            "    q.ack(call)\n"
            "\n"
            "def f(q):\n"
            "    for call in q.poll('s', 4):\n"
            "        settle(q, call)\n",
            "SL014")
        assert found == []

    def test_branchy_helper_summary_is_union(self):
        # The helper settles only on one branch; the caller's state
        # after the call is {polled, acked} — so the unsettled member
        # still leaks.
        found = ts_findings(
            "def maybe_settle(q, call, ok):\n"
            "    if ok:\n"
            "        q.ack(call)\n"
            "\n"
            "def f(q, ok):\n"
            "    for call in q.poll('s', 4):\n"
            "        maybe_settle(q, call, ok)\n",
            "SL014")
        assert len(found) == 1
        assert "unsettled" in found[0].message

    def test_summary_fixpoint_through_two_levels(self):
        found = ts_findings(
            "def inner(q, call):\n"
            "    q.ack(call)\n"
            "\n"
            "def outer(q, call):\n"
            "    inner(q, call)\n"
            "\n"
            "def f(q):\n"
            "    for call in q.poll('s', 4):\n"
            "        outer(q, call)\n"
            "        q.ack(call)\n",
            "SL014")
        assert len(found) == 1

    def test_summary_exposes_final_states(self):
        analysis = analysis_of(
            "def settle(q, call, ok):\n"
            "    if ok:\n"
            "        q.ack(call)\n"
            "    else:\n"
            "        q.nack(call, retry_delay_s=1.0)\n")
        summary = analysis.summaries["repro.core.tsmod:settle"]
        proto, states = summary.params[1]
        assert proto == "lease"
        assert states == frozenset({"acked", "nacked"})

    def test_returned_acquisition_tracked_in_caller(self):
        found = ts_findings(
            "def arm(sim, fn):\n"
            "    return sim.call_after(1.0, fn)\n"
            "\n"
            "def f(sim, fn):\n"
            "    h = arm(sim, fn)\n"
            "    h.cancel()\n"
            "    h.cancel()\n",
            "SL013")
        assert len(found) == 1
        assert "one-shot" in found[0].message


class TestAnalysisPlumbing:
    def test_analysis_is_cached_on_project(self):
        ctx = LintContext("def f(q):\n    q.poll('s', 1)\n", MOD)
        project = Project([ctx])
        first = typestate_analysis(project)
        assert typestate_analysis(project) is first

    def test_findings_deduplicate(self):
        analysis = analysis_of(
            "def f(q):\n"
            "    q.poll('s', 1)\n")
        keys = [(r, c.path, n.lineno, m)
                for r, c, n, m in analysis.findings()]
        assert len(keys) == len(set(keys))
