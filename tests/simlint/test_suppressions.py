"""Suppression edge cases: decorator lines, comma lists, file-level
suppressions under ``--select``, and the SL009/SL010 superset contract.

These pin down behaviors a casual reading of the suppression regexes
would get wrong: a finding on a decorated ``def`` carries the ``def``
line but may be annotated on the decorator; one comment can name many
rules; ``disable-file`` mutes one rule without hiding the rest from a
``--select`` run; and suppressing SL009 must not resurface the same
direct access as SL010.
"""

import ast
import json
from pathlib import Path

from repro.simlint import ALL_RULES, lint_paths
from repro.simlint.cli import main as lint_main
from repro.simlint.engine import Rule, Severity, lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class _DecoratedDefRule(Rule):
    """Synthetic rule: flags every decorated function definition.

    Real rules anchor findings on whatever node they inspect; this one
    exists purely to produce a finding whose line is a ``def`` with
    decorators above it, so the companion-line suppression path is
    exercised in isolation.
    """

    id = "SL900"
    severity = Severity.ERROR
    title = "synthetic decorated-def rule"
    fix_hint = "n/a (test-only rule)"
    packages = None

    def check(self, ctx):
        for node in ctx.walk():
            if isinstance(node, ast.FunctionDef) and node.decorator_list:
                yield ctx.finding(self, node, "decorated def")


class _SecondRule(_DecoratedDefRule):
    """Same trigger, different id — for comma-list interplay tests."""

    id = "SL901"


DECORATED = """\
import functools


@functools.lru_cache(maxsize=None){dec_comment}
def handler(x):{def_comment}
    return x
"""


def _decorated(dec_comment="", def_comment=""):
    source = DECORATED.format(dec_comment=dec_comment,
                              def_comment=def_comment)
    return lint_source(source, "repro/core/mod.py", (_DecoratedDefRule(),),
                       module="repro.core.mod")


class TestDecoratedDefSuppression:
    def test_unsuppressed_finding_lands_on_the_def_line(self):
        findings = _decorated()
        assert [f.line for f in findings] == [5]  # the def, not @

    def test_comment_on_the_def_line_suppresses(self):
        assert _decorated(def_comment="  # simlint: disable=SL900") == []

    def test_comment_on_the_decorator_line_also_suppresses(self):
        # The natural annotation spot is the decorator the reader sees
        # first; companion-line matching honors it.
        assert _decorated(dec_comment="  # simlint: disable=SL900") == []

    def test_wrong_rule_id_on_decorator_does_not_suppress(self):
        findings = _decorated(dec_comment="  # simlint: disable=SL901")
        assert len(findings) == 1


class TestCommaLists:
    RULES = (_DecoratedDefRule(), _SecondRule())

    def _lint(self, comment):
        return lint_source(DECORATED.format(dec_comment="",
                                            def_comment=comment),
                           "repro/core/mod.py", self.RULES,
                           module="repro.core.mod")

    def test_both_rules_fire_without_suppression(self):
        assert sorted(f.rule_id for f in self._lint("")) == \
            ["SL900", "SL901"]

    def test_comma_list_suppresses_every_named_rule(self):
        assert self._lint("  # simlint: disable=SL900,SL901") == []

    def test_spaces_around_commas_are_tolerated(self):
        assert self._lint("  # simlint: disable=SL900 , sl901") == []

    def test_partial_list_leaves_the_other_rule(self):
        findings = self._lint("  # simlint: disable=SL900")
        assert [f.rule_id for f in findings] == ["SL901"]

    def test_trailing_justification_after_dashes_is_ignored(self):
        comment = "  # simlint: disable=SL900,SL901 -- test harness"
        assert self._lint(comment) == []


WALLCLOCK = """\
{header}import time


def stamp():
    return time.time()
"""


class TestDisableFileWithSelect:
    """``disable-file=`` interacts with ``--select`` per rule, not per
    file: muting SL002 must not hide the file from other selected
    rules, and selecting around the suppression must not resurrect it.
    """

    def _write(self, tmp_path, header=""):
        mod = tmp_path / "repro" / "sim"
        mod.mkdir(parents=True, exist_ok=True)
        target = mod / "clocky.py"
        target.write_text(WALLCLOCK.format(header=header),
                          encoding="utf-8")
        return target

    def test_selected_rule_fires_without_suppression(self, tmp_path):
        target = self._write(tmp_path)
        assert lint_main([str(target), "--select", "SL002"]) == 1

    def test_disable_file_mutes_the_selected_rule(self, tmp_path, capsys):
        target = self._write(
            tmp_path, header="# simlint: disable-file=SL002\n")
        rc = lint_main([str(target), "--select", "SL002", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["findings"] == []

    def test_disable_file_of_unselected_rule_changes_nothing(
            self, tmp_path):
        target = self._write(
            tmp_path, header="# simlint: disable-file=SL001\n")
        assert lint_main([str(target), "--select", "SL002"]) == 1

    def test_full_run_still_applies_file_suppression(self, tmp_path,
                                                     capsys):
        target = self._write(
            tmp_path, header="# simlint: disable-file=SL002\n")
        rc = lint_main([str(target), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert all(f["rule"] != "SL002" for f in doc["findings"])


class TestSL009SuppressionVsSL010:
    """SL010 is the semantic superset of SL009, but direct
    ``map[key].attr`` sites belong to SL009 alone — suppressing SL009
    must not resurface the identical defect under the flow rule.
    """

    def test_bad_sl009_fires_only_sl009(self):
        findings = lint_paths([FIXTURES / "parsim" / "bad_sl009.py"],
                              ALL_RULES)
        assert findings and {f.rule_id for f in findings} == {"SL009"}

    def test_file_suppression_silences_without_sl010_resurfacing(
            self, tmp_path):
        src = (FIXTURES / "parsim" / "bad_sl009.py").read_text(
            encoding="utf-8")
        mod = tmp_path / "repro" / "parsim"
        mod.mkdir(parents=True)
        target = mod / "bad_sl009.py"
        target.write_text("# simlint: disable-file=SL009\n" + src,
                          encoding="utf-8")
        assert lint_paths([target], ALL_RULES) == []

    def test_line_suppression_of_sl009_stays_silent_too(self, tmp_path):
        source = (
            "class P:\n"
            "    def __init__(self, schedulers):\n"
            "        self.schedulers = schedulers\n"
            "\n"
            "    def poke(self, r):\n"
            "        self.schedulers[r].tick()"
            "  # simlint: disable=SL009 -- probe\n")
        mod = tmp_path / "repro" / "parsim"
        mod.mkdir(parents=True)
        target = mod / "probe.py"
        target.write_text(source, encoding="utf-8")
        assert lint_paths([target], ALL_RULES) == []
