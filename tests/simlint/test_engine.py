"""Engine-level tests: module mapping, name resolution, suppression
parsing, and syntax-error handling."""

from repro.simlint import ALL_RULES, LintContext, Severity, lint_source
from repro.simlint.engine import _module_for_path, _package_of


class TestModuleMapping:
    def test_src_layout(self):
        assert _module_for_path("src/repro/core/call.py") == \
            "repro.core.call"

    def test_fixture_tree_uses_last_repro_segment(self):
        path = "tests/simlint/fixtures/repro/core/bad_sl001.py"
        assert _module_for_path(path) == "repro.core.bad_sl001"

    def test_init_maps_to_package(self):
        assert _module_for_path("src/repro/sim/__init__.py") == "repro.sim"

    def test_outside_repro_gets_stem(self):
        assert _module_for_path("scripts/tool.py") == "tool"

    def test_package_of(self):
        assert _package_of("repro.core.call") == "core"
        assert _package_of("repro.cli") == ""
        assert _package_of("tool") is None


class TestResolution:
    def test_plain_import(self):
        ctx = LintContext("import time\ntime.time()\n", "repro/sim/x.py")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == ("time.time", True)

    def test_aliased_from_import(self):
        ctx = LintContext("from time import time as wall\nwall()\n",
                          "repro/sim/x.py")
        call = ctx.tree.body[1].value
        assert ctx.resolve(call.func) == ("time.time", True)

    def test_shadowed_name_is_unknown(self):
        ctx = LintContext("def f(time):\n    return time.time()\n",
                          "repro/sim/x.py")
        # No import: the root is a local and rules must not flag it.
        call = ctx.tree.body[0].body[0].value
        assert ctx.resolve(call.func) == ("time.time", False)
        assert lint_source("def f(time):\n    return time.time()\n",
                           "repro/sim/x.py", ALL_RULES) == []


class TestSuppressionParsing:
    def test_line_suppression_with_justification(self):
        ctx = LintContext("x = 1  # simlint: disable=SL001 -- why\n",
                          "repro/core/x.py")
        assert ctx.is_suppressed("SL001", 1)
        assert not ctx.is_suppressed("SL002", 1)
        assert not ctx.is_suppressed("SL001", 2)

    def test_multiple_ids_on_one_line(self):
        ctx = LintContext("x = 1  # simlint: disable=SL001, sl003\n",
                          "repro/core/x.py")
        assert ctx.is_suppressed("SL001", 1)
        assert ctx.is_suppressed("SL003", 1)

    def test_file_suppression_covers_every_line(self):
        ctx = LintContext("# simlint: disable-file=SL002\nx = 1\ny = 2\n",
                          "repro/core/x.py")
        assert ctx.is_suppressed("SL002", 3)
        assert not ctx.is_suppressed("SL001", 3)


class TestSyntaxErrors:
    def test_unparseable_file_is_one_error_finding(self):
        found = lint_source("def broken(:\n", "repro/core/x.py", ALL_RULES)
        assert len(found) == 1
        assert found[0].rule_id == "SL000"
        assert found[0].severity is Severity.ERROR


class TestOrdering:
    def test_findings_sorted_by_location(self):
        src = ("import itertools\n"
               "_b_ids = itertools.count()\n"
               "_a_ids = itertools.count()\n")
        found = lint_source(src, "repro/core/x.py", ALL_RULES)
        assert [f.line for f in found] == [2, 3]
