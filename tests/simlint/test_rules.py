"""Fixture-driven tests: every rule has true positives, true negatives,
and working suppressions, proven against files on disk (the same code
path ``python -m repro lint`` takes)."""

from pathlib import Path

import pytest

from repro.simlint import ALL_RULES, Severity, lint_paths, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures" / "repro"

#: rule id -> (fixture file, minimum expected findings)
CASES = {
    "SL001": ("core/bad_sl001.py", 4),
    "SL002": ("sim/bad_sl002.py", 6),
    "SL003": ("core/bad_sl003.py", 3),
    "SL004": ("core/bad_sl004.py", 3),
    "SL005": ("sweep/bad_sl005.py", 3),
    "SL006": ("core/bad_sl006.py", 3),
    "SL007": ("core/bad_sl007.py", 4),
    "SL008": ("core/bad_sl008.py", 5),
    "SL009": ("parsim/bad_sl009.py", 4),
    "SL010": ("parsim/bad_sl010.py", 5),
    "SL011": ("parsim/bad_sl011.py", 3),
    "SL012": ("parsim/bad_sl012.py", 5),
    "SL013": ("sim/bad_sl013.py", 6),
    "SL014": ("core/bad_sl014.py", 6),
    "SL015": ("metrics/bad_sl015.py", 4),
    "SL016": ("core/bad_sl016.py", 5),
}

GOOD = {
    "SL001": "core/good_sl001.py",
    "SL002": "sim/good_sl002.py",
    "SL003": "core/good_sl003.py",
    "SL004": "core/good_sl004.py",
    "SL005": "sweep/good_sl005.py",
    "SL006": "core/good_sl006.py",
    "SL007": "core/good_sl007.py",
    "SL008": "core/good_sl008.py",
    "SL009": "parsim/good_sl009.py",
    "SL010": "parsim/good_sl010.py",
    "SL011": "parsim/good_sl011.py",
    "SL012": "parsim/good_sl012.py",
    "SL013": "sim/good_sl013.py",
    "SL014": "core/good_sl014.py",
    "SL015": "metrics/good_sl015.py",
    "SL016": "core/good_sl016.py",
}

SUPPRESSED = {
    "SL001": "core/suppressed_sl001.py",
    "SL002": "sim/suppressed_sl002.py",
    "SL003": "core/suppressed_sl003.py",
    "SL004": "core/suppressed_sl004.py",
    "SL005": "sweep/suppressed_sl005.py",
    "SL006": "core/suppressed_sl006.py",
    "SL007": "core/suppressed_sl007.py",
    "SL008": "core/suppressed_sl008.py",
    "SL009": "parsim/suppressed_sl009.py",
    "SL010": "parsim/suppressed_sl010.py",
    "SL011": "parsim/suppressed_sl011.py",
    "SL012": "parsim/suppressed_sl012.py",
    "SL013": "sim/suppressed_sl013.py",
    "SL014": "core/suppressed_sl014.py",
    "SL015": "metrics/suppressed_sl015.py",
    "SL016": "core/suppressed_sl016.py",
}


def findings_for(relpath, rule_id=None):
    found = lint_paths([FIXTURES / relpath], ALL_RULES)
    if rule_id is not None:
        found = [f for f in found if f.rule_id == rule_id]
    return found


class TestTruePositives:
    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_bad_fixture_is_flagged(self, rule_id):
        relpath, n_min = CASES[rule_id]
        found = findings_for(relpath, rule_id)
        assert len(found) >= n_min, (
            f"{rule_id} found only {len(found)} in {relpath}: {found}")

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_findings_carry_location_and_hint(self, rule_id):
        relpath, _ = CASES[rule_id]
        for f in findings_for(relpath, rule_id):
            assert f.line >= 1
            assert f.module.startswith("repro.")
            assert f.fix_hint
            assert rule_id in f.format_text()


class TestTrueNegatives:
    @pytest.mark.parametrize("rule_id", sorted(GOOD))
    def test_good_fixture_is_clean(self, rule_id):
        found = findings_for(GOOD[rule_id], rule_id)
        assert found == [], f"{rule_id} false positives: {found}"

    def test_sim_scoped_rules_skip_foreign_packages(self):
        # The same hazards outside sim-facing packages are out of scope.
        found = findings_for("cli_pkg/out_of_scope.py")
        assert found == []


class TestSuppressions:
    @pytest.mark.parametrize("rule_id", sorted(SUPPRESSED))
    def test_suppression_comment_mutes_finding(self, rule_id):
        found = findings_for(SUPPRESSED[rule_id], rule_id)
        assert found == [], f"{rule_id} ignored suppression: {found}"

    def test_suppression_is_rule_specific(self):
        # disable=SL003 must not hide a different rule on that line.
        from repro.simlint import lint_source
        src = ("import itertools\n"
               "_call_ids = itertools.count(1)  "
               "# simlint: disable=SL003\n")
        found = lint_source(src, "repro/core/x.py", ALL_RULES)
        assert [f.rule_id for f in found] == ["SL001"]


class TestRegistry:
    def test_all_rules_registered(self):
        assert sorted(rules_by_id()) == [
            "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
            "SL008", "SL009", "SL010", "SL011", "SL012", "SL013", "SL014",
            "SL015", "SL016"]

    def test_every_rule_documents_itself(self):
        for rule in ALL_RULES:
            assert rule.title and rule.fix_hint
            assert isinstance(rule.severity, Severity)

    def test_fixture_tree_trips_every_rule(self):
        # The integration property the CLI test relies on: linting the
        # whole fixture tree yields every rule id and a non-zero exit.
        found = lint_paths([FIXTURES], ALL_RULES)
        assert {f.rule_id for f in found} == set(CASES)
        assert any(f.severity is Severity.ERROR for f in found)


class TestSL010SupersetOfSL009:
    """The acceptance pairing: SL010 catches what SL009 provably
    misses, and never re-reports what SL009 already covers."""

    def test_aliased_fixture_is_sl009_clean_but_sl010_hit(self):
        found = findings_for(CASES["SL010"][0])
        assert [f for f in found if f.rule_id == "SL009"] == []
        assert len([f for f in found if f.rule_id == "SL010"]) >= 5

    def test_direct_fixture_is_sl010_clean(self):
        # Every direct map[key].attr access in the SL009 TP fixture is
        # SL009's finding alone — no double-reporting.
        found = findings_for(CASES["SL009"][0])
        assert [f for f in found if f.rule_id == "SL010"] == []
        assert len([f for f in found if f.rule_id == "SL009"]) >= 4

    def test_suppressed_sl009_does_not_resurface_as_sl010(self):
        found = findings_for(SUPPRESSED["SL009"])
        assert found == []


class TestSL013SupersetOfSL006:
    """The lifecycle pairing: SL013 catches what SL006 provably
    misses (aliases, helpers, rebinding, non-literal re-arm), and
    never re-reports SL006's literal patterns."""

    def test_typestate_fixture_is_sl006_clean_but_sl013_hit(self):
        found = findings_for(CASES["SL013"][0])
        assert [f for f in found if f.rule_id == "SL006"] == []
        assert len([f for f in found if f.rule_id == "SL013"]) >= 6

    def test_literal_fixture_is_sl013_clean(self):
        # Negative delays and literal .cancelled = False stores are
        # SL006's findings alone — no double-reporting.
        found = findings_for(CASES["SL006"][0])
        assert [f for f in found if f.rule_id == "SL013"] == []
        assert len([f for f in found if f.rule_id == "SL006"]) >= 3

    def test_suppressed_sl006_does_not_resurface_as_sl013(self):
        found = findings_for(SUPPRESSED["SL006"])
        assert found == []
