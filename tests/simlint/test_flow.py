"""Unit tests for the interprocedural flow layer (callgraph + taint).

Fixture-file coverage lives in test_rules.py; these tests poke the
machinery directly — call resolution, summaries, the key lattice —
via lint_source on small crafted modules."""

import re

from repro.simlint import ALL_RULES, lint_source
from repro.simlint.callgraph import ProjectIndex
from repro.simlint.engine import LintContext, Project
from repro.simlint.flow import (
    EXEMPT,
    HANDLE_METHODS,
    NONOWNED,
    OWNED,
    REGION_MAPS,
    FlowAnalysis,
)
from repro.simlint.rules import CrossRegionDirectAccess

MOD = "repro/parsim/flowmod.py"


def flow_findings(src, rule_id=None, path=MOD):
    found = lint_source(src, path, ALL_RULES)
    if rule_id is not None:
        found = [f for f in found if f.rule_id == rule_id]
    return found


def analysis_of(src, path=MOD):
    ctx = LintContext(src, path)
    project = Project([ctx])
    return FlowAnalysis(project)


class TestSharedConstants:
    """flow.py keeps private copies of SL009's patterns (no import
    cycle); they must never drift apart."""

    def test_region_map_pattern_matches_sl009(self):
        assert REGION_MAPS.pattern == (
            CrossRegionDirectAccess._REGION_MAPS.pattern)

    def test_handle_methods_match_sl009(self):
        assert HANDLE_METHODS == CrossRegionDirectAccess._HANDLE_METHODS

    def test_exempt_pattern_matches_sl009(self):
        assert EXEMPT.pattern == CrossRegionDirectAccess._EXEMPT.pattern


class TestCallgraph:
    SRC = (
        "def helper(x):\n"
        "    return x\n"
        "\n"
        "class Platform:\n"
        "    def outer(self):\n"
        "        def inner(y):\n"
        "            return y\n"
        "        inner(1)\n"
        "        helper(2)\n"
        "        self.method(3)\n"
        "    def method(self, z):\n"
        "        return z\n"
    )

    def _index(self):
        ctx = LintContext(self.SRC, MOD)
        return ProjectIndex(Project([ctx])), ctx

    def test_functions_indexed_with_qualnames(self):
        index, _ = self._index()
        quals = set(index.functions)
        assert "repro.parsim.flowmod:helper" in quals
        assert "repro.parsim.flowmod:Platform.outer" in quals
        assert any(q.endswith("outer.<locals>.inner") for q in quals)

    def test_resolution_kinds(self):
        index, ctx = self._index()
        import ast
        outer = index.functions["repro.parsim.flowmod:Platform.outer"]
        calls = [n for n in ast.walk(outer.node)
                 if isinstance(n, ast.Call)]
        resolved = {index.resolve_call(outer, c).name
                    for c in calls if index.resolve_call(outer, c)}
        assert resolved == {"inner", "helper", "method"}

    def test_unresolvable_call_is_none(self):
        index, ctx = self._index()
        import ast
        call = ast.parse("unknown_fn()").body[0].value
        outer = index.functions["repro.parsim.flowmod:Platform.outer"]
        assert index.resolve_call(outer, call) is None


class TestSummaries:
    def test_param_keyed_return_summary(self):
        a = analysis_of(
            "class P:\n"
            "    def pick(self, r):\n"
            "        return self.schedulers[r]\n")
        s = a.summaries["repro.parsim.flowmod:P.pick"]
        assert s.returns == ("schedulers", ("param",
                                            "repro.parsim.flowmod:P.pick",
                                            1))

    def test_mut_param_summary(self):
        a = analysis_of(
            "class P:\n"
            "    def bump(self, c):\n"
            "        c.update({})\n")
        s = a.summaries["repro.parsim.flowmod:P.bump"]
        assert 1 in s.mut

    def test_key_deep_propagates_through_call_chain(self):
        # wrap() -> pick() two levels deep: wrap's r is still a key.
        a = analysis_of(
            "class P:\n"
            "    def pick(self, r):\n"
            "        s = self.schedulers[r]\n"
            "        return s.pending\n"
            "    def wrap(self, r2):\n"
            "        return self.pick(r2)\n")
        pick = a.summaries["repro.parsim.flowmod:P.pick"]
        wrap = a.summaries["repro.parsim.flowmod:P.wrap"]
        assert 1 in pick.key_deep
        assert 1 in wrap.key_deep

    def test_fixpoint_terminates_on_recursion(self):
        a = analysis_of(
            "class P:\n"
            "    def ping(self, r):\n"
            "        return self.pong(r)\n"
            "    def pong(self, r):\n"
            "        return self.ping(r)\n")
        assert a.summaries  # no hang, no blowup


class TestLattice:
    def test_owned_alias_of_self_region(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        mine = self.region\n"
            "        s = self.schedulers[mine]\n"
            "        return s.pending\n", "SL010")
        assert found == []

    def test_foreign_literal_key_is_nonowned(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        s = self.schedulers['r9']\n"
            "        return s.pending\n", "SL010")
        assert len(found) == 1
        assert "'schedulers'" in found[0].message

    def test_param_key_is_abstract_not_reported(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self, r):\n"
            "        s = self.schedulers[r]\n"
            "        return s.pending\n", "SL010")
        assert found == []

    def test_tuple_unpack_tracks_taint(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        a, b = self.schedulers['r1'], 0\n"
            "        return a.pending\n", "SL010")
        assert len(found) == 1

    def test_rebinding_clears_taint(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        s = self.schedulers['r1']\n"
            "        s = 0\n"
            "        return s.bit_length()\n", "SL010")
        assert found == []

    def test_element_subscript_keeps_taint(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        w = self.workers_by_region['r1'][0]\n"
            "        return w.running\n", "SL010")
        assert len(found) == 1

    def test_handle_surface_is_clean_through_alias(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self, call):\n"
            "        h = self.durableqs_by_region['r9']\n"
            "        return h.enqueue(call)\n", "SL010")
        assert found == []

    def test_exempt_function_names_skip_reporting(self):
        found = flow_findings(
            "class P:\n"
            "    def handle_message(self, msg):\n"
            "        s = self.schedulers['r1']\n"
            "        return s.pending\n", "SL010")
        assert found == []

    def test_scope_limited_to_core_and_parsim(self):
        src = ("class P:\n"
               "    def f(self):\n"
               "        s = self.schedulers['r1']\n"
               "        return s.pending\n")
        assert flow_findings(src, "SL010",
                             path="repro/sweep/other.py") == []
        assert len(flow_findings(src, "SL010",
                                 path="repro/core/other.py")) == 1


class TestInterprocedural:
    def test_foreign_key_into_helper_reported_at_callsite(self):
        found = flow_findings(
            "class P:\n"
            "    def peek(self, r):\n"
            "        s = self.schedulers[r]\n"
            "        return s.pending\n"
            "    def f(self):\n"
            "        return self.peek('r7')\n", "SL010")
        assert len(found) == 1
        assert found[0].line == 6

    def test_tainted_value_into_mutating_helper_is_sl012(self):
        found = flow_findings(
            "class P:\n"
            "    def bump(self, c):\n"
            "        c.update({})\n"
            "    def f(self):\n"
            "        self.bump(self.counts_by_region['r7'])\n", "SL012")
        assert len(found) == 1

    def test_helper_return_taint_resolved_at_callsite(self):
        found = flow_findings(
            "class P:\n"
            "    def pick(self, r):\n"
            "        return self.schedulers[r]\n"
            "    def f(self):\n"
            "        return self.pick('r7').pending\n", "SL010")
        assert len(found) == 1

    def test_owned_key_through_helper_is_clean(self):
        found = flow_findings(
            "class P:\n"
            "    def pick(self, r):\n"
            "        return self.schedulers[r]\n"
            "    def f(self):\n"
            "        return self.pick(self.region).pending\n", "SL010")
        assert found == []


class TestMutationForms:
    def test_direct_subscript_augassign(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        self.counts_by_region['r1'] += 1\n", "SL012")
        assert len(found) == 1

    def test_del_foreign_entry(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        del self.workers_by_region['r1']\n", "SL012")
        assert len(found) == 1

    def test_owned_subscript_store_is_clean(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self):\n"
            "        self.counts_by_region[self.region] += 1\n", "SL012")
        assert found == []


class TestClosureEscape:
    def test_lambda_over_owned_state_still_flagged(self):
        # Owned state must not cross the Pipe either.
        found = flow_findings(
            "class P:\n"
            "    def f(self, dst):\n"
            "        dq = self.durableqs_by_region[self.region]\n"
            "        self.send(dst, 1.0, lambda: dq.pop_head())\n",
            "SL011")
        assert len(found) == 1

    def test_plain_data_payload_is_clean(self):
        found = flow_findings(
            "class P:\n"
            "    def f(self, dst, call_id):\n"
            "        self.send(dst, 1.0, (self.region, call_id))\n",
            "SL011")
        assert found == []


class TestDeterminism:
    SRC = (
        "class P:\n"
        "    def a(self):\n"
        "        s = self.schedulers['r1']\n"
        "        return s.pending\n"
        "    def b(self):\n"
        "        q = self.durableqs_by_region['r2']\n"
        "        q.append(1)\n")

    def test_findings_are_deterministic(self):
        runs = [tuple((f.rule_id, f.line, f.message)
                      for f in flow_findings(self.SRC))
                for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]

    def test_messages_name_map_key_and_rule(self):
        found = flow_findings(self.SRC)
        by_rule = {f.rule_id for f in found}
        assert by_rule == {"SL010", "SL012"}
        for f in found:
            assert re.search(r"'(schedulers|durableqs_by_region)'",
                             f.message)
