"""Tests for downstream service overload/back-pressure models (§5.5)."""

import pytest

from repro.downstream import (
    DownstreamService,
    Incident,
    IncidentInjector,
    ServiceParams,
    ServiceRegistry,
    build_tao_stack,
)
from repro.sim import Simulator


def make_service(sim=None, capacity=100.0, **params):
    sim = sim or Simulator(seed=1)
    return sim, DownstreamService(
        sim, "svc", ServiceParams(capacity_rps=capacity, **params))


class TestHealthyService:
    def test_under_capacity_no_exceptions(self):
        sim, svc = make_service(capacity=1000.0)
        result = svc.call(50)
        assert result.exceptions == 0
        assert result.failures == 0
        assert result.ok == 50

    def test_load_tracking(self):
        sim, svc = make_service(capacity=1000.0, window_s=10.0)
        svc.call(500)
        sim.run_until(10.0)
        assert svc.load_rps == pytest.approx(50.0)


class TestOverload:
    def _overload(self, factor=3.0, capacity=100.0):
        sim, svc = make_service(capacity=capacity, window_s=5.0)
        # Establish high measured load over several windows.
        total = {"exceptions": 0, "failures": 0, "ok": 0}
        for step in range(1, 41):
            result = svc.call(int(capacity * factor / 2))
            total["exceptions"] += result.exceptions
            total["failures"] += result.failures
            total["ok"] += result.ok
            sim.run_until(step * 0.5)
        return svc, total

    def test_overload_throws_backpressure(self):
        svc, totals = self._overload(factor=3.0)
        assert totals["exceptions"] > 0

    def test_extreme_overload_fails_hard(self):
        svc, totals = self._overload(factor=6.0)
        assert totals["failures"] > 0

    def test_distress_grows_with_overload(self):
        # More overload → more non-ok outcomes (exceptions + failures).
        _, mild = self._overload(factor=1.5)
        _, severe = self._overload(factor=6.0)
        total_mild = sum(mild.values())
        total_severe = sum(severe.values())
        distress_mild = (mild["exceptions"] + mild["failures"]) / total_mild
        distress_severe = (severe["exceptions"] + severe["failures"]) / \
            total_severe
        assert distress_severe > distress_mild * 1.2

    def test_capacity_factor_degradation(self):
        # Incident injection: capacity drops → same load now overloads.
        sim, svc = make_service(capacity=1000.0, window_s=5.0)
        svc.set_capacity_factor(0.05)
        for step in range(1, 21):
            svc.call(100)
            sim.run_until(step * 0.5)
        assert svc.total_exceptions > 0

    def test_zero_call_noop(self):
        sim, svc = make_service()
        result = svc.call(0)
        assert result.ok == 0 and result.exceptions == 0


class TestCascade:
    def test_dependency_receives_amplified_traffic(self):
        sim = Simulator(seed=2)
        registry = ServiceRegistry()
        tao, wtcache, kvstore = build_tao_stack(sim, registry)
        wtcache.call(100)
        assert kvstore.total_requests > 0
        assert tao.total_requests > 0

    def test_failures_amplify_retries_downstream(self):
        # §5.5: failures and retries amplified queries to dependencies.
        sim = Simulator(seed=3)
        registry = ServiceRegistry()
        tao, wtcache, kvstore = build_tao_stack(
            sim, registry, wtcache_capacity_rps=10.0)
        # Overload WTCache heavily past several load windows; once its
        # measured load exceeds capacity, its failures/exceptions
        # amplify the traffic to KVStore by 1.5×.
        n_steps = 120
        for step in range(1, n_steps + 1):
            wtcache.call(50)
            sim.run_until(step * 0.5)
        base_expected = n_steps * 50 * 0.5  # amplification-free volume
        assert wtcache.total_exceptions > 0
        assert kvstore.total_requests > base_expected


class TestRegistry:
    def test_register_and_get(self):
        sim = Simulator()
        registry = ServiceRegistry()
        _, svc = make_service(sim)
        registry.register(svc)
        assert registry.get("svc") is svc
        assert registry.maybe_get("nope") is None
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_duplicate_rejected(self):
        sim = Simulator()
        registry = ServiceRegistry()
        _, svc = make_service(sim)
        registry.register(svc)
        with pytest.raises(ValueError):
            registry.register(svc)


class TestIncidentInjector:
    def test_incident_window(self):
        sim, svc = make_service()
        injector = IncidentInjector(sim)
        injector.inject(svc, Incident("svc", start_s=100.0, end_s=200.0,
                                      degraded_factor=0.1))
        sim.run_until(150.0)
        assert svc.effective_capacity == pytest.approx(10.0)
        sim.run_until(250.0)
        assert svc.effective_capacity == pytest.approx(100.0)

    def test_wrong_service_rejected(self):
        sim, svc = make_service()
        injector = IncidentInjector(sim)
        with pytest.raises(ValueError):
            injector.inject(svc, Incident("other", 0.0, 10.0, 0.5))

    def test_incident_validation(self):
        with pytest.raises(ValueError):
            Incident("s", 10.0, 5.0, 0.5)
        with pytest.raises(ValueError):
            Incident("s", 0.0, 10.0, 1.5)
