"""Tests for population building and arrival generation."""

import pytest

from repro.sim import Simulator
from repro.workloads import (
    ArrivalGenerator,
    ConstantRate,
    QuotaType,
    TriggerType,
    attach_spike,
    build_population,
    estimate_demand_minstr,
    figure4_spike,
)


class TestBuildPopulation:
    def test_category_mix(self):
        pop = build_population(n_functions=100)
        triggers = [l.spec.trigger for l in pop.loads]
        assert triggers.count(TriggerType.QUEUE) >= 80
        assert triggers.count(TriggerType.EVENT) >= 1
        assert triggers.count(TriggerType.TIMER) >= 1

    def test_total_rate_preserved(self):
        pop = build_population(n_functions=60, total_rate=42.0)
        assert pop.total_mean_rate() == pytest.approx(42.0, rel=0.02)

    def test_event_functions_carry_most_calls(self):
        # Table 1: event-triggered = 85% of invocations from 8% of
        # functions → their per-function rates dominate.
        pop = build_population(n_functions=100, total_rate=100.0)
        event_rate = sum(l.mean_rate for l in pop.loads
                         if l.spec.trigger is TriggerType.EVENT)
        assert event_rate == pytest.approx(85.0, rel=0.02)

    def test_unique_names(self):
        pop = build_population(n_functions=80)
        names = [l.spec.name for l in pop.loads]
        assert len(set(names)) == len(names)

    def test_opportunistic_fraction_controls(self):
        none = build_population(n_functions=60, opportunistic_fraction=0.0)
        assert all(l.spec.quota_type is QuotaType.RESERVED
                   for l in none.loads)
        lots = build_population(n_functions=60, opportunistic_fraction=1.0)
        assert any(l.spec.quota_type is QuotaType.OPPORTUNISTIC
                   for l in lots.loads)

    def test_deterministic_given_seed(self):
        a = build_population(n_functions=30)
        b = build_population(n_functions=30)
        assert [l.spec.name for l in a.loads] == [l.spec.name for l in b.loads]
        assert [l.mean_rate for l in a.loads] == [l.mean_rate for l in b.loads]

    def test_by_name_lookup(self):
        pop = build_population(n_functions=30)
        name = pop.loads[0].spec.name
        assert pop.by_name(name).spec.name == name
        with pytest.raises(KeyError):
            pop.by_name("missing")

    def test_demand_estimate_positive_and_scales(self):
        small = estimate_demand_minstr(build_population(30, total_rate=10.0))
        large = estimate_demand_minstr(build_population(30, total_rate=100.0))
        assert small > 0
        assert large == pytest.approx(small * 10, rel=0.01)


class TestAttachSpike:
    def test_spike_replaces_shape(self):
        pop = build_population(n_functions=30)
        name = pop.loads[0].spec.name
        attach_spike(pop, name, figure4_spike(scale=1e-4))
        load = pop.by_name(name)
        assert load.rate(0.0) == 0.0
        assert load.rate(6 * 3600.0 + 60.0) > 1.0


class TestArrivalGenerator:
    def _population_one(self, rate):
        pop = build_population(n_functions=3, total_rate=rate)
        for load in pop.loads:
            load.shape = ConstantRate(1.0)
            load.shape_mean = 1.0
            load.future_start_fraction = 0.0
        return pop

    def test_poisson_volume(self):
        sim = Simulator(seed=1)
        pop = self._population_one(rate=10.0)
        seen = []
        gen = ArrivalGenerator(sim, pop, lambda s, d: seen.append((s, d)),
                               tick_s=5.0, stop_at=2000.0)
        sim.run_until(2000.0)
        expected = pop.total_mean_rate() * 2000.0
        assert len(seen) == pytest.approx(expected, rel=0.1)

    def test_stops_at_horizon(self):
        sim = Simulator(seed=2)
        pop = self._population_one(rate=10.0)
        seen = []
        ArrivalGenerator(sim, pop, lambda s, d: seen.append(s),
                         tick_s=5.0, stop_at=100.0)
        sim.run_until(1000.0)
        count_at_100 = len(seen)
        sim.run_until(2000.0)
        assert len(seen) == count_at_100

    def test_future_start_fraction(self):
        sim = Simulator(seed=3)
        pop = self._population_one(rate=20.0)
        for load in pop.loads:
            load.future_start_fraction = 1.0
        delays = []
        ArrivalGenerator(sim, pop, lambda s, d: delays.append(d),
                         tick_s=5.0, stop_at=500.0)
        sim.run_until(500.0)
        assert delays and all(d > 0 for d in delays)

    def test_invalid_tick(self):
        sim = Simulator()
        pop = self._population_one(rate=1.0)
        with pytest.raises(ValueError):
            ArrivalGenerator(sim, pop, lambda s, d: None, tick_s=0.0)
