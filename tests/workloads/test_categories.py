"""Tests for Table 1 category shares and §6 team skew."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import (
    CALL_SHARE,
    COMPUTE_SHARE,
    FUNCTION_SHARE,
    TriggerType,
    capacity_concentration,
    split_functions,
    team_weights,
)


class TestShares:
    def test_function_shares_sum_to_one(self):
        assert sum(FUNCTION_SHARE.values()) == pytest.approx(1.0)

    def test_call_shares_match_paper(self):
        assert CALL_SHARE[TriggerType.EVENT] == 0.85
        assert CALL_SHARE[TriggerType.QUEUE] == 0.15

    def test_compute_dominated_by_queue(self):
        assert COMPUTE_SHARE[TriggerType.QUEUE] == 0.86


class TestSplitFunctions:
    def test_exact_total(self):
        counts = split_functions(100)
        assert counts.total == 100

    def test_paper_proportions(self):
        counts = split_functions(1000)
        assert counts.queue == pytest.approx(890, abs=15)
        assert counts.event == pytest.approx(80, abs=10)
        assert counts.timer == pytest.approx(30, abs=10)

    def test_minimum_population(self):
        counts = split_functions(3)
        assert counts.queue >= 1 and counts.event >= 1 and counts.timer >= 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            split_functions(2)

    @given(st.integers(min_value=3, max_value=50000))
    @settings(max_examples=50)
    def test_total_preserved_and_positive(self, n):
        counts = split_functions(n)
        assert counts.total == n
        assert counts.queue >= 1 and counts.event >= 1 and counts.timer >= 1


class TestTeamSkew:
    """§6: one team 10%, 0.4% of teams 50%, 2.6% of teams 90%."""

    def test_anchors_at_2000_teams(self):
        weights = team_weights(2000)
        assert weights[0] == pytest.approx(0.10, rel=0.01)
        assert capacity_concentration(weights, 0.5) == pytest.approx(
            0.004, rel=0.05)
        assert capacity_concentration(weights, 0.9) == pytest.approx(
            0.026, rel=0.05)

    def test_weights_sum_to_one(self):
        assert sum(team_weights(500)) == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = team_weights(300)
        assert all(a >= b - 1e-12 for a, b in zip(weights, weights[1:]))

    def test_single_team(self):
        assert team_weights(1) == [1.0]

    def test_invalid_team_count(self):
        with pytest.raises(ValueError):
            team_weights(0)

    def test_concentration_bounds(self):
        weights = team_weights(100)
        with pytest.raises(ValueError):
            capacity_concentration(weights, 0.0)
        assert capacity_concentration(weights, 1.0) <= 1.0

    @given(st.integers(min_value=2, max_value=3000))
    @settings(max_examples=30)
    def test_concentration_monotone(self, n):
        weights = team_weights(n)
        c50 = capacity_concentration(weights, 0.5)
        c90 = capacity_concentration(weights, 0.9)
        assert c50 <= c90 <= 1.0
