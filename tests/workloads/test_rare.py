"""Tests for the §1 rare-function population."""

import pytest

from repro.workloads import build_rare_population, rare_share


class TestRarePopulation:
    def test_eightyone_percent_rare(self):
        pop = build_rare_population(n_functions=200)
        assert rare_share(pop, threshold_per_min=1.0) == pytest.approx(
            0.81, abs=0.01)

    def test_rare_rates_within_band(self):
        pop = build_rare_population(n_functions=100,
                                    min_rate_per_min=1 / 60.0,
                                    max_rate_per_min=1.0)
        rare = [l for l in pop.loads if l.mean_rate * 60.0 <= 1.0]
        assert rare
        for load in rare:
            assert 1 / 60.0 - 1e-9 <= load.mean_rate * 60.0 <= 1.0 + 1e-9

    def test_busy_functions_present(self):
        pop = build_rare_population(n_functions=100, rare_fraction=0.8,
                                    busy_rate_per_min=30.0)
        busy = [l for l in pop.loads if l.mean_rate * 60.0 > 1.0]
        assert len(busy) == 20
        assert all(l.mean_rate * 60.0 == pytest.approx(30.0) for l in busy)

    def test_unique_names_and_flat_shape(self):
        pop = build_rare_population(n_functions=50)
        names = [l.spec.name for l in pop.loads]
        assert len(set(names)) == 50
        for load in pop.loads:
            assert load.rate(0.0) == pytest.approx(load.rate(43_200.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            build_rare_population(rare_fraction=0.0)
        with pytest.raises(ValueError):
            build_rare_population(min_rate_per_min=2.0,
                                  max_rate_per_min=1.0)
