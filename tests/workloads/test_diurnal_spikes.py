"""Tests for diurnal and spike rate shapes (Figures 2 and 4)."""

import pytest

from repro.workloads import Burst, ConstantRate, DiurnalRate, SpikeTrain
from repro.workloads.spikes import figure4_spike

DAY = 86_400.0


class TestDiurnalRate:
    def test_peak_to_trough_matches_figure2(self):
        d = DiurnalRate(base_rate=100.0, peak_to_trough=4.3)
        values = [d.rate(t) for t in range(0, int(DAY), 30)]
        ratio = max(values) / min(values)
        assert ratio == pytest.approx(4.3, rel=0.05)

    def test_peak_is_at_midnight(self):
        # §2.2: the midnight peak from big-data pipelines.
        d = DiurnalRate(base_rate=100.0)
        midnight = d.rate(0.0)
        afternoon = d.rate(14 * 3600.0)
        assert midnight > afternoon

    def test_mean_near_base_rate(self):
        d = DiurnalRate(base_rate=50.0)
        assert d.mean_rate() == pytest.approx(50.0, rel=0.25)

    def test_daily_periodicity(self):
        d = DiurnalRate(base_rate=10.0)
        assert d.rate(1234.0) == pytest.approx(d.rate(1234.0 + DAY))

    def test_day_ratio_without_spike(self):
        d = DiurnalRate(base_rate=100.0, peak_to_trough=2.0, day_ratio=2.0)
        values = [d.rate(t) for t in range(0, int(DAY), 60)]
        assert max(values) / min(values) == pytest.approx(2.0, rel=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DiurnalRate(base_rate=0)
        with pytest.raises(ValueError):
            DiurnalRate(peak_to_trough=1.5, day_ratio=2.0)
        with pytest.raises(ValueError):
            DiurnalRate(day_ratio=0.5)

    def test_always_positive(self):
        d = DiurnalRate(base_rate=1.0, peak_to_trough=10.0, day_ratio=3.0)
        assert all(d.rate(t) > 0 for t in range(0, int(DAY), 600))


class TestConstantRate:
    def test_flat(self):
        c = ConstantRate(5.0)
        assert c.rate(0) == c.rate(12345) == 5.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)


class TestSpikeTrain:
    def test_rate_inside_and_outside_burst(self):
        train = SpikeTrain(background_rate=1.0, bursts=(
            Burst(start_s=100.0, duration_s=50.0, total_calls=500.0),))
        assert train.rate(50.0) == 1.0
        assert train.rate(125.0) == pytest.approx(11.0)
        assert train.rate(151.0) == 1.0

    def test_total_calls_window_clipping(self):
        train = SpikeTrain(bursts=(
            Burst(start_s=0.0, duration_s=100.0, total_calls=1000.0),))
        assert train.total_calls(0.0, 50.0) == pytest.approx(500.0)

    def test_overlapping_bursts_sum(self):
        train = SpikeTrain(bursts=(
            Burst(0.0, 100.0, 100.0), Burst(50.0, 100.0, 200.0)))
        assert train.rate(75.0) == pytest.approx(3.0)

    def test_figure4_shape(self):
        # Figure 4: ~20 M calls within a 15-minute window (scaled).
        train = figure4_spike(scale=1e-4)
        window = train.total_calls(6 * 3600.0, 6 * 3600.0 + 900.0)
        assert window == pytest.approx(2000.0)
        assert train.rate(0.0) == 0.0

    def test_figure4_invalid_scale(self):
        with pytest.raises(ValueError):
            figure4_spike(scale=0.0)

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            Burst(0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            Burst(0.0, 10.0, -1.0)
