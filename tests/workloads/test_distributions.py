"""Tests that the fitted distributions reproduce the paper's Table 3."""

import pytest

from repro.sim import RngStream
from repro.workloads import TriggerType, profile_for


def _sampled_percentiles(dist, n=30000, percentiles=(10, 50, 90)):
    rng = RngStream("table3", 42)
    samples = sorted(dist.sample(rng) for _ in range(n))
    return [samples[int(p / 100 * n)] for p in percentiles]


class TestTable3Cpu:
    """Paper Table 3 CPU columns (MIPS per call), fitted at P10/P90."""

    def test_queue_triggered(self):
        p10, p50, p90 = _sampled_percentiles(
            profile_for(TriggerType.QUEUE).cpu_minstr)
        assert p10 == pytest.approx(20.40, rel=0.25)
        assert p90 == pytest.approx(7611.0, rel=0.25)
        # P50 is not a fit point but should land near 221.80 anyway.
        assert 100 < p50 < 800

    def test_event_triggered(self):
        p10, p50, p90 = _sampled_percentiles(
            profile_for(TriggerType.EVENT).cpu_minstr)
        assert p10 == pytest.approx(0.54, rel=0.25)
        assert p90 == pytest.approx(189.0, rel=0.25)
        assert 5 < p50 < 30  # paper: 11.36

    def test_timer_triggered(self):
        p10, _, p90 = _sampled_percentiles(
            profile_for(TriggerType.TIMER).cpu_minstr)
        assert p10 == pytest.approx(0.37, rel=0.3)
        assert p90 == pytest.approx(44_839.0, rel=0.3)

    def test_queue_tail_heaviest_in_absolute_cpu(self):
        # §3.3: queue-triggered functions have the long CPU tail.
        q = _sampled_percentiles(profile_for(TriggerType.QUEUE).cpu_minstr)
        e = _sampled_percentiles(profile_for(TriggerType.EVENT).cpu_minstr)
        assert q[2] > 10 * e[2]


class TestAggregateAnchors:
    """§3.3 aggregate statements about memory and execution time."""

    def test_memory_anchors(self):
        rng = RngStream("mem", 1)
        # Mix per Table 1 call shares (what §3.3 observes per function).
        samples = []
        for trigger, n in ((TriggerType.QUEUE, 10000),
                           (TriggerType.EVENT, 10000),
                           (TriggerType.TIMER, 5000)):
            profile = profile_for(trigger)
            samples += [profile.memory_mb.sample(rng) for _ in range(n)]
        samples.sort()
        frac_16 = sum(1 for s in samples if s < 16.0) / len(samples)
        frac_256 = sum(1 for s in samples if s < 256.0) / len(samples)
        # Paper: 60% < 16 MB, 92% < 256 MB (loose band: mixture weights
        # in production are per-function, ours per-sample).
        assert 0.30 <= frac_16 <= 0.75
        assert 0.80 <= frac_256 <= 0.98

    def test_exec_time_anchors(self):
        rng = RngStream("exec", 2)
        profile = profile_for(TriggerType.QUEUE)
        samples = sorted(profile.exec_time_s.sample(rng) for _ in range(20000))
        frac_1s = sum(1 for s in samples if s < 1.0) / len(samples)
        frac_60s = sum(1 for s in samples if s < 60.0) / len(samples)
        # Paper: 33% < 1 s and 94% < 60 s across all calls.
        assert 0.15 <= frac_1s <= 0.5
        assert 0.85 <= frac_60s <= 0.98

    def test_timer_exec_range(self):
        # §3.3: timer execution from 24 ms at P10 to ~11 min at P99.
        rng = RngStream("timer", 3)
        profile = profile_for(TriggerType.TIMER)
        samples = sorted(profile.exec_time_s.sample(rng) for _ in range(30000))
        p10 = samples[3000]
        p99 = samples[29700]
        assert p10 == pytest.approx(0.024, rel=0.4)
        assert p99 == pytest.approx(660.0, rel=0.4)

    def test_event_calls_are_short(self):
        rng = RngStream("evt", 4)
        profile = profile_for(TriggerType.EVENT)
        samples = sorted(profile.exec_time_s.sample(rng) for _ in range(5000))
        assert samples[len(samples) // 2] < 1.0
