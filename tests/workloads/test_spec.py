"""Tests for FunctionSpec, LogNormal fitting, ResourceProfile."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import RngStream
from repro.workloads import (
    Criticality,
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
    TriggerType,
)
from repro.workloads.spec import DAY_S, _norm_ppf


class TestNormPpf:
    @pytest.mark.parametrize("p,z", [(0.5, 0.0), (0.9, 1.2816),
                                     (0.99, 2.3263), (0.1, -1.2816)])
    def test_known_values(self, p, z):
        assert _norm_ppf(p) == pytest.approx(z, abs=1e-3)

    def test_out_of_range(self):
        for p in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                _norm_ppf(p)

    @given(st.floats(min_value=0.001, max_value=0.999))
    @settings(max_examples=50)
    def test_symmetry(self, p):
        assert _norm_ppf(p) == pytest.approx(-_norm_ppf(1 - p), abs=1e-6)


class TestLogNormal:
    def test_fit_through_percentiles(self):
        ln = LogNormal.from_percentiles((10, 2.0), (90, 200.0))
        rng = RngStream("t", 0)
        samples = sorted(ln.sample(rng) for _ in range(40000))
        p10 = samples[4000]
        p90 = samples[36000]
        assert p10 == pytest.approx(2.0, rel=0.15)
        assert p90 == pytest.approx(200.0, rel=0.15)

    def test_median(self):
        ln = LogNormal(mu=math.log(5.0), sigma=1.0)
        assert ln.median == pytest.approx(5.0)

    def test_clamping(self):
        ln = LogNormal(mu=0.0, sigma=3.0, lo=0.5, hi=2.0)
        rng = RngStream("t", 1)
        for _ in range(200):
            assert 0.5 <= ln.sample(rng) <= 2.0

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            LogNormal.from_percentiles((90, 1.0), (10, 2.0))
        with pytest.raises(ValueError):
            LogNormal.from_percentiles((10, -1.0), (90, 2.0))
        with pytest.raises(ValueError):
            LogNormal.from_percentiles((10, 5.0), (90, 1.0))  # decreasing


class TestResourceProfile:
    def test_cpu_heavy_call_stretches_exec_time(self):
        # A call with huge CPU cannot finish faster than cpu/core_mips.
        profile = ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(1e6), sigma=0.0),
            memory_mb=LogNormal(mu=math.log(100), sigma=0.0),
            exec_time_s=LogNormal(mu=math.log(0.1), sigma=0.0))
        rng = RngStream("t", 0)
        cpu, _, exec_s = profile.sample(rng, core_mips=1000.0)
        assert exec_s == pytest.approx(cpu / 1000.0)

    def test_io_bound_call_keeps_wall_time(self):
        profile = ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(1.0), sigma=0.0),
            memory_mb=LogNormal(mu=math.log(10), sigma=0.0),
            exec_time_s=LogNormal(mu=math.log(2.0), sigma=0.0))
        rng = RngStream("t", 0)
        _, _, exec_s = profile.sample(rng, core_mips=1000.0)
        assert exec_s == pytest.approx(2.0)


class TestFunctionSpec:
    def test_defaults(self):
        spec = FunctionSpec(name="f")
        assert spec.trigger is TriggerType.QUEUE
        assert spec.profile is not None

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="")

    def test_deadline_bounds(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", deadline_s=0.0)
        with pytest.raises(ValueError):
            FunctionSpec(name="f", deadline_s=DAY_S + 1)

    def test_opportunistic_gets_24h_deadline(self):
        # §4.6.2: opportunistic quota → 24 h execution SLO.
        spec = FunctionSpec(name="f", quota_type=QuotaType.OPPORTUNISTIC,
                            deadline_s=60.0)
        assert spec.deadline_s == DAY_S

    def test_delay_tolerance(self):
        assert FunctionSpec(name="f",
                            quota_type=QuotaType.OPPORTUNISTIC).is_delay_tolerant
        assert FunctionSpec(name="f", deadline_s=7200.0).is_delay_tolerant
        assert not FunctionSpec(name="f", deadline_s=30.0).is_delay_tolerant

    def test_concurrency_limit_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec(name="f", concurrency_limit=0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(retry_delay_s=-1)

    def test_criticality_ordering(self):
        assert Criticality.CRITICAL > Criticality.HIGH > \
            Criticality.NORMAL > Criticality.LOW
