"""Tests for the growth model (Fig 3), trace log, and §3.2 examples."""

import pytest

from repro.workloads import (
    CallTrace,
    GrowthModel,
    LaunchEvent,
    TraceLog,
    all_examples,
    falco,
    figure3_model,
    morphing_framework,
    table2_rows,
)


class TestGrowthModel:
    def test_figure3_fifty_x_in_five_years(self):
        model = figure3_model()
        assert model.growth_factor(5 * 365) == pytest.approx(50.0, rel=0.15)

    def test_launch_inflection(self):
        model = figure3_model()
        # Growth rate around the stream launch (~day 1550) clearly
        # exceeds organic growth of the months before.
        before = model.daily_calls(1500) / model.daily_calls(1400)
        around = model.daily_calls(1650) / model.daily_calls(1550)
        assert around > before * 1.2

    def test_series_monotone(self):
        model = figure3_model()
        series = model.series(days=1825, step_days=30)
        values = [v for _, v in series]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_launch_event_validation(self):
        with pytest.raises(ValueError):
            LaunchEvent(day=0, volume_multiplier=0.5)
        with pytest.raises(ValueError):
            GrowthModel(initial_daily_calls=0)


class TestTraceLog:
    def _trace(self, i=1, outcome="ok"):
        return CallTrace(
            call_id=i, function="f", trigger="queue", criticality=1,
            quota_type="reserved", submit_time=10.0,
            start_time_requested=10.0, dispatch_time=12.0, finish_time=13.0,
            region_submitted="a", region_executed="b", worker="w",
            outcome=outcome, cpu_minstr=5.0, memory_mb=64.0, exec_time_s=1.0)

    def test_derived_metrics(self):
        t = self._trace()
        assert t.queueing_delay == pytest.approx(2.0)
        assert t.completion_latency == pytest.approx(3.0)
        assert t.cross_region

    def test_queueing_delay_respects_future_start(self):
        t = CallTrace(
            call_id=1, function="f", trigger="queue", criticality=1,
            quota_type="reserved", submit_time=0.0,
            start_time_requested=100.0, dispatch_time=101.0,
            finish_time=102.0, region_submitted="a", region_executed="a",
            worker="w", outcome="ok", cpu_minstr=1, memory_mb=1,
            exec_time_s=1)
        assert t.queueing_delay == pytest.approx(1.0)

    def test_filters(self):
        log = TraceLog()
        log.add(self._trace(1, "ok"))
        log.add(self._trace(2, "error"))
        assert len(log.completed()) == 1
        assert len(log.for_function("f")) == 2

    def test_csv_round_trip(self, tmp_path):
        log = TraceLog()
        for i in range(5):
            log.add(self._trace(i))
        path = tmp_path / "traces.csv"
        log.save_csv(path)
        loaded = TraceLog.load_csv(path)
        assert len(loaded) == 5
        first = next(iter(loaded))
        assert first.function == "f"
        assert first.submit_time == 10.0
        assert isinstance(first.call_id, int)


class TestExamples:
    def test_five_workloads(self):
        examples = all_examples()
        assert len(examples) == 5
        names = {e.name for e in examples}
        assert "falco" in names and "morphing-framework" in names

    def test_falco_slo(self):
        # Falco: SLO of execution within 15 s (§3.2).
        for spec in falco().specs:
            assert spec.deadline_s == 15.0

    def test_morphing_is_ephemeral_and_cpu_heavy(self):
        morph = morphing_framework()
        assert all(s.ephemeral for s in morph.specs)
        ordinary = falco().specs[0]
        # Orders of magnitude more CPU than ordinary functions (§3.2).
        assert morph.specs[0].profile.cpu_minstr.median > \
            1000 * ordinary.profile.cpu_minstr.median

    def test_table2_rows_structure(self):
        rows = table2_rows(samples_per_spec=100)
        assert len(rows) == 5
        for name, cpu_lo, cpu_hi, mem_lo, mem_hi, exec_lo, exec_hi in rows:
            assert cpu_lo < cpu_hi
            assert mem_lo < mem_hi
            assert exec_lo < exec_hi

    def test_morphing_ranges_dominate_falco(self):
        rows = {r[0]: r for r in table2_rows(samples_per_spec=150)}
        assert rows["morphing-framework"][1] > rows["falco"][2]
