"""Tests for the conventional-FaaS baselines (Figure 1, Wang et al.)."""

import math

import pytest

from repro.baselines import (
    BASELINE_STEPS,
    ContainerPool,
    ContainerPoolParams,
    baseline_model,
    xfaas_model,
)
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile


def profile(cpu=100.0, exec_s=1.0):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.0),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.0),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.0))


class TestLifecycleModel:
    def test_baseline_pays_all_overheads(self):
        b = baseline_model().breakdown(execute_s=1.0, cold=True)
        assert b.startup_overhead_s > 3.0
        assert b.idle_overhead_s == 600.0
        assert b.billable_fraction < 0.01

    def test_baseline_warm_is_free(self):
        b = baseline_model().breakdown(execute_s=1.0, cold=False)
        assert b.startup_overhead_s == 0.0
        assert b.billable_fraction == 1.0

    def test_xfaas_eliminates_steps(self):
        # §1.2: steps (1)–(5), (9), (10) gone; (6)–(7) gone for
        # regularly invoked functions.
        x = xfaas_model(regularly_invoked=True).breakdown(1.0, cold=True)
        assert x.startup_overhead_s == pytest.approx(0.100)
        assert x.idle_overhead_s == 0.0
        assert x.shutdown_s == 0.0
        assert x.billable_fraction > 0.9

    def test_xfaas_irregular_functions_pay_jit(self):
        x = xfaas_model(regularly_invoked=False).breakdown(1.0, cold=True)
        regular = xfaas_model(regularly_invoked=True).breakdown(1.0, cold=True)
        assert x.startup_overhead_s > regular.startup_overhead_s

    def test_overhead_ratio_baseline_vs_xfaas(self):
        base = baseline_model().breakdown(1.0, cold=True)
        xf = xfaas_model().breakdown(1.0, cold=True)
        ratio = base.startup_overhead_s / xf.startup_overhead_s
        assert ratio > 30  # seconds vs ~100 ms

    def test_step_table_covers_nine_overhead_steps(self):
        numbers = [n for n, _, _ in BASELINE_STEPS]
        assert numbers == [1, 2, 3, 4, 5, 6, 7, 9, 10]

    def test_negative_execute_rejected(self):
        with pytest.raises(ValueError):
            baseline_model().breakdown(-1.0, cold=True)


class TestContainerPool:
    def _pool(self, sim=None, **params):
        sim = sim or Simulator(seed=1)
        results = []
        pool = ContainerPool(sim, capacity_cores=64,
                             params=ContainerPoolParams(**params),
                             on_done=lambda f, r: results.append((f, r)))
        return sim, pool, results

    def test_first_call_is_cold(self):
        sim, pool, results = self._pool()
        pool.register_function(FunctionSpec(name="f", profile=profile()))
        pool.submit("f")
        sim.run_until(60.0)
        assert pool.cold_starts == 1
        assert results[0][1].cold
        assert results[0][1].startup_delay > 3.0

    def test_warm_reuse_within_keepalive(self):
        sim, pool, results = self._pool(keepalive_s=600.0)
        pool.register_function(FunctionSpec(name="f", profile=profile()))
        pool.submit("f")
        sim.run_until(60.0)
        pool.submit("f")
        sim.run_until(120.0)
        assert pool.cold_starts == 1
        assert pool.warm_starts == 1
        assert not results[1][1].cold

    def test_keepalive_expiry_causes_second_cold_start(self):
        # Wang et al. [45]: idle VMs die after the keep-alive window.
        sim, pool, results = self._pool(keepalive_s=600.0)
        pool.register_function(FunctionSpec(name="f", profile=profile()))
        pool.submit("f")
        sim.run_until(700.0)  # past keep-alive
        assert pool.live_containers("f") == 0
        pool.submit("f")
        sim.run_until(800.0)
        assert pool.cold_starts == 2

    def test_idle_memory_reserved_during_keepalive(self):
        sim, pool, _ = self._pool(keepalive_s=600.0,
                                  container_memory_mb=512.0)
        pool.register_function(FunctionSpec(name="f", profile=profile()))
        pool.submit("f")
        sim.run_until(100.0)  # finished but kept warm
        assert pool.memory_reserved_mb == 512.0

    def test_static_concurrency_limit_rejects(self):
        # §1.1: a too-low static limit causes errors under load.
        sim, pool, results = self._pool(default_concurrency_limit=2)
        pool.register_function(FunctionSpec(name="f",
                                            profile=profile(exec_s=100.0)))
        for _ in range(5):
            pool.submit("f")
        assert pool.rejections == 3
        rejected = [r for _, r in results if r.rejected]
        assert len(rejected) == 3

    def test_memory_capacity_rejects(self):
        sim = Simulator(seed=2)
        pool = ContainerPool(sim, capacity_cores=64,
                             capacity_memory_mb=1024.0,
                             params=ContainerPoolParams(
                                 container_memory_mb=512.0))
        pool.register_function(FunctionSpec(name="f",
                                            profile=profile(exec_s=100.0)))
        pool.submit("f")
        pool.submit("f")
        pool.submit("f")
        assert pool.rejections == 1

    def test_utilization_low_with_sparse_calls(self):
        # The baseline's idle keep-alive yields low CPU utilization.
        sim, pool, _ = self._pool()
        pool.register_function(FunctionSpec(name="f", profile=profile()))
        pool.submit("f")
        sim.run_until(600.0)
        assert pool.utilization() < 0.05

    def test_unregistered_function_raises(self):
        sim, pool, _ = self._pool()
        with pytest.raises(KeyError):
            pool.submit("ghost")

    def test_back_to_back_runs_identical(self):
        # Regression for the PR 2 class of bug (simlint SL001): ids used
        # to come from a module-level counter, so a second run in the
        # same process numbered containers differently from a fresh
        # process.  Two identical runs must now match exactly.
        def run():
            sim, pool, results = self._pool(sim=Simulator(seed=7))
            pool.register_function(FunctionSpec(name="f", profile=profile()))
            pool.register_function(FunctionSpec(name="g", profile=profile()))
            for _ in range(3):
                pool.submit("f")
                pool.submit("g")
            sim.run_until(60.0)
            ids = sorted(c.container_id
                         for cs in pool._containers.values() for c in cs)
            timings = [(f, r.started_at, r.finished_at, r.cold)
                       for f, r in results]
            return ids, timings

        first, second = run(), run()
        assert first == second
        # Ids restart from 1 for every pool, never a process-wide stream.
        assert first[0][0] == 1
