"""Tests for the `python -m repro` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.hours == 6.0
        assert args.rate == 4.0
        assert not args.no_time_shifting

    def test_simulate_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--hours", "2", "--no-time-shifting",
             "--regions", "3"])
        assert args.hours == 2.0
        assert args.no_time_shifting
        assert args.regions == 3

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_lifecycle_prints_tables(self, capsys):
        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "XFaaS" in out
        assert "billable" in out

    def test_growth_prints_factor(self, capsys):
        assert main(["growth", "--years", "5"]) == 0
        out = capsys.readouterr().out
        assert "52.0x" in out or "5" in out
        assert "Figure 3" in out

    def test_simulate_smoke(self, capsys):
        # A tiny run: 0.5 h, low rate, 3 regions.
        assert main(["simulate", "--hours", "0.5", "--rate", "1.5",
                     "--regions", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "received per minute" in out
        assert "FLEET MEAN" in out
        assert "completed" in out
