"""Tests for the `python -m repro` CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.hours == 6.0
        assert args.rate == 4.0
        assert not args.no_time_shifting

    def test_simulate_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--hours", "2", "--no-time-shifting",
             "--regions", "3"])
        assert args.hours == 2.0
        assert args.no_time_shifting
        assert args.regions == 3

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.runs == 4
        assert args.master_seed == 7
        assert args.workers == 1
        assert args.start_method == "spawn"
        assert args.ablate is None
        assert not args.json

    def test_sweep_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--runs", "2", "--workers", "4",
             "--ablate", "time-shifting", "--ablate", "aimd", "--json"])
        assert args.runs == 2
        assert args.workers == 4
        assert args.ablate == ["time-shifting", "aimd"]
        assert args.json

    def test_sweep_rejects_unknown_ablation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--ablate", "nonsense"])


class TestCommands:
    def test_lifecycle_prints_tables(self, capsys):
        assert main(["lifecycle"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "XFaaS" in out
        assert "billable" in out

    def test_growth_prints_factor(self, capsys):
        assert main(["growth", "--years", "5"]) == 0
        out = capsys.readouterr().out
        assert "52.0x" in out or "5" in out
        assert "Figure 3" in out

    def test_simulate_smoke(self, capsys):
        # A tiny run: 0.5 h, low rate, 3 regions.
        assert main(["simulate", "--hours", "0.5", "--rate", "1.5",
                     "--regions", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "received per minute" in out
        assert "FLEET MEAN" in out
        assert "completed" in out

    def test_simulate_json(self, capsys):
        import json
        assert main(["simulate", "--hours", "0.5", "--rate", "1.5",
                     "--regions", "3", "--seed", "1", "--json"]) == 0
        out = capsys.readouterr().out
        summary = json.loads(out)
        assert summary["config"]["hours"] == 0.5
        assert summary["submitted"] > 0
        assert summary["completed"] > 0
        assert len(summary["trace_digest"]) == 64
        assert len(summary["region_utilization"]) == 3
        assert set(summary["latency_s"]) == {"p50", "p95", "p99"}

    def test_sweep_smoke_table_and_json(self, capsys):
        import json
        argv = ["sweep", "--runs", "2", "--hours", "0.25", "--rate", "1.5",
                "--functions", "20", "--regions", "3"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "fleet_util_mean" in out
        assert main(argv + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_runs"] == 2 and report["n_failed"] == 0
        assert all(r["ok"] for r in report["runs"])
        assert "baseline" in report["aggregates"]
