"""Tests for Counter, Gauge, Distribution."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import Counter, Distribution, Gauge


class TestCounter:
    def test_bucketing(self):
        c = Counter("x", window=60.0)
        c.add(0)
        c.add(59.9)
        c.add(60.0)
        assert c.series() == [(0.0, 2.0), (60.0, 1.0)]

    def test_total(self):
        c = Counter("x")
        for t in range(5):
            c.add(t, amount=2.0)
        assert c.total == 10.0

    def test_dense_series_fills_gaps(self):
        c = Counter("x", window=10.0)
        c.add(5)
        c.add(35)
        assert c.values() == [1.0, 0.0, 0.0, 1.0]

    def test_series_window_clipping(self):
        c = Counter("x", window=10.0)
        for t in (5, 15, 25, 35):
            c.add(t)
        assert c.values(t_start=10.0, t_end=30.0) == [1.0, 1.0]

    def test_rate_series(self):
        c = Counter("x", window=10.0)
        for _ in range(20):
            c.add(3.0)
        assert c.rate_series()[0] == (0.0, 2.0)

    def test_empty_series(self):
        assert Counter("x").series() == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Counter("x", window=0)


class TestGauge:
    def test_time_average_piecewise(self):
        g = Gauge("g", initial=0.0)
        g.set(10.0, 10.0)
        # 0 for 10s, then 10 for 10s → average 5 over [0, 20].
        assert g.time_average(0.0, 20.0) == pytest.approx(5.0)

    def test_time_average_sub_interval(self):
        g = Gauge("g", initial=2.0)
        g.set(10.0, 4.0)
        assert g.time_average(5.0, 15.0) == pytest.approx(3.0)

    def test_adjust(self):
        g = Gauge("g", initial=1.0)
        g.adjust(5.0, 2.5)
        assert g.value == 3.5

    def test_time_backwards_rejected(self):
        g = Gauge("g")
        g.set(10.0, 1.0)
        with pytest.raises(ValueError):
            g.set(5.0, 2.0)

    def test_same_time_overwrites(self):
        g = Gauge("g")
        g.set(5.0, 1.0)
        g.set(5.0, 9.0)
        assert g.value == 9.0

    def test_sampled_series(self):
        g = Gauge("g", initial=0.0)
        g.set(10.0, 1.0)
        samples = g.sampled(0.0, 20.0, step=5.0)
        assert samples == [(0.0, 0.0), (5.0, 0.0), (10.0, 1.0),
                           (15.0, 1.0), (20.0, 1.0)]

    def test_max_value(self):
        g = Gauge("g", initial=1.0)
        g.set(5.0, 7.0)
        g.set(10.0, 3.0)
        assert g.max_value() == 7.0


class TestDistribution:
    def test_percentile_nearest_rank(self):
        d = Distribution("d")
        d.extend(range(1, 101))
        assert d.percentile(50) == 50
        assert d.percentile(99) == 99
        assert d.percentile(100) == 100
        assert d.percentile(0) == 1

    def test_single_sample(self):
        d = Distribution("d")
        d.add(42.0)
        for p in (0, 10, 50, 99, 100):
            assert d.percentile(p) == 42.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Distribution("d").percentile(50)

    def test_out_of_range_percentile(self):
        d = Distribution("d")
        d.add(1.0)
        with pytest.raises(ValueError):
            d.percentile(101)

    def test_mean_min_max(self):
        d = Distribution("d")
        d.extend([1.0, 2.0, 3.0])
        assert d.mean() == pytest.approx(2.0)
        assert d.min() == 1.0
        assert d.max() == 3.0

    def test_fraction_below(self):
        d = Distribution("d")
        d.extend(range(10))
        assert d.fraction_below(5) == pytest.approx(0.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=60)
    def test_percentile_is_a_sample_and_monotone(self, values, p):
        d = Distribution("d")
        d.extend(values)
        v = d.percentile(p)
        assert v in values
        assert d.percentile(0) <= v <= d.percentile(100)

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=100))
    @settings(max_examples=60)
    def test_percentiles_monotone_in_p(self, values):
        d = Distribution("d")
        d.extend(values)
        ps = [d.percentile(p) for p in (10, 25, 50, 75, 90, 99)]
        assert ps == sorted(ps)
