"""Merge/snapshot semantics across the metrics layer.

The sweep engine's correctness rests on these properties:

* array-backed types (Counter, Distribution) merge *exactly* — the
  merged object answers every query as if one stream had produced it;
* StreamingMean merges exactly (Chan et al. parallel mean/variance);
* P² sketch merges approximately — merged quantiles from shards must
  land within 5% relative error of the single-stream exact value;
* merging empties is a no-op and merging *into* an empty adopts the
  other side;
* a registry snapshot is plain data that round-trips losslessly.
"""

import math
import random

import pytest

from repro.metrics import (
    Counter,
    Distribution,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    P2Sketch,
    StreamingMean,
)


def lognormal_stream(n, seed=11):
    rng = random.Random(seed)
    return [rng.lognormvariate(1.0, 1.2) for _ in range(n)]


def exact_quantile(values, q):
    ordered = sorted(values)
    return ordered[max(0, math.ceil(q * len(ordered)) - 1)]


class TestCounterMerge:
    def test_merge_exactness_unit_amounts(self):
        rng = random.Random(3)
        whole, a, b = Counter("c"), Counter("c"), Counter("c")
        for i in range(400):
            t = rng.uniform(0, 1800)
            whole.add(t)
            (a if i % 2 else b).add(t)
        a.merge(b)
        assert a.total == whole.total
        assert a.series() == whole.series()

    def test_merge_float_amounts_within_fp_noise(self):
        rng = random.Random(4)
        whole, a, b = Counter("c"), Counter("c"), Counter("c")
        for i in range(300):
            t, amt = rng.uniform(0, 600), rng.uniform(0.1, 3.0)
            whole.add(t, amt)
            (a if i % 3 else b).add(t, amt)
        a.merge(b)
        assert a.total == pytest.approx(whole.total)
        for (ta, va), (tw, vw) in zip(a.series(), whole.series()):
            assert ta == tw and va == pytest.approx(vw)

    def test_merge_disjoint_time_ranges(self):
        early, late = Counter("c"), Counter("c")
        early.add(30.0, 2.0)
        late.add(600.0, 5.0)
        early.merge(late)
        series = dict(early.series())
        assert series[0.0] == 2.0 and series[600.0] == 5.0
        # gap buckets exist and are zero
        assert series[300.0] == 0.0

    def test_merge_empty_is_noop_and_into_empty_adopts(self):
        empty, full = Counter("c"), Counter("c")
        full.add(10.0, 3.0)
        before = full.series()
        full.merge(Counter("c"))
        assert full.series() == before
        empty.merge(full)
        assert empty.series() == before and empty.total == 3.0

    def test_window_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Counter("a", 60.0).merge(Counter("a", 30.0))

    def test_snapshot_roundtrip(self):
        c = Counter("c")
        c.add(59.0, 2.0)
        c.add(1000.0)
        restored = Counter.from_snapshot(c.snapshot())
        assert restored.series() == c.series()
        assert restored.total == c.total


class TestDistributionMerge:
    def test_merged_percentiles_equal_single_stream(self):
        vals = lognormal_stream(2000)
        whole = Distribution("d")
        shards = [Distribution("d") for _ in range(4)]
        for i, v in enumerate(vals):
            whole.add(v)
            shards[i % 4].add(v)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert len(merged) == len(whole)
        for p in (0, 10, 50, 90, 95, 99, 100):
            assert merged.percentile(p) == whole.percentile(p)
        assert merged.mean() == pytest.approx(whole.mean())

    def test_merge_empty_edges(self):
        empty, full = Distribution("d"), Distribution("d")
        full.add(1.0)
        full.merge(Distribution("d"))
        assert len(full) == 1
        empty.merge(full)
        assert empty.percentile(50) == 1.0
        both = Distribution("d")
        both.merge(Distribution("d"))
        assert len(both) == 0
        with pytest.raises(ValueError):
            both.percentile(50)

    def test_snapshot_roundtrip(self):
        d = Distribution("d")
        for v in (3.0, 1.0, 2.0):
            d.add(v)
        restored = Distribution.from_snapshot(d.snapshot())
        assert restored.percentile(50) == d.percentile(50)
        assert len(restored) == 3


class TestGaugeMerge:
    def test_levels_sum_over_union_of_breakpoints(self):
        a, b = Gauge("g", 1.0), Gauge("g", 2.0)
        a.set(10.0, 3.0)
        b.set(5.0, 4.0)
        b.set(15.0, 1.0)
        a.merge(b)
        assert a._points == [(0.0, 3.0), (5.0, 5.0), (10.0, 7.0),
                             (15.0, 4.0)]

    def test_time_average_of_merge_is_sum_of_time_averages(self):
        rng = random.Random(5)
        a, b = Gauge("g", rng.uniform(0, 5)), Gauge("g", rng.uniform(0, 5))
        t = 0.0
        for _ in range(50):
            t += rng.uniform(0.5, 10.0)
            rng.choice((a, b)).set(t, rng.uniform(0, 8))
        expected = a.time_average(0, 600) + b.time_average(0, 600)
        a.merge(b)
        assert a.time_average(0, 600) == pytest.approx(expected)

    def test_snapshot_roundtrip(self):
        g = Gauge("g", 2.5)
        g.set(7.0, 4.0)
        restored = Gauge.from_snapshot(g.snapshot())
        assert restored._points == g._points
        assert restored.value == 4.0


class TestStreamingMeanMerge:
    def test_merge_exactness(self):
        vals = lognormal_stream(1500, seed=6)
        whole, a, b = StreamingMean(), StreamingMean(), StreamingMean()
        for i, v in enumerate(vals):
            whole.add(v)
            (a if i % 3 else b).add(v)
        a.merge(b)
        assert a.count == whole.count
        assert a.mean == pytest.approx(whole.mean, rel=1e-12)
        assert a.variance == pytest.approx(whole.variance, rel=1e-9)

    def test_merge_empty_edges(self):
        full = StreamingMean()
        full.add(2.0)
        full.add(4.0)
        full.merge(StreamingMean())
        assert full.count == 2 and full.mean == 3.0
        adopted = StreamingMean()
        adopted.merge(full)
        assert adopted.count == 2 and adopted.mean == 3.0


class TestP2Merge:
    def test_merged_sketch_quantiles_within_5pct_of_single_stream(self):
        vals = lognormal_stream(4000, seed=7)
        single = P2Sketch((0.5, 0.95, 0.99))
        shards = [P2Sketch((0.5, 0.95, 0.99)) for _ in range(4)]
        for i, v in enumerate(vals):
            single.add(v)
            shards[i % 4].add(v)
        merged = shards[0]
        for shard in shards[1:]:
            merged.merge(shard)
        assert merged.count == len(vals)
        for q in (0.5, 0.95, 0.99):
            # Merging must not add more than 5% on top of what a single
            # stream would estimate (the acceptance bar) ...
            assert merged.quantile(q) == pytest.approx(
                single.quantile(q), rel=0.05)
        for q in (0.5, 0.95):
            # ... and away from the extreme tail it also stays within 5%
            # of the exact nearest-rank value.
            assert merged.quantile(q) == pytest.approx(
                exact_quantile(vals, q), rel=0.05)
        assert merged.min == min(vals) and merged.max == max(vals)
        assert merged.mean == pytest.approx(
            sum(vals) / len(vals), rel=1e-9)

    def test_merge_uninitialized_sides(self):
        # <5 samples on one side: raw samples replay into the other.
        big, tiny = P2Quantile(0.5), P2Quantile(0.5)
        vals = lognormal_stream(500, seed=8)
        for v in vals:
            big.add(v)
        tiny.add(42.0)
        tiny.add(7.0)
        n_before = big.count
        big.merge(tiny)
        assert big.count == n_before + 2
        # And the mirror: uninitialized adopts the initialized state.
        tiny2 = P2Quantile(0.5)
        tiny2.add(3.0)
        tiny2.merge(big)
        assert tiny2.count == big.count + 1
        # One extra sample cannot move the adopted estimate materially.
        assert tiny2.value == pytest.approx(big.value, rel=0.05)

    def test_merge_empty_is_noop(self):
        est = P2Quantile(0.9)
        for v in lognormal_stream(100, seed=9):
            est.add(v)
        before = est.value
        est.merge(P2Quantile(0.9))
        assert est.value == before
        empty = P2Quantile(0.9)
        empty.merge(P2Quantile(0.9))
        with pytest.raises(ValueError):
            _ = empty.value

    def test_quantile_mismatch_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).merge(P2Quantile(0.9))
        with pytest.raises(ValueError):
            P2Sketch((0.5,)).merge(P2Sketch((0.9,)))

    def test_sketch_snapshot_roundtrip(self):
        sketch = P2Sketch((0.5, 0.99))
        for v in lognormal_stream(300, seed=10):
            sketch.add(v)
        restored = P2Sketch.from_snapshot(sketch.snapshot())
        assert restored.count == sketch.count
        assert restored.quantile(0.5) == sketch.quantile(0.5)
        assert restored.summary() == sketch.summary()


class TestRegistryMerge:
    def build(self, offset=0.0):
        reg = MetricsRegistry()
        reg.counter("calls.received").add(10.0 + offset, 3.0)
        reg.gauge("util", 0.5).set(20.0 + offset, 0.7)
        reg.distribution("latency").add(1.0 + offset)
        reg.sketch("cost").add(2.0 + offset)
        return reg

    def test_snapshot_is_plain_data_and_roundtrips(self):
        import json
        reg = self.build()
        snap = reg.snapshot()
        json.dumps(snap)  # must be JSON-serializable end to end
        restored = MetricsRegistry.from_snapshot(snap)
        assert restored.counter("calls.received").total == 3.0
        assert restored.distribution("latency").percentile(50) == 1.0
        assert restored.sketch("cost").count == 1

    def test_merge_combines_and_copies(self):
        a, b = self.build(), self.build(offset=100.0)
        b.counter("only.b").add(5.0)
        a.merge(b)
        assert a.counter("calls.received").total == 6.0
        assert len(a.distribution("latency")) == 2
        assert a.sketch("cost").count == 2
        assert a.counter("only.b").total == 1.0
        # adopted metrics are copies, not aliases
        b.counter("only.b").add(6.0)
        assert a.counter("only.b").total == 1.0

    def test_merge_accepts_raw_snapshot_dict(self):
        a = self.build()
        a.merge(self.build(offset=50.0).snapshot())
        assert a.counter("calls.received").total == 6.0
