"""Tests for table/sparkline formatting."""

from repro.metrics import format_table, series_block, sparkline
from repro.metrics.recorder import MetricsRegistry


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_large_numbers_comma_grouped(self):
        out = format_table(["n"], [[1234567.0]])
        assert "1,234,567" in out


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_rising_series_shape(self):
        s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_downsampling_to_width(self):
        s = sparkline(list(range(1000)), width=50)
        assert len(s) == 50

    def test_series_block_contains_stats(self):
        out = series_block("load", [1.0, 2.0, 4.0])
        assert "min=1" in out and "max=4" in out and "peak/trough=4.00x" in out


class TestMetricsRegistry:
    def test_counter_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_prefix_matching(self):
        reg = MetricsRegistry()
        reg.counter("region.a.x")
        reg.counter("region.b.x")
        reg.counter("other")
        assert len(list(reg.counters_matching("region."))) == 2

    def test_has_checks(self):
        reg = MetricsRegistry()
        assert not reg.has_gauge("g")
        reg.gauge("g")
        assert reg.has_gauge("g")
