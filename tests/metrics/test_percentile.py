"""Tests for streaming estimators (P², Welford)."""

import random

import pytest

from repro.metrics import P2Quantile, StreamingMean


class TestP2Quantile:
    def test_invalid_quantile(self):
        for q in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_small_sample_exact(self):
        est = P2Quantile(0.5)
        for x in [3.0, 1.0, 2.0]:
            est.add(x)
        assert est.value == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_uniform_convergence(self, q):
        rng = random.Random(1)
        est = P2Quantile(q)
        for _ in range(20000):
            est.add(rng.random())
        assert abs(est.value - q) < 0.03

    def test_median_of_normal(self):
        rng = random.Random(2)
        est = P2Quantile(0.5)
        for _ in range(10000):
            est.add(rng.gauss(10.0, 3.0))
        assert abs(est.value - 10.0) < 0.3

    def test_monotone_input(self):
        est = P2Quantile(0.5)
        for x in range(1, 1001):
            est.add(float(x))
        assert abs(est.value - 500) < 50


class TestStreamingMean:
    def test_mean(self):
        sm = StreamingMean()
        for x in [1.0, 2.0, 3.0, 4.0]:
            sm.add(x)
        assert sm.mean == pytest.approx(2.5)

    def test_variance(self):
        sm = StreamingMean()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            sm.add(x)
        assert sm.variance == pytest.approx(4.571428, rel=1e-5)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            StreamingMean().mean

    def test_single_sample_zero_variance(self):
        sm = StreamingMean()
        sm.add(5.0)
        assert sm.variance == 0.0
