"""Tests for the trigger substrates: timers, streams, warehouse, workflows."""

import math

import pytest

from repro import Simulator, XFaaS, build_topology
from repro.triggers import (
    DailySchedule,
    DataStream,
    DataWarehouse,
    IntervalSchedule,
    StreamTriggerService,
    TableSpec,
    TimerTriggerService,
    WorkflowEngine,
    WorkflowSpec,
    midnight_pipelines,
)
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile

DAY = 86_400.0


def profile(exec_s=0.2):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(20.0), sigma=0.2),
        memory_mb=LogNormal(mu=math.log(32.0), sigma=0.2),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.2))


class TestSchedules:
    def test_interval_next_fire(self):
        s = IntervalSchedule(interval_s=60.0, offset_s=10.0)
        assert s.next_fire(0.0) == 10.0
        assert s.next_fire(10.0) == 70.0
        assert s.next_fire(125.0) == 130.0

    def test_daily_next_fire(self):
        s = DailySchedule(times_of_day_s=[3600.0, 7200.0])
        assert s.next_fire(0.0) == 3600.0
        assert s.next_fire(3600.0) == 7200.0
        assert s.next_fire(8000.0) == DAY + 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalSchedule(interval_s=0.0)
        with pytest.raises(ValueError):
            DailySchedule(times_of_day_s=[])
        with pytest.raises(ValueError):
            DailySchedule(times_of_day_s=[DAY + 1])


class TestTimerTriggerService:
    def test_fires_on_interval(self):
        sim = Simulator(seed=1)
        submitted = []
        svc = TimerTriggerService(sim, submitted.append)
        svc.register("cron-job", IntervalSchedule(interval_s=100.0))
        sim.run_until(950.0)
        assert svc.fired_count == 9
        assert submitted == ["cron-job"] * 9

    def test_campaign_fan_out(self):
        sim = Simulator(seed=2)
        submitted = []
        svc = TimerTriggerService(sim, submitted.append)
        svc.register("campaign", DailySchedule([1000.0]), calls_per_fire=50)
        sim.run_until(2000.0)
        assert len(submitted) == 50

    def test_stop_at(self):
        sim = Simulator(seed=3)
        submitted = []
        svc = TimerTriggerService(sim, submitted.append)
        svc.register("j", IntervalSchedule(interval_s=10.0), stop_at=35.0)
        sim.run_until(100.0)
        assert svc.fired_count == 3  # t=10, 20, 30


class TestDataStream:
    def test_produce_consume_order(self):
        sim = Simulator()
        stream = DataStream(sim, "s", partitions=1)
        for _ in range(5):
            stream.produce(partition=0)
        events = stream.consume(0, 10)
        assert [e.offset for e in events] == [0, 1, 2, 3, 4]
        assert stream.lag() == 0

    def test_round_robin_partitioning(self):
        sim = Simulator()
        stream = DataStream(sim, "s", partitions=3)
        for _ in range(9):
            stream.produce()
        assert all(stream.lag(p) == 3 for p in range(3))

    def test_trigger_service_submits_per_event(self):
        sim = Simulator(seed=4)
        stream = DataStream(sim, "s", partitions=2)
        submitted = []
        StreamTriggerService(sim, stream, "logger", submitted.append,
                             poll_interval_s=1.0)
        task = sim.every(0.5, lambda: stream.produce())
        sim.run_until(60.0)
        task.cancel()
        sim.run_until(70.0)
        assert len(submitted) == stream.produced_count
        assert stream.lag() == 0

    def test_trigger_delay_bounded_by_poll_interval(self):
        sim = Simulator(seed=5)
        stream = DataStream(sim, "s", partitions=1)
        svc = StreamTriggerService(sim, stream, "f", lambda n: None,
                                   poll_interval_s=2.0)
        sim.every(0.25, lambda: stream.produce())
        sim.run_until(120.0)
        assert svc.trigger_delays
        assert max(svc.trigger_delays) <= 2.5


class TestDataWarehouse:
    def test_landing_fires_subscribers_per_partition(self):
        sim = Simulator(seed=6)
        wh = DataWarehouse(sim)
        wh.register_table(TableSpec(name="t", lands_at_s=1000.0,
                                    partitions=25, jitter_s=0.0))
        wh.subscribe("t", "processor")
        submitted = []
        wh.start(submitted.append, days=1)
        sim.run_until(2000.0)
        assert submitted == ["processor"] * 25
        assert len(wh.landings) == 1

    def test_multi_day_scheduling(self):
        sim = Simulator(seed=7)
        wh = DataWarehouse(sim)
        wh.register_table(TableSpec(name="t", lands_at_s=100.0,
                                    partitions=1, jitter_s=0.0))
        wh.subscribe("t", "f")
        count = []
        wh.start(lambda n: count.append(n), days=3)
        sim.run_until(3 * DAY)
        assert len(count) == 3

    def test_midnight_pipelines_cluster_near_midnight(self):
        tables = midnight_pipelines(n_tables=10, spread_s=3600.0)
        assert len(tables) == 10
        for t in tables:
            # within ±1h of midnight (wrapping)
            dist = min(t.lands_at_s, DAY - t.lands_at_s)
            assert dist <= 3600.0

    def test_duplicate_table_rejected(self):
        sim = Simulator()
        wh = DataWarehouse(sim)
        wh.register_table(TableSpec(name="t", lands_at_s=0.0))
        with pytest.raises(ValueError):
            wh.register_table(TableSpec(name="t", lands_at_s=0.0))

    def test_unknown_table_subscription(self):
        sim = Simulator()
        with pytest.raises(KeyError):
            DataWarehouse(sim).subscribe("ghost", "f")


class TestWorkflowEngine:
    def _platform(self, seed=8):
        sim = Simulator(seed=seed)
        topo = build_topology(n_regions=1, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        for name in ("extract", "transform", "load"):
            platform.register_function(
                FunctionSpec(name=name, profile=profile()))
        return sim, platform

    def test_steps_run_in_order(self):
        sim, platform = self._platform()
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(name="etl",
                                     steps=("extract", "transform", "load")))
        instance = engine.start("etl")
        sim.run_until(120.0)
        assert instance.status == "completed"
        assert instance.duration > 0
        # The steps executed sequentially: dispatch times are ordered.
        by_fn = {t.function: t for t in platform.traces.completed()}
        assert by_fn["extract"].dispatch_time < \
            by_fn["transform"].dispatch_time < by_fn["load"].dispatch_time

    def test_failed_step_aborts_workflow(self):
        sim, platform = self._platform(seed=9)
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(name="etl",
                                     steps=("extract", "transform", "load")))
        # Make every execution of "transform" fail terminally.
        from repro.core import CallOutcome
        for region, scheduler in platform.schedulers.items():
            original = scheduler.on_call_finished

            def wrapped(call, outcome, original=original):
                if call.function_name == "transform":
                    outcome = CallOutcome.ERROR
                original(call, outcome)
            for worker in platform.workers_by_region[region]:
                worker.on_finish = wrapped
        instance = engine.start("etl")
        sim.run_until(300.0)
        assert instance.status == "failed"
        assert not any(t.function == "load"
                       for t in platform.traces.completed())

    def test_many_concurrent_instances(self):
        sim, platform = self._platform(seed=10)
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(name="etl",
                                     steps=("extract", "load")))
        for _ in range(25):
            engine.start("etl")
        sim.run_until(300.0)
        assert len(engine.completed()) == 25

    def test_unknown_step_rejected(self):
        sim, platform = self._platform(seed=11)
        engine = WorkflowEngine(platform)
        with pytest.raises(KeyError):
            engine.register(WorkflowSpec(name="w", steps=("ghost",)))

    def test_unknown_workflow_rejected(self):
        sim, platform = self._platform(seed=12)
        engine = WorkflowEngine(platform)
        with pytest.raises(KeyError):
            engine.start("ghost")

    def test_back_to_back_runs_identical(self):
        # Regression for the PR 2 class of bug (simlint SL001):
        # instance ids used to come from a module-level counter, so a
        # second engine in the same process numbered instances
        # differently from a fresh process.
        def run():
            sim, platform = self._platform(seed=15)
            engine = WorkflowEngine(platform)
            engine.register(WorkflowSpec(name="etl",
                                         steps=("extract", "load")))
            for _ in range(4):
                engine.start("etl")
            sim.run_until(300.0)
            return [(i.instance_id, i.status, i.started_at, i.finished_at)
                    for i in engine.instances]

        first, second = run(), run()
        assert first == second
        assert [i for i, _, _, _ in first] == [1, 2, 3, 4]


class TestZonePropagation:
    """§4.7: labels propagate dynamically through RPC chains."""

    def _platform(self, seed=13):
        from repro import Simulator, XFaaS, build_topology
        sim = Simulator(seed=seed)
        topo = build_topology(n_regions=1, workers_per_unit=3)
        platform = XFaaS(sim, topo)
        platform.register_function(FunctionSpec(
            name="public-read", isolation_level=0, profile=profile()))
        platform.register_function(FunctionSpec(
            name="sensitive-join", isolation_level=2, profile=profile()))
        platform.register_function(FunctionSpec(
            name="public-write", isolation_level=0, profile=profile()))
        return sim, platform

    def test_level_ratchets_up_through_steps(self):
        sim, platform = self._platform()
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(
            name="up", steps=("public-read", "sensitive-join")))
        instance = engine.start("up")
        sim.run_until(120.0)
        assert instance.status == "completed"
        assert instance.data_level == 2

    def test_downward_flow_aborts_instance(self):
        # After touching level 2, data may not flow into a level-0
        # function: Bell–LaPadula denies, the workflow fails.
        sim, platform = self._platform(seed=14)
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(
            name="down", steps=("sensitive-join", "public-write")))
        instance = engine.start("down")
        sim.run_until(120.0)
        assert instance.status == "failed"
        write_traces = [t for t in platform.traces
                        if t.function == "public-write"]
        assert all(t.outcome == "isolation_denied" for t in write_traces)

    def test_propagation_disabled_allows_legacy_flows(self):
        sim, platform = self._platform(seed=15)
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(
            name="legacy", steps=("sensitive-join", "public-write"),
            propagate_zones=False))
        instance = engine.start("legacy")
        sim.run_until(120.0)
        assert instance.status == "completed"

    def test_start_level_respected(self):
        sim, platform = self._platform(seed=16)
        engine = WorkflowEngine(platform)
        engine.register(WorkflowSpec(name="w", steps=("public-write",)))
        instance = engine.start("w", source_level=3)
        sim.run_until(120.0)
        assert instance.status == "failed"
