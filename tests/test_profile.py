"""Profiler and hot-path-equivalence tests (PR 4 tentpole contract).

Three load-bearing properties:

1. Profiling is observation, not perturbation — a profiled run's trace
   digest is bit-identical to an unprofiled run of the same seed.
2. Bound metric handles are the *same objects* the lookup path returns,
   so interning a handle at component init can never change a value.
3. ``event_key`` attribution is stable for every callback shape the
   kernel schedules (bound methods, periodic tasks, lambdas, closures).
"""

from repro.metrics.recorder import MetricsRegistry
from repro.profile import ProfileRecorder, event_key
from repro.scenarios import build_dayrun

HORIZON_S = 300.0


class TestProfiledDigestParity:
    def test_profiled_run_is_bit_identical(self):
        plain = build_dayrun(horizon_s=HORIZON_S)
        recorder = ProfileRecorder()
        with recorder.installed():
            profiled = build_dayrun(horizon_s=HORIZON_S, profiler=recorder)
        assert (profiled.platform.traces.digest()
                == plain.platform.traces.digest())
        assert (profiled.sim.events_executed
                == plain.sim.events_executed)

    def test_profile_actually_attributed_time(self):
        recorder = ProfileRecorder()
        with recorder.installed():
            build_dayrun(horizon_s=HORIZON_S, profiler=recorder)
        entries = recorder.entries()
        assert entries, "profiled run produced no attribution rows"
        components = {e["component"] for e in entries}
        # The dispatch chain must be visible, not just the kernel.
        assert "Scheduler" in components
        assert "Worker" in components
        total_calls = sum(e["count"] for e in entries)
        assert total_calls > 0
        assert all(e["self_s"] >= 0.0 for e in entries)
        assert recorder.total_s > 0.0

    def test_uninstall_restores_classes(self):
        from repro.core.scheduler import Scheduler
        original = Scheduler.tick
        recorder = ProfileRecorder()
        with recorder.installed():
            assert Scheduler.tick is not original
        assert Scheduler.tick is original


class TestBoundHandles:
    def test_bound_handles_are_lookup_objects(self):
        reg = MetricsRegistry()
        assert reg.bind_counter("c") is reg.counter("c")
        assert reg.bind_gauge("g") is reg.gauge("g")
        assert reg.bind_distribution("d") is reg.distribution("d")
        assert reg.bind_sketch("s") is reg.sketch("s")

    def test_bound_counter_observes_same_values(self):
        reg = MetricsRegistry()
        bound = reg.bind_counter("calls.executed")
        bound.add(1.0, 3)
        reg.counter("calls.executed").add(2.0, 4)
        assert reg.counter("calls.executed").total == 7


def _module_level_poll():
    pass


class _Owner:
    def arm(self):
        return lambda: None


class TestEventKey:
    def test_bound_method(self):
        reg = MetricsRegistry()
        assert event_key(reg.counter) == ("MetricsRegistry", "counter")

    def test_plain_function(self):
        assert event_key(_module_level_poll) == (
            "<module>", "_module_level_poll")

    def test_lambda_attributes_to_defining_scope(self):
        comp, event = event_key(_Owner().arm())
        assert comp == "_Owner"
        assert event == "arm.<lambda>"

    def test_periodic_task_unwraps_to_callback(self):
        from repro.sim.kernel import Simulator

        class Controller:
            def tick(self):
                pass

        sim = Simulator(seed=1)
        ctrl = Controller()
        task = sim.every(5.0, ctrl.tick)
        assert event_key(task._fire) == ("Controller", "tick")
