"""Determinism regression: same-seeded mini-dayruns hash identically.

This is the safety net for every kernel optimization in this repo: the
tuple-heap event queue, the zero-delay FIFO lane, lazy arrival
streaming, and the array-backed metrics must all preserve *bit-identical*
traces for a fixed master seed.  The test runs the same miniature
platform twice (fresh object graphs, same seed) and compares a SHA-256
over every field of every call trace; a third run with a different seed
must diverge.
"""

import hashlib

from repro import PlatformParams, Simulator, XFaaS
from repro.cluster import MachineSpec, size_topology_for_utilization
from repro.core import LocalityParams, SchedulerParams
from repro.workloads import (
    ArrivalGenerator,
    ConstantRate,
    build_population,
    estimate_demand_minstr,
)

HORIZON_S = 420.0


def _run_mini_dayrun(seed: int, queue_backend=None):
    # Call ids come from the platform's own CallIdAllocator, so two
    # back-to-back runs in one process see identical ids with no reset
    # step — the property simlint rule SL001 enforces statically.
    sim = Simulator(seed=seed, queue_backend=queue_backend)
    population = build_population(n_functions=24, total_rate=6.0,
                                  opportunistic_fraction=0.5)
    for load in population.loads:
        load.shape = ConstantRate(1.0)
        load.shape_mean = 1.0
    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=0.70, n_regions=2, machine_spec=machine)
    platform = XFaaS(sim, topology, PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=500,
                                  runq_capacity=200),
        locality=LocalityParams(n_groups=2),
        memory_sample_interval_s=60.0,
        distinct_window_s=300.0))
    for spec in population.specs:
        platform.register_function(spec)
    ArrivalGenerator(sim, population,
                     lambda spec, delay: platform.submit(spec.name),
                     tick_s=10.0, stop_at=HORIZON_S)
    sim.run_until(HORIZON_S)
    return sim, platform


def _trace_hash(platform) -> str:
    h = hashlib.sha256()
    for t in platform.traces:
        h.update(repr((t.call_id, t.function, t.submit_time,
                       t.start_time_requested, t.dispatch_time, t.finish_time,
                       t.region_submitted, t.region_executed, t.worker,
                       t.outcome, t.cpu_minstr, t.memory_mb, t.exec_time_s,
                       t.attempts)).encode())
    return h.hexdigest()


class TestTraceDeterminism:
    def test_same_seed_identical_trace_hash(self):
        sim_a, platform_a = _run_mini_dayrun(seed=77)
        sim_b, platform_b = _run_mini_dayrun(seed=77)
        assert len(platform_a.traces) > 100, "mini-dayrun produced no work"
        assert _trace_hash(platform_a) == _trace_hash(platform_b)
        # Event counts and final clocks agree too, not just the traces.
        assert sim_a.events_executed == sim_b.events_executed
        assert sim_a.now == sim_b.now

    def test_different_seed_diverges(self):
        _, platform_a = _run_mini_dayrun(seed=77)
        _, platform_b = _run_mini_dayrun(seed=78)
        assert _trace_hash(platform_a) != _trace_hash(platform_b)
