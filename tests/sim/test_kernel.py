"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


class TestClockAndScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_call_after_runs_at_right_time(self):
        sim = Simulator()
        seen = []
        sim.call_after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.call_after(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)

    def test_fifo_order_at_same_time(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.call_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_priority_breaks_time_ties(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append("low"), priority=5)
        sim.call_at(1.0, lambda: seen.append("high"), priority=-5)
        sim.run()
        assert seen == ["high", "low"]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.call_after(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.call_after(2.0, lambda: seen.append(sim.now))
        sim.call_after(1.0, first)
        sim.run()
        assert seen == [3.0]


class TestRunUntil:
    def test_clock_advances_to_horizon(self):
        sim = Simulator()
        sim.run_until(100.0)
        assert sim.now == 100.0

    def test_events_beyond_horizon_not_run(self):
        sim = Simulator()
        seen = []
        sim.call_after(5.0, lambda: seen.append("early"))
        sim.call_after(50.0, lambda: seen.append("late"))
        sim.run_until(10.0)
        assert seen == ["early"]
        sim.run_until(60.0)
        assert seen == ["early", "late"]

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_stop_aborts_run(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(1)
            sim.stop()
        sim.call_after(1.0, first)
        sim.call_after(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_max_events_limit(self):
        sim = Simulator()
        seen = []
        for i in range(10):
            sim.call_after(float(i), lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [0.0, 10.0, 20.0, 30.0]

    def test_start_offset(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start=5.0)
        sim.run_until(30.0)
        assert times == [5.0, 15.0, 25.0]

    def test_cancel_stops_firing(self):
        sim = Simulator()
        times = []
        task = sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(25.0)
        task.cancel()
        sim.run_until(100.0)
        assert times == [0.0, 10.0, 20.0]

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        task_holder = {}

        def cb():
            if sim.now >= 20.0:
                task_holder["task"].cancel()
        task_holder["task"] = sim.every(10.0, cb)
        sim.run_until(100.0)
        assert task_holder["task"].fire_count == 3  # t=0, 10, 20

    def test_jitter_stays_near_interval(self):
        sim = Simulator(seed=3)
        times = []
        sim.every(10.0, lambda: times.append(sim.now), jitter=1.0)
        sim.run_until(100.0)
        assert len(times) >= 9
        for a, b in zip(times, times[1:]):
            assert 8.0 <= b - a <= 12.0

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulator(seed=seed)
            out = []
            rng = sim.rng.stream("x")

            def tick():
                out.append((sim.now, rng.random()))
            sim.every(1.0, tick)
            sim.run_until(20.0)
            return out
        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_named_streams_are_independent(self):
        sim = Simulator(seed=1)
        a1 = [sim.rng.stream("a").random() for _ in range(5)]
        sim2 = Simulator(seed=1)
        # Interleave another stream: "a" should be unaffected.
        sim2.rng.stream("b").random()
        a2 = [sim2.rng.stream("a").random() for _ in range(5)]
        assert a1 == a2
