"""Tests for Resource and Store primitives."""

import pytest

from repro.sim import Resource, Simulator, Store


class TestResource:
    def test_acquire_within_capacity_fires_immediately(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        sig = res.acquire(1)
        assert sig.fired
        assert res.in_use == 1

    def test_acquire_beyond_capacity_waits(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire(1)
        waiting = res.acquire(1)
        assert not waiting.fired
        res.release(1)
        assert waiting.fired

    def test_fifo_wakeup_order(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire(1)
        order = []
        for label in ("first", "second", "third"):
            res.acquire(1).add_waiter(lambda s, l=label: order.append(l))
        res.release(1)
        res.release(1)
        assert order == ["first", "second"]

    def test_large_request_blocks_smaller_behind_it(self):
        # FIFO means a big request at the head blocks later small ones
        # (no starvation of large requests).
        sim = Simulator()
        res = Resource(sim, capacity=4)
        res.acquire(3)
        big = res.acquire(4)
        small = res.acquire(1)
        assert not big.fired and not small.fired
        res.release(3)
        assert big.fired
        assert not small.fired

    def test_try_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        assert res.try_acquire(1)
        assert not res.try_acquire(1)
        res.release(1)
        assert res.try_acquire(1)

    def test_over_release_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release(1)

    def test_acquire_more_than_capacity_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        with pytest.raises(ValueError):
            res.acquire(3)

    def test_resize_grows_and_wakes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire(1)
        waiting = res.acquire(1)
        res.resize(2)
        assert waiting.fired

    def test_resize_shrink_does_not_evict(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        res.acquire(2)
        res.resize(1)
        assert res.in_use == 2  # existing holders keep their units
        assert res.available == -1


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        sig = store.get()
        assert sig.fired and sig.value == "a"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        sig = store.get()
        assert not sig.fired
        store.put("x")
        assert sig.fired and sig.value == "x"

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        assert [store.get().value for _ in range(3)] == [1, 2, 3]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.fired and not second.fired
        assert store.get().value == "a"
        assert second.fired
        assert store.get().value == "b"

    def test_try_put_and_try_get(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")
        assert store.try_get() == "a"
        assert store.try_get() is None

    def test_peek_does_not_remove(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        assert store.peek() == "a"
        assert len(store) == 1
