"""PeriodicTask jitter: fire counts, mid-flight cancellation, RNG stream.

The tuple-heap rewrite must not change where jitter draws come from —
each firing offset is drawn from the task's *named* RNG stream, so the
whole trace stays reproducible from the master seed.
"""

from repro.sim.kernel import Simulator


class TestJitterFireCount:
    def test_fire_count_matches_unjittered_count(self):
        # jitter is bounded by ±1 around a 10 s interval, so over a long
        # horizon the count can drift from the exact schedule by at most
        # one firing at each end.
        sim = Simulator(seed=11)
        task = sim.every(10.0, lambda: None, jitter=1.0)
        sim.run_until(1000.0)
        assert 99 <= task.fire_count <= 102

    def test_fire_count_attribute_tracks_calls(self):
        sim = Simulator(seed=11)
        calls = []
        task = sim.every(10.0, lambda: calls.append(sim.now), jitter=2.0)
        sim.run_until(200.0)
        assert task.fire_count == len(calls)

    def test_jitter_offsets_bounded(self):
        sim = Simulator(seed=5)
        times = []
        sim.every(10.0, lambda: times.append(sim.now), jitter=3.0)
        sim.run_until(500.0)
        # Next firing is scheduled at (previous base + interval) ± jitter,
        # so consecutive gaps stay within interval ± 2*jitter.
        for a, b in zip(times, times[1:]):
            assert 10.0 - 2 * 3.0 <= b - a <= 10.0 + 2 * 3.0


class TestMidFlightCancellation:
    def test_cancel_between_firings_stops_armed_event(self):
        sim = Simulator(seed=7)
        times = []
        task = sim.every(10.0, lambda: times.append(sim.now), jitter=1.0)
        sim.run_until(35.0)
        fired_before = list(times)
        task.cancel()
        # The already-armed next firing must not go off.
        before = sim.pending_events()
        sim.run_until(500.0)
        assert times == fired_before
        assert task.fire_count == len(fired_before)
        assert sim.pending_events() <= before

    def test_cancel_inside_callback_with_jitter(self):
        sim = Simulator(seed=7)
        holder = {}

        def cb():
            if sim.now >= 25.0:
                holder["task"].cancel()

        holder["task"] = sim.every(10.0, cb, jitter=1.0)
        sim.run_until(500.0)
        final = holder["task"].fire_count
        sim.run_until(1000.0)
        assert holder["task"].fire_count == final

    def test_cancelled_task_never_rearms(self):
        sim = Simulator(seed=3)
        task = sim.every(5.0, lambda: None, jitter=0.5)
        task.cancel()
        sim.run_until(100.0)
        assert task.fire_count == 0


class TestJitterRngStream:
    def test_draws_come_from_named_stream(self):
        # Replay the stream by hand: every arming (including the first)
        # draws one uniform(-j, +j) from the task's named stream and
        # fires at max(now, base + offset).  A simulator whose only
        # jitter consumer is the task must match the replay exactly.
        seed, interval, jitter, horizon = 21, 10.0, 2.0, 100.0
        sim = Simulator(seed=seed)
        times = []
        sim.every(interval, lambda: times.append(sim.now), jitter=jitter,
                  rng_stream="my-jitter")
        sim.run_until(horizon)

        replay = Simulator(seed=seed)
        stream = replay.rng.stream("my-jitter")
        expected = []
        now, base = 0.0, 0.0
        while True:
            offset = stream.uniform(-jitter, jitter)
            when = max(now, base + offset)
            if when > horizon:
                break
            expected.append(when)
            now = when
            base = when + interval
        assert times == expected

    def test_custom_stream_name_isolates_draws(self):
        # Two same-seed sims; consuming the *default* jitter stream in
        # one must not perturb a task bound to its own named stream.
        def run(burn_default: bool):
            sim = Simulator(seed=13)
            if burn_default:
                sim.rng.stream("periodic-jitter").random()
            times = []
            sim.every(10.0, lambda: times.append(sim.now), jitter=1.0,
                      rng_stream="isolated-jitter")
            sim.run_until(200.0)
            return times

        assert run(False) == run(True)

    def test_default_stream_shared_draw_order_is_deterministic(self):
        def run():
            sim = Simulator(seed=99)
            a_times, b_times = [], []
            sim.every(7.0, lambda: a_times.append(sim.now), jitter=1.0)
            sim.every(11.0, lambda: b_times.append(sim.now), jitter=1.0)
            sim.run_until(300.0)
            return a_times, b_times

        assert run() == run()
