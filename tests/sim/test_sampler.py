"""SamplerHub: coalesced periodic samplers must replay the kernel's
same-time ordering exactly — the hub is a pure event-count optimization,
never a behavior change."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.sampler import SamplerHub


def record_firings(timers, sim, specs, until):
    """Run ``specs = [(interval, start, tag), ...]`` and log firings."""
    log = []
    for interval, start, tag in specs:
        def cb(t=None, tag=tag):
            log.append((sim.now, tag))
        timers.every(interval, cb, start=start)
    sim.run_until(until)
    return log


SPECS = [
    (10.0, None, "a"),      # t=0 phase, like the platform samplers
    (10.0, None, "b"),      # shares every instant with "a"
    (5.0, None, "c"),       # shares every other instant
    (7.0, 3.0, "d"),        # offset phase, collides at t=17, 31, ...
]


class TestHubMatchesKernel:
    def test_firing_sequence_identical_to_sim_every(self):
        sim_plain = Simulator(seed=3)
        plain = record_firings(sim_plain, sim_plain, SPECS, until=200.0)

        sim_hub = Simulator(seed=3)
        hub = SamplerHub(sim_hub)
        hubbed = record_firings(hub, sim_hub, SPECS, until=200.0)

        assert hubbed == plain
        assert plain, "expected firings in the horizon"

    def test_coalescing_saves_events(self):
        sim_plain = Simulator(seed=3)
        record_firings(sim_plain, sim_plain, SPECS, until=200.0)
        plain_events = sim_plain.events_executed

        sim_hub = Simulator(seed=3)
        hub = SamplerHub(sim_hub)
        record_firings(hub, sim_hub, SPECS, until=200.0)

        assert hub.events_coalesced > 0
        assert (sim_hub.events_executed
                == plain_events - hub.events_coalesced)

    def test_cancel_mid_run_matches_kernel(self):
        def run(timers, sim):
            log = []
            tasks = {}

            def make(tag):
                def cb():
                    log.append((sim.now, tag))
                    if tag == "killer" and sim.now >= 20.0:
                        tasks["victim"].cancel()
                return cb

            tasks["victim"] = timers.every(5.0, make("victim"))
            tasks["killer"] = timers.every(10.0, make("killer"))
            sim.run_until(60.0)
            return log

        sim_plain = Simulator(seed=1)
        plain = run(sim_plain, sim_plain)
        sim_hub = Simulator(seed=1)
        hub_log = run(SamplerHub(sim_hub), sim_hub)
        assert hub_log == plain
        assert not any(t > 20.0 and tag == "victim" for t, tag in hub_log)


class TestHubApi:
    def test_rejects_nonpositive_interval(self):
        sim = Simulator(seed=0)
        hub = SamplerHub(sim)
        with pytest.raises(SimulationError):
            hub.every(0.0, lambda: None)

    def test_len_counts_live_members(self):
        sim = Simulator(seed=0)
        hub = SamplerHub(sim)
        t1 = hub.every(5.0, lambda: None)
        hub.every(7.0, lambda: None)
        assert len(hub) == 2
        t1.cancel()
        assert len(hub) == 1

    def test_start_in_past_clamps_to_now(self):
        sim = Simulator(seed=0)
        hub = SamplerHub(sim)
        fired = []
        sim.call_after(10.0, lambda: hub.every(
            5.0, lambda: fired.append(sim.now), start=0.0))
        sim.run_until(21.0)
        assert fired[0] == 10.0

    def test_fire_count_tracks_member(self):
        sim = Simulator(seed=0)
        hub = SamplerHub(sim)
        task = hub.every(4.0, lambda: None)
        sim.run_until(10.0)
        assert task.fire_count == 3  # t = 0, 4, 8
