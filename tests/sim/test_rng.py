"""Tests for named RNG streams, including property-based checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import RngRegistry, RngStream


class TestStreams:
    def test_same_name_same_stream(self):
        reg = RngRegistry(0)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_different_sequences(self):
        reg = RngRegistry(0)
        a = [reg.stream("a").random() for _ in range(10)]
        b = [reg.stream("b").random() for _ in range(10)]
        assert a != b

    def test_same_seed_reproducible(self):
        r1 = [RngRegistry(5).stream("x").random() for _ in range(3)]
        r2 = [RngRegistry(5).stream("x").random() for _ in range(3)]
        assert r1 == r2

    def test_different_master_seed_differs(self):
        r1 = RngRegistry(1).stream("x").random()
        r2 = RngRegistry(2).stream("x").random()
        assert r1 != r2

    def test_expovariate_requires_positive_rate(self):
        with pytest.raises(ValueError):
            RngStream("s", 0).expovariate(0.0)

    def test_poisson_zero_lambda(self):
        assert RngStream("s", 0).poisson(0.0) == 0

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            RngStream("s", 0).poisson(-1.0)


class TestPoissonStatistics:
    @pytest.mark.parametrize("lam", [0.5, 3.0, 40.0, 800.0])
    def test_poisson_mean_close(self, lam):
        rng = RngStream("p", 123)
        n = 4000
        samples = [rng.poisson(lam) for _ in range(n)]
        mean = sum(samples) / n
        assert abs(mean - lam) < max(0.2, 4 * (lam / n) ** 0.5 * 3)

    def test_poisson_nonnegative(self):
        rng = RngStream("p2", 7)
        assert all(rng.poisson(2.5) >= 0 for _ in range(1000))


class TestPropertyBased:
    @given(st.floats(min_value=-100, max_value=100),
           st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=50)
    def test_uniform_within_bounds(self, lo, width):
        rng = RngStream("u", 1)
        v = rng.uniform(lo, lo + width)
        assert lo <= v <= lo + width

    @given(st.integers(min_value=0, max_value=2**32),
           st.text(min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_derived_streams_deterministic(self, seed, name):
        a = RngRegistry(seed).stream(name).random()
        b = RngRegistry(seed).stream(name).random()
        assert a == b

    @given(st.lists(st.integers(), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_choice_returns_member(self, items):
        rng = RngStream("c", 2)
        assert rng.choice(items) in items

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30)
    def test_lognormal_positive(self, sigma):
        rng = RngStream("ln", 3)
        assert rng.lognormal(0.0, sigma) > 0
