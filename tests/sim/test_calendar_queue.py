"""CalendarQueue vs tuple heap: bit-identical ordering under any schedule.

The calendar backend is a pure performance knob — these tests pin the
contract that makes that true: for the *same* push/cancel sequence, both
backends pop the same entries in the same ``(time, priority, seq)``
order, including same-timestamp FIFO ties, cancelled handles, the
zero-delay lane, and across resize/compaction events.  The final class
runs a miniature full platform under both backends and compares trace
hashes — the end-to-end form of the same property.
"""

import random

import pytest

from repro.sim.calqueue import _MIN_BUCKETS, CalendarQueue
from repro.sim.events import _PURGE_MIN_CANCELLED, EventQueue
from repro.sim.kernel import (
    DEFAULT_QUEUE_BACKEND,
    QUEUE_BACKENDS,
    SimulationError,
    Simulator,
)

from ..test_determinism_trace import _run_mini_dayrun, _trace_hash


def noop():
    pass


def drain(q):
    """Pop every live entry, returning ``(time, priority, seq)`` keys."""
    out = []
    while True:
        head = q._purge_head()
        if head is None:
            assert q.pop() is None
            return out
        entry = q._pop_head()
        out.append(entry[:3])


def apply_ops(q, ops):
    """Replay a schedule: ('push', t, prio) | ('zero', now) | ('cancel', i).

    Returns handles in creation order so cancel indices line up across
    backends.
    """
    handles = []
    for op in ops:
        if op[0] == "push":
            handles.append(q.push(op[1], noop, priority=op[2]))
        elif op[0] == "zero":
            handles.append(q.push_zero(op[1], noop))
        else:
            handles[op[1]].cancel()
    return handles


def random_schedule(rng, n_events=500):
    """A randomized op sequence with ties, zero-gaps, and cancellations.

    The zero lane requires ``now`` to be monotone (the kernel clock
    guarantees it); pushes may target any future or past time.
    """
    ops = []
    now = 0.0
    n_handles = 0
    for _ in range(n_events):
        r = rng.random()
        if r < 0.55:
            # Ties are the interesting case: coarse-grained times.
            t = rng.choice([now, now + 0.0, round(now + rng.random() * 20, 1),
                            rng.choice([0.0, 1.0, 5.0, 5.0, 100.0])])
            ops.append(("push", t, rng.choice([-1, 0, 0, 0, 5])))
            n_handles += 1
        elif r < 0.8:
            ops.append(("zero", now))
            n_handles += 1
        elif n_handles:
            ops.append(("cancel", rng.randrange(n_handles)))
        if rng.random() < 0.3:
            now = round(now + rng.random() * 5, 1)
    return ops


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("trial", range(30))
    def test_identical_pop_order(self, trial):
        ops = random_schedule(random.Random(9000 + trial))
        heap, cal = EventQueue(), CalendarQueue()
        apply_ops(heap, ops)
        apply_ops(cal, ops)
        assert drain(heap) == drain(cal)

    @pytest.mark.parametrize("trial", range(10))
    def test_interleaved_pop_push(self, trial):
        # Pop mid-schedule the way the kernel does, with the clock
        # following the popped entry's time.
        rng = random.Random(7000 + trial)
        heap, cal = EventQueue(), CalendarQueue()
        hh, hc = [], []
        popped_h, popped_c = [], []
        now = 0.0
        for step in range(400):
            r = rng.random()
            if r < 0.5:
                t = now + rng.choice([0.0, 0.5, rng.random() * 30])
                prio = rng.choice([-1, 0, 0, 3])
                hh.append(heap.push(t, noop, priority=prio))
                hc.append(cal.push(t, noop, priority=prio))
            elif r < 0.6 and hh:
                i = rng.randrange(len(hh))
                hh[i].cancel()
                hc[i].cancel()
            else:
                eh = heap._purge_head()
                ec = cal._purge_head()
                assert (eh is None) == (ec is None)
                if eh is not None:
                    a, b = heap._pop_head(), cal._pop_head()
                    assert a[:3] == b[:3]
                    popped_h.append(a[:3])
                    popped_c.append(b[:3])
                    now = max(now, a[0])
        popped_h += drain(heap)
        popped_c += drain(cal)
        assert popped_h == popped_c
        assert len(popped_h) > 100

    def test_same_timestamp_fifo_within_priority(self):
        heap, cal = EventQueue(), CalendarQueue()
        ops = [("push", 5.0, p) for p in (0, 0, -1, 5, 0, -1)]
        ops += [("push", 5.0, 0)] * 10
        apply_ops(heap, ops)
        apply_ops(cal, ops)
        order = drain(cal)
        assert order == drain(heap)
        # Within a priority class, seq (push order) strictly increases.
        by_prio = {}
        for _, prio, seq in order:
            assert by_prio.get(prio, -1) < seq
            by_prio[prio] = seq

    def test_mass_cancellation_compaction_parity(self):
        heap, cal = EventQueue(), CalendarQueue()
        n = 6 * _PURGE_MIN_CANCELLED
        ops = [("push", float(i % 37), 0) for i in range(n)]
        ops += [("cancel", i) for i in range(n) if i % 4]
        apply_ops(heap, ops)
        apply_ops(cal, ops)
        assert heap.live_count() == cal.live_count()
        assert drain(heap) == drain(cal)


class TestCalendarInternals:
    def test_grow_resize_preserves_order(self):
        q = CalendarQueue()
        times = [float(i % 97) * 0.7 for i in range(1000)]
        for t in times:
            q.push(t, noop)
        assert len(q._buckets) > _MIN_BUCKETS  # ladder actually grew
        assert [e[0] for e in drain(q)] == sorted(times)

    def test_shrink_after_mass_cancel(self):
        q = CalendarQueue()
        handles = [q.push(float(i), noop) for i in range(2000)]
        nbuckets_grown = len(q._buckets)
        for h in handles[10:]:
            h.cancel()
        drained = drain(q)
        assert [seq for _, _, seq in drained] == list(range(10))
        assert len(q._buckets) < nbuckets_grown

    def test_push_behind_cursor_rewinds(self):
        q = CalendarQueue()
        q.push(50.0, noop)
        assert q._purge_head()[0] == 50.0  # cursor parked on day(50)
        q.push(1.0, noop)  # behind the cursor
        assert q._purge_head()[0] == 1.0
        assert [e[0] for e in drain(q)] == [1.0, 50.0]

    def test_sparse_times_use_direct_search(self):
        # Gaps far wider than a year of buckets force the fallback scan.
        q = CalendarQueue()
        times = [0.0, 1e6, 7e6, 3e6]
        for t in times:
            q.push(t, noop)
        assert [e[0] for e in drain(q)] == sorted(times)

    def test_len_and_live_count_match_heap_semantics(self):
        heap, cal = EventQueue(), CalendarQueue()
        ops = [("push", float(i), 0) for i in range(20)]
        ops += [("zero", 0.0)] * 3 + [("cancel", 4), ("cancel", 21)]
        apply_ops(heap, ops)
        apply_ops(cal, ops)
        assert len(cal) == len(heap)
        assert cal.live_count() == heap.live_count()

    def test_cancel_after_pop_is_harmless(self):
        q = CalendarQueue()
        h = q.push(1.0, noop)
        q.push(2.0, noop)
        assert q.pop() is h
        h.cancel()
        assert q.live_count() == 1


class TestBackendSelection:
    def test_registry_and_default(self):
        assert set(QUEUE_BACKENDS) == {"heap", "calendar"}
        assert DEFAULT_QUEUE_BACKEND in QUEUE_BACKENDS
        assert isinstance(Simulator()._queue,
                          QUEUE_BACKENDS[DEFAULT_QUEUE_BACKEND])

    def test_explicit_backends(self):
        assert type(Simulator(queue_backend="heap")._queue) is EventQueue
        assert isinstance(Simulator(queue_backend="calendar")._queue,
                          CalendarQueue)

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="calendar"):
            Simulator(queue_backend="fibheap")


class TestDayrunDigestParity:
    def test_mini_dayrun_trace_parity_across_backends(self):
        sim_h, platform_h = _run_mini_dayrun(seed=77, queue_backend="heap")
        sim_c, platform_c = _run_mini_dayrun(seed=77,
                                             queue_backend="calendar")
        assert len(platform_h.traces) > 100, "mini-dayrun produced no work"
        assert _trace_hash(platform_h) == _trace_hash(platform_c)
        assert sim_h.events_executed == sim_c.events_executed
        assert sim_h.now == sim_c.now
