"""Tests for generator processes."""

import pytest

from repro.sim import Signal, Simulator, spawn


class TestBasicProcesses:
    def test_yield_delay(self):
        sim = Simulator()
        marks = []

        def proc():
            marks.append(sim.now)
            yield 5.0
            marks.append(sim.now)
            yield 2.5
            marks.append(sim.now)
        spawn(sim, proc())
        sim.run()
        assert marks == [0.0, 5.0, 7.5]

    def test_return_value_on_done_signal(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "result"
        p = spawn(sim, proc())
        sim.run()
        assert p.done.fired
        assert p.result == "result"

    def test_yield_signal_receives_value(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(3.0, "payload")
            got.append((value, sim.now))
        spawn(sim, proc())
        sim.run()
        assert got == [("payload", 3.0)]

    def test_yield_already_fired_signal(self):
        sim = Simulator()
        sig = Signal()
        sig.fire("early")
        got = []

        def proc():
            value = yield sig
            got.append(value)
        spawn(sim, proc())
        sim.run()
        assert got == ["early"]

    def test_wait_for_child_process(self):
        sim = Simulator()

        def child():
            yield 4.0
            return 99

        def parent():
            result = yield spawn(sim, child())
            return result + 1
        p = spawn(sim, parent())
        sim.run()
        assert p.result == 100
        assert sim.now == 4.0

    def test_zero_delay_continues_same_time(self):
        sim = Simulator()
        marks = []

        def proc():
            yield 0.0
            marks.append(sim.now)
        spawn(sim, proc())
        sim.run()
        assert marks == [0.0]


class TestProcessErrors:
    def test_negative_delay_raises_in_generator(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield -1.0
            except ValueError as e:
                caught.append(str(e))
        spawn(sim, proc())
        sim.run()
        assert caught and "negative delay" in caught[0]

    def test_unsupported_effect_raises_in_generator(self):
        sim = Simulator()
        caught = []

        def proc():
            try:
                yield "not-an-effect"
            except TypeError:
                caught.append(True)
        spawn(sim, proc())
        sim.run()
        assert caught == [True]

    def test_failed_signal_propagates(self):
        sim = Simulator()
        sig = Signal()
        sim.call_after(2.0, lambda: sig.fail(RuntimeError("boom")))
        caught = []

        def proc():
            try:
                yield sig
            except RuntimeError as e:
                caught.append(str(e))
        spawn(sim, proc())
        sim.run()
        assert caught == ["boom"]


class TestKill:
    def test_killed_process_stops(self):
        sim = Simulator()
        marks = []

        def proc():
            yield 1.0
            marks.append("a")
            yield 10.0
            marks.append("b")
        p = spawn(sim, proc())
        sim.call_after(5.0, p.kill)
        sim.run()
        assert marks == ["a"]
        assert not p.alive
        assert p.done.fired

    def test_kill_idempotent(self):
        sim = Simulator()

        def proc():
            yield 10.0
        p = spawn(sim, proc())
        sim.call_after(1.0, p.kill)
        sim.call_after(2.0, p.kill)
        sim.run()
        assert not p.alive


class TestSignal:
    def test_double_fire_raises(self):
        sig = Signal()
        sig.fire(1)
        with pytest.raises(RuntimeError):
            sig.fire(2)

    def test_waiter_called_immediately_if_fired(self):
        sig = Signal()
        sig.fire("v")
        got = []
        sig.add_waiter(lambda s: got.append(s.value))
        assert got == ["v"]
