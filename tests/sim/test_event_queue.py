"""EventQueue internals: lazy deletion, purge, zero-delay lane, compaction."""

import pytest

from repro.sim.events import _PURGE_MIN_CANCELLED, EventQueue, ScheduledEvent
from repro.sim.kernel import Simulator


def noop():
    pass


class TestPurgeHead:
    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        first = q.push(1.0, noop)
        q.push(2.0, noop)
        first.cancel()
        assert q.peek_time() == 2.0

    def test_pop_skips_cancelled_runs(self):
        q = EventQueue()
        handles = [q.push(float(i), noop) for i in range(6)]
        for h in handles[::2]:
            h.cancel()
        popped = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            popped.append(ev.time)
        assert popped == [1.0, 3.0, 5.0]

    def test_purge_merges_zero_lane_before_heap(self):
        q = EventQueue()
        a = q.push(5.0, noop)           # heap: (5.0, 0, 0)
        b = q.push_zero(3.0, noop)      # zero: (3.0, 0, 1) -> runs first
        c = q.push_zero(5.0, noop)      # zero: (5.0, 0, 2) -> after a
        order = [q.pop() for _ in range(3)]
        assert order == [b, a, c]

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.peek_time() is None
        assert q.live_count() == 0

    def test_cancelled_only_queue_drains_to_none(self):
        q = EventQueue()
        h = q.push(1.0, noop)
        h.cancel()
        assert q.peek_time() is None
        assert q.pop() is None
        assert q.live_count() == 0


class TestLiveCount:
    def test_live_count_excludes_cancelled(self):
        q = EventQueue()
        handles = [q.push(float(i), noop) for i in range(5)]
        assert q.live_count() == 5
        handles[0].cancel()
        handles[3].cancel()
        assert q.live_count() == 3
        assert len(q) == 5  # raw entries still queued (lazy deletion)

    def test_pending_events_reports_live_only(self):
        sim = Simulator()
        handles = [sim.call_after(float(i + 1), noop) for i in range(4)]
        zero = sim.call_after(0.0, noop)
        assert sim.pending_events() == 5
        handles[1].cancel()
        zero.cancel()
        assert sim.pending_events() == 3

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        h = q.push(1.0, noop)
        q.push(2.0, noop)
        h.cancel()
        h.cancel()
        assert q.live_count() == 1


class TestCompaction:
    def test_mass_cancellation_compacts_heap(self):
        q = EventQueue()
        n = 4 * _PURGE_MIN_CANCELLED
        handles = [q.push(float(i), noop) for i in range(n)]
        # Cancel from the back so nothing is purged at the head.
        for h in handles[:_PURGE_MIN_CANCELLED:-1]:
            h.cancel()
        # A cancelled majority triggered at least one compaction pass,
        # so the queue holds far fewer raw entries than were pushed.
        assert q.live_count() == _PURGE_MIN_CANCELLED + 1
        assert len(q) < n // 2

    def test_order_survives_compaction(self):
        q = EventQueue()
        n = 4 * _PURGE_MIN_CANCELLED
        handles = [q.push(float(i), noop) for i in range(n)]
        keep = [h for i, h in enumerate(handles) if i % 4 == 0]
        for i, h in enumerate(handles):
            if i % 4 != 0:
                h.cancel()
        order = []
        while True:
            ev = q.pop()
            if ev is None:
                break
            order.append(ev)
        assert order == keep

    def test_small_queues_never_compact(self):
        q = EventQueue()
        handles = [q.push(float(i), noop) for i in range(10)]
        for h in handles:
            h.cancel()
        # Below the minimum there is nothing to compact away eagerly.
        assert len(q) == 10
        assert q.live_count() == 0


class TestZeroDelayFastPath:
    def test_call_after_zero_uses_fifo_lane(self):
        sim = Simulator()
        sim.call_after(0.0, noop)
        assert len(sim._queue._zero) == 1
        assert len(sim._queue._heap) == 0

    def test_nonzero_priority_bypasses_fast_path(self):
        sim = Simulator()
        sim.call_after(0.0, noop, priority=1)
        assert len(sim._queue._zero) == 0
        assert len(sim._queue._heap) == 1

    def test_zero_delay_chain_runs_in_fifo_order(self):
        sim = Simulator()
        out = []
        sim.call_after(0.0, lambda: out.append("a"))
        sim.call_after(0.0, lambda: out.append("b"))
        sim.call_at(0.0, lambda: out.append("heap"))
        sim.run_until(0.0)
        # Heap entry has an earlier seq only if pushed earlier; here the
        # two FIFO entries were pushed first, so they run first.
        assert out == ["a", "b", "heap"]

    def test_zero_delay_interleaves_with_timed_events(self):
        sim = Simulator()
        out = []

        def at_five():
            out.append(("t5", sim.now))
            sim.call_after(0.0, lambda: out.append(("cont", sim.now)))

        sim.call_at(5.0, at_five)
        sim.call_at(6.0, lambda: out.append(("t6", sim.now)))
        sim.run_until(10.0)
        assert out == [("t5", 5.0), ("cont", 5.0), ("t6", 6.0)]


class TestHandle:
    def test_handle_is_slotted(self):
        ev = ScheduledEvent(0.0, noop, None)
        assert not hasattr(ev, "__dict__")
        with pytest.raises(AttributeError):
            ev.arbitrary_attribute = 1

    def test_pop_clears_queue_backref(self):
        q = EventQueue()
        h = q.push(1.0, noop)
        assert q.pop() is h
        assert h._queue is None
        h.cancel()  # cancel after pop must not corrupt the counter
        assert q.live_count() == 0
