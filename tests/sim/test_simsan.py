"""simsan unit tests: checking proxies forward exactly, violations raise.

The two halves of the sanitizer contract:

* **parity** — every wrapped surface (RNG streams, region maps) is
  bit-identical to the unwrapped one, up to and including a full
  sanitized dayrun digest;
* **detection** — cross-shard access, out-of-order draws, and unsorted
  region-map iteration raise :class:`SanitizeError`.
"""

import pytest

from repro.sim import (
    RngRegistry,
    SanitizeError,
    SanitizedRngRegistry,
    SanitizedRngStream,
    Sanitizer,
    Simulator,
)

REGIONS = ("region-00", "region-01", "region-02")


class FakeClock:
    """A settable stand-in for the kernel clock."""

    def __init__(self, now=0.0):
        self.now = now


def make_sanitizer(now=0.0, allowed=None):
    sanitizer = Sanitizer(FakeClock(now))
    sanitizer.register_regions(REGIONS)
    if allowed is not None:
        sanitizer.restrict(allowed)
    return sanitizer


class TestStreamParity:
    """Sanitized streams must replay the exact unsanitized sequence."""

    def draws(self, stream):
        chooser = stream.weighted_chooser("xyz", [3.0, 1.0, 2.0])
        lst = [1, 2, 3, 4, 5]
        stream.shuffle(lst)
        return (
            stream.random(), stream.uniform(2.0, 5.0),
            stream.randint(1, 100), stream.expovariate(0.5),
            stream.lognormal(0.0, 1.0), stream.pareto(1.5, 2.0),
            stream.gauss(0.0, 1.0), stream.choice("abcdef"),
            tuple(stream.sample(range(50), 5)), tuple(lst),
            stream.weighted_choice("abc", [1.0, 2.0, 3.0]),
            tuple(chooser() for _ in range(10)),
            stream.poisson(4.2), stream.poisson(600.0),
        )

    def test_every_draw_method_is_bit_identical(self):
        plain = RngRegistry(123).stream("config-jitter/region-01/sched")
        sanitized = SanitizedRngRegistry(123, make_sanitizer()).stream(
            "config-jitter/region-01/sched")
        assert isinstance(sanitized, SanitizedRngStream)
        assert self.draws(plain) == self.draws(sanitized)

    def test_registry_memoizes_wrapped_streams(self):
        registry = SanitizedRngRegistry(7, make_sanitizer())
        assert registry.stream("a/b") is registry.stream("a/b")


class TestStreamChecks:
    def test_owner_parsed_from_path_segments(self):
        sanitizer = make_sanitizer()
        assert sanitizer.owner_of_stream(
            "config-jitter/region-01/sched") == "region-01"
        assert sanitizer.owner_of_stream("dq-sweep/region-02/0") == \
            "region-02"
        assert sanitizer.owner_of_stream("region-00/tao") == "region-00"
        for replicated in ("arrivals", "client-region",
                           "resources/fn-0001", "periodic-jitter"):
            assert sanitizer.owner_of_stream(replicated) is None

    def test_foreign_region_stream_draw_raises(self):
        registry = SanitizedRngRegistry(
            7, make_sanitizer(allowed=["region-00"]))
        stream = registry.stream("config-jitter/region-01/sched")
        with pytest.raises(SanitizeError, match="region-01"):
            stream.random()

    def test_owned_and_replicated_streams_draw_fine(self):
        registry = SanitizedRngRegistry(
            7, make_sanitizer(allowed=["region-00"]))
        registry.stream("config-jitter/region-00/sched").random()
        registry.stream("arrivals").random()

    def test_backwards_draw_time_raises(self):
        clock = FakeClock(10.0)
        sanitizer = Sanitizer(clock)
        registry = SanitizedRngRegistry(7, sanitizer)
        stream = registry.stream("arrivals")
        stream.random()
        clock.now = 9.0
        with pytest.raises(SanitizeError, match="out-of-order"):
            stream.random()

    def test_equal_time_redraws_are_fine(self):
        registry = SanitizedRngRegistry(7, Sanitizer(FakeClock(5.0)))
        stream = registry.stream("arrivals")
        stream.random()
        stream.random()


class TestRegionMapProxy:
    def test_foreign_key_read_write_delete_raise(self):
        proxy = make_sanitizer(allowed=["region-00"]).region_map("schedulers")
        dict.__setitem__(proxy, "region-01", "s")  # plant without checks
        with pytest.raises(SanitizeError, match="read"):
            proxy["region-01"]
        with pytest.raises(SanitizeError, match="write"):
            proxy["region-01"] = "t"
        with pytest.raises(SanitizeError, match="delete"):
            del proxy["region-01"]

    def test_owned_and_nonregion_keys_pass(self):
        proxy = make_sanitizer(allowed=["region-00"]).region_map("m")
        proxy["region-00"] = 1
        assert proxy["region-00"] == 1
        proxy["not-a-region"] = 2  # unknown names are not region keys
        assert proxy["not-a-region"] == 2

    def test_membership_and_len_are_unchecked(self):
        # Routing asks *whether* a shard hosts a region; that must not
        # raise — only touching the entry crosses the boundary.
        proxy = make_sanitizer(allowed=["region-00"]).region_map("m")
        dict.__setitem__(proxy, "region-01", "s")
        assert "region-01" in proxy
        assert len(proxy) == 1

    def test_unrestricted_sanitizer_allows_everything(self):
        proxy = make_sanitizer().region_map("m")
        proxy["region-02"] = 3
        assert proxy["region-02"] == 3

    def test_unsorted_iteration_raises(self):
        proxy = make_sanitizer().region_map("m")
        proxy["region-01"] = 1
        proxy["region-00"] = 0
        with pytest.raises(SanitizeError, match="sorted"):
            list(proxy)
        with pytest.raises(SanitizeError):
            list(proxy.items())
        with pytest.raises(SanitizeError):
            list(proxy.values())

    def test_sorted_insertion_iterates_fine(self):
        proxy = make_sanitizer().region_map("m")
        for r in sorted(REGIONS):
            proxy[r] = r
        assert list(proxy) == sorted(REGIONS)
        assert sorted(proxy.items()) == [(r, r) for r in sorted(REGIONS)]


class TestRegionGuard:
    def test_guard_scopes_and_restores(self):
        sanitizer = make_sanitizer()
        proxy = sanitizer.region_map("m")
        proxy["region-01"] = 1
        with sanitizer.region_guard(["region-00"]):
            with pytest.raises(SanitizeError):
                proxy["region-01"]
        assert proxy["region-01"] == 1  # unrestricted again

    def test_guard_restores_previous_restriction(self):
        sanitizer = make_sanitizer(allowed=["region-00"])
        with sanitizer.region_guard(REGIONS):
            assert sanitizer.allowed_regions() == frozenset(REGIONS)
        assert sanitizer.allowed_regions() == frozenset({"region-00"})


class TestSimulatorWiring:
    def test_default_has_no_sanitizer(self):
        sim = Simulator(seed=1)
        assert sim.sanitizer is None
        assert not isinstance(sim.rng, SanitizedRngRegistry)

    def test_sanitize_wires_registry_and_sanitizer(self):
        sim = Simulator(seed=1, sanitize=True)
        assert sim.sanitizer is not None
        assert isinstance(sim.rng, SanitizedRngRegistry)
        assert isinstance(sim.rng.stream("x"), SanitizedRngStream)

    def test_kernel_rng_parity(self):
        a = Simulator(seed=42).rng.stream("s")
        b = Simulator(seed=42, sanitize=True).rng.stream("s")
        assert [a.random() for _ in range(20)] == \
            [b.random() for _ in range(20)]


class TestDayrunParity:
    def test_sanitized_dayrun_digest_is_bit_identical(self):
        # The hard guarantee: a full (scaled-down) scenario under the
        # sanitizer produces the exact trace digest of the plain run.
        from repro.scenarios import build_dayrun
        kwargs = dict(horizon_s=300.0, total_rate=2.0, n_functions=12,
                      n_regions=3)
        plain = build_dayrun(**kwargs)
        sanitized = build_dayrun(sanitize=True, **kwargs)
        assert sanitized.sim.sanitizer is not None
        assert plain.platform.traces.digest() == \
            sanitized.platform.traces.digest()


class TestLeaseGuard:
    """The runtime mirror of SL014: DurableQ reports protocol events
    and the guard raises on the FSM's error transitions — injected via
    crafted handlers running inside a sanitized simulation."""

    def _queue(self):
        from repro.core import DurableQ, FunctionCall
        from repro.core.call import CallIdAllocator
        from repro.workloads import FunctionSpec

        sim = Simulator(sanitize=True)
        q = DurableQ(sim, "dq-test", "region-00")
        ids = CallIdAllocator()
        call = FunctionCall(spec=FunctionSpec(name="f"),
                            submit_time=sim.now, start_time=sim.now,
                            region_submitted="region-00",
                            call_id=ids.allocate())
        q.enqueue(call)
        return sim, q, call

    def test_double_ack_raises(self):
        sim, q, call = self._queue()

        def handler():
            [leased] = q.poll("s1", 1)
            q.ack(leased)
            q.ack(leased)

        sim.call_after(1.0, handler)
        with pytest.raises(SanitizeError, match="ACK of call .* ACKed"):
            sim.run_until(5.0)

    def test_extend_after_ack_raises(self):
        sim, q, call = self._queue()

        def handler():
            [leased] = q.poll("s1", 1)
            q.ack(leased)
            q.extend_lease(leased.call_id)

        sim.call_after(1.0, handler)
        with pytest.raises(SanitizeError, match="extend_lease of call"):
            sim.run_until(5.0)

    def test_ack_then_nack_raises(self):
        sim, q, call = self._queue()

        def handler():
            [leased] = q.poll("s1", 1)
            q.nack(leased, retry_delay_s=1.0)
            q.ack(leased)

        sim.call_after(1.0, handler)
        with pytest.raises(SanitizeError, match="ACK of call .* NACKed"):
            sim.run_until(5.0)

    def test_legal_lifecycle_is_silent(self):
        # nack -> redelivery -> second lease -> ack is the blessed
        # at-least-once path and must not trip the guard.
        sim, q, call = self._queue()
        done = []

        def first():
            [leased] = q.poll("s1", 1)
            q.extend_lease(leased.call_id)
            q.nack(leased, retry_delay_s=1.0)

        def second():
            [leased] = q.poll("s2", 1)
            q.ack(leased)
            done.append(leased.call_id)

        sim.call_after(1.0, first)
        sim.call_after(3.0, second)
        sim.run_until(5.0)
        q.stop()
        assert done == [call.call_id]

    def test_expired_lease_stays_tolerant(self):
        # Expiry forgets the call: the late ACK is a no-op (exactly
        # DurableQ's own behavior) and the re-lease + settle is legal.
        from repro.sim.simsan import LeaseGuard

        guard = LeaseGuard()
        guard.on_lease("dq", 7)
        guard.on_expire("dq", 7)
        guard.on_ack("dq", 7)        # late ack after expiry: tolerated
        guard.on_lease("dq", 7)      # redelivery to another scheduler
        guard.on_ack("dq", 7)
        with pytest.raises(SanitizeError):
            guard.on_ack("dq", 7)    # but a true double-ACK still raises

    def test_plain_run_has_no_guard(self):
        from repro.core import DurableQ

        sim = Simulator()
        q = DurableQ(sim, "dq-test", "region-00")
        assert q._lease_guard is None
