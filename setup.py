"""Setup shim so `python setup.py develop` works without the wheel package.

The offline environment lacks `wheel`, which modern `pip install -e .`
requires; metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
