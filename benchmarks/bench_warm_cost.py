"""§1 motivation — the cost of keeping rarely-invoked functions warm.

Paper quote (via Shahrad et al.): "81% of the applications are invoked
once per minute or less on average.  This suggests that the cost of
keeping these applications warm, relative to their total execution
(billable) time, can be prohibitively high."

The bench runs the same rare-function workload (81% of functions at
≤ 1 invocation/minute) through:

* the **baseline** per-function container pool (10-minute keep-alive —
  Wang et al.'s measurement of the major public platforms), and
* **XFaaS** shared universal workers.

and compares hardware cost per unit of billable work: reserved
memory-time and CPU utilization.
"""


from conftest import write_result

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.baselines import ContainerPool, ContainerPoolParams
from repro.cluster import MachineSpec
from repro.metrics import format_table
from repro.workloads import ArrivalGenerator, build_rare_population, rare_share

HORIZON_S = 2 * 3600.0


def run_baseline(population):
    sim = Simulator(seed=41)
    pool = ContainerPool(
        sim, capacity_cores=64, capacity_memory_mb=512 * 1024.0,
        params=ContainerPoolParams(keepalive_s=600.0,
                                   container_memory_mb=256.0))
    for load in population.loads:
        pool.register_function(load.spec)
    # Memory-time integral sampled each minute.
    samples = []
    sim.every(60.0, lambda: samples.append(pool.memory_reserved_mb))
    ArrivalGenerator(sim, population, lambda s, d: pool.submit(s.name),
                     tick_s=5.0, stop_at=HORIZON_S)
    sim.run_until(HORIZON_S)
    return {
        "completed": pool.completed,
        "cold_starts": pool.cold_starts,
        "mean_reserved_mb": sum(samples) / max(len(samples), 1),
        "utilization": pool.utilization(),
    }


def run_xfaas(population):
    sim = Simulator(seed=41)
    topology = build_topology(
        n_regions=1, workers_per_unit=2,
        machine_spec=MachineSpec(cores=8, core_mips=4000, threads=128))
    platform = XFaaS(sim, topology, PlatformParams(
        memory_sample_interval_s=60.0))
    for load in population.loads:
        platform.register_function(load.spec)
    ArrivalGenerator(sim, population,
                     lambda s, d: platform.submit(s.name),
                     tick_s=5.0, stop_at=HORIZON_S)
    sim.run_until(HORIZON_S)
    mem = platform.metrics.distribution("worker.memory_mb")
    workers = platform.all_workers
    util = sum(w.cpu.utilization_total(sim.now) for w in workers) / \
        len(workers)
    return {
        "completed": platform.completed_count(),
        "cold_starts": 0,  # universal worker: no cold starts by design
        "mean_reserved_mb": mem.mean() * len(workers),
        "utilization": util,
    }


def test_warm_cost(benchmark):
    population = build_rare_population(n_functions=200)
    assert abs(rare_share(population) - 0.81) < 0.02
    base, xf = benchmark.pedantic(
        lambda: (run_baseline(population), run_xfaas(population)),
        rounds=1, iterations=1)
    base_mb_per_call = base["mean_reserved_mb"] * HORIZON_S / \
        max(base["completed"], 1)
    xf_mb_per_call = xf["mean_reserved_mb"] * HORIZON_S / \
        max(xf["completed"], 1)
    table = format_table(
        ["metric", "per-function containers", "XFaaS shared workers"],
        [["calls completed", base["completed"], xf["completed"]],
         ["cold starts", base["cold_starts"], xf["cold_starts"]],
         ["mean reserved memory (MB)", f"{base['mean_reserved_mb']:.0f}",
          f"{xf['mean_reserved_mb']:.0f}"],
         ["MB·s reserved per completed call", f"{base_mb_per_call:.0f}",
          f"{xf_mb_per_call:.0f}"],
         ["memory-cost ratio", f"{base_mb_per_call / xf_mb_per_call:.1f}x",
          "1x"]],
        title="§1 — warm-keeping cost for a population with 81% of "
              "functions at <=1 invocation/min")
    write_result("warm_cost", table)

    # Both platforms complete the work, but the baseline pays cold
    # starts continuously (rare functions outlive their keep-alive)...
    assert base["completed"] >= 0.95 * xf["completed"]
    assert base["cold_starts"] > 100
    # ...and reserves substantially more memory-time per billable call.
    assert base_mb_per_call > 1.5 * xf_mb_per_call
