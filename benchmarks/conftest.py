"""Shared fixtures for the benchmark suite.

The expensive artifact is ``dayrun`` — one full simulated day on a
12-region platform under the paper-shaped workload (diurnal 4.3×
peak-to-trough with the midnight spike, Table 1 category mix, Table 3
resource shapes, a Figure 4 spiky function, reserved + opportunistic
quota mix, TAO downstream stack).  Figures 2, 4, 7, 8, 9, 10, 11 and
Tables 1/3 are all read off this single run, exactly as the paper reads
them off production.

The builder itself lives in :mod:`repro.scenarios` so the sweep engine
can run it in worker processes; this module re-exports it for the
benchmarks (``from conftest import build_dayrun`` keeps working).

Every benchmark writes the rows/series it reproduces into
``benchmarks/results/<name>.txt`` (and asserts the qualitative shape).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios import DayRun, build_dayrun

RESULTS_DIR = Path(__file__).parent / "results"


def require_label(parser, args) -> None:
    """Benchmark writers call this before appending a record.

    Committed benchmark records are provenance: an empty ``label`` makes
    a number unexplainable a PR later (what machine state? what change
    was being measured?).  Appending therefore requires a non-empty
    ``--label``; read-only ``--check`` runs are exempt because they
    write nothing.
    """
    if getattr(args, "check", False):
        return
    if not (args.label or "").strip():
        parser.error("--label is required when appending a benchmark "
                     "record (describe what this measurement is); "
                     "use --check for a no-write comparison run")


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to stdout for `pytest -s` runs.
    print(f"\n===== {name} =====\n{text}")
    return path


@pytest.fixture(scope="session")
def dayrun() -> DayRun:
    return build_dayrun()
