"""Shared fixtures for the benchmark suite.

The expensive artifact is ``dayrun`` — one full simulated day on a
12-region platform under the paper-shaped workload (diurnal 4.3×
peak-to-trough with the midnight spike, Table 1 category mix, Table 3
resource shapes, a Figure 4 spiky function, reserved + opportunistic
quota mix, TAO downstream stack).  Figures 2, 4, 7, 8, 9, 10, 11 and
Tables 1/3 are all read off this single run, exactly as the paper reads
them off production.

Every benchmark writes the rows/series it reproduces into
``benchmarks/results/<name>.txt`` (and asserts the qualitative shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro import PlatformParams, Simulator, XFaaS
from repro.cluster import MachineSpec, size_topology_for_utilization
from repro.core import LocalityParams, SchedulerParams, UtilizationParams
from repro.downstream import ServiceRegistry, build_tao_stack
from repro.workloads import (ArrivalGenerator, DiurnalRate, TriggerType,
                             attach_spike, build_population,
                             estimate_demand_minstr, figure4_spike)

DAY_S = 86_400.0
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    # Also echo to stdout for `pytest -s` runs.
    print(f"\n===== {name} =====\n{text}")
    return path


@dataclass
class DayRun:
    sim: Simulator
    platform: XFaaS
    population: object
    spiky_function: str
    horizon_s: float
    n_regions: int

    @property
    def specs_by_trigger(self):
        counts = {t.value: 0 for t in TriggerType}
        for load in self.population.loads:
            counts[load.spec.trigger.value] += 1
        return counts


def build_dayrun(seed: int = 7, total_rate: float = 8.0,
                 horizon_s: float = DAY_S,
                 params_override: PlatformParams = None) -> DayRun:
    """Build and run the shared full-day simulation."""
    sim = Simulator(seed=seed)
    diurnal = DiurnalRate(base_rate=1.0, peak_to_trough=4.3)
    population = build_population(
        n_functions=60, total_rate=total_rate,
        opportunistic_fraction=0.6, diurnal=diurnal)

    # The Figure 4 client: a scaled 20M-calls-in-15-minutes burst on one
    # queue-triggered function, placed in the morning.
    spiky_function = next(
        l.spec.name for l in population.loads
        if l.spec.trigger is TriggerType.QUEUE and l.spec.is_delay_tolerant)
    burst_calls = total_rate * 900.0  # ~15 simulated minutes of mean load
    attach_spike(population, spiky_function,
                 figure4_spike(scale=burst_calls / 20.0e6,
                               start_s=6 * 3600.0))

    machine = MachineSpec(cores=2, core_mips=500, threads=48)
    demand = estimate_demand_minstr(population, core_mips=machine.core_mips)
    topology = size_topology_for_utilization(
        demand, target_utilization=0.70, n_regions=6, machine_spec=machine)

    services = ServiceRegistry()
    build_tao_stack(sim, services, tao_capacity_rps=1.0e5,
                    wtcache_capacity_rps=1.0e5, kvstore_capacity_rps=1.0e5)

    params = params_override or PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        utilization=UtilizationParams(target_utilization=0.72),
        locality=LocalityParams(n_groups=3),
        distinct_window_s=3600.0,
        memory_sample_interval_s=120.0,
    )
    platform = XFaaS(sim, topology, params, services=services)
    for spec in population.specs:
        platform.register_function(spec)
    # The spiky client goes to the spiky submitter pool (§4.2).
    platform.register_spiky_client(
        platform.spec(spiky_function).team)

    ArrivalGenerator(sim, population,
                     lambda spec, delay: platform.submit(
                         spec.name, start_delay_s=delay),
                     tick_s=20.0, stop_at=horizon_s)
    sim.run_until(horizon_s)
    return DayRun(sim=sim, platform=platform, population=population,
                  spiky_function=spiky_function, horizon_s=horizon_s,
                  n_regions=6)


@pytest.fixture(scope="session")
def dayrun() -> DayRun:
    return build_dayrun()
