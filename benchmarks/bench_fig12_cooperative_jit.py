"""Figure 12 — restart a worker's runtime with and without cooperative JIT.

Paper experiment: a production worker restarted with seeder-supplied JIT
profiling data reaches maximum RPS in 3 minutes; restarted without it,
instrumentation-based profiling takes 21 minutes.

The reproduction drives one saturated worker: fixed-CPU calls are offered
continuously; achieved RPS per 30 s window is recorded; we measure the
time to reach 95% of max RPS after each restart.
"""

import math

from conftest import write_result

from repro.analysis import time_to_reach
from repro.cluster import MachineSpec
from repro.core import FunctionCall, Worker
from repro.core.call import CallIdAllocator
from repro.metrics import sparkline
from repro.sim import Simulator
from repro.workloads import FunctionSpec, LogNormal, ResourceProfile

WINDOW_S = 30.0


def run_restart(seeded: bool, horizon_s: float = 2100.0):
    """Restart at t=0 and measure RPS ramp on a saturated worker."""
    sim = Simulator(seed=5)
    machine = MachineSpec(cores=4, core_mips=1000, threads=64)
    worker = Worker(sim, "w", "r", machine=machine)
    spec = FunctionSpec(
        name="hot", profile=ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(100.0), sigma=0.0),
            memory_mb=LogNormal(mu=math.log(16.0), sigma=0.0),
            exec_time_s=LogNormal(mu=math.log(0.025), sigma=0.0)))
    worker.jit.restart(0.0, with_profile_data=seeded)

    completions = []
    worker.on_finish = lambda call, outcome: completions.append(sim.now)

    ids = CallIdAllocator()

    def offer():
        # Saturate: keep offering until admission refuses.
        while True:
            call = FunctionCall(spec=spec, submit_time=sim.now,
                                start_time=sim.now, region_submitted="r",
                                call_id=ids.allocate())
            if not worker.execute(call):
                break
    task = sim.every(0.1, offer)
    sim.run_until(horizon_s)
    task.cancel()

    series = []
    for w in range(int(horizon_s / WINDOW_S)):
        lo, hi = w * WINDOW_S, (w + 1) * WINDOW_S
        rps = sum(1 for t in completions if lo <= t < hi) / WINDOW_S
        series.append((lo, rps))
    return series


def test_fig12_cooperative_jit(benchmark):
    seeded, unseeded = benchmark(
        lambda: (run_restart(True), run_restart(False)))
    max_rps = max(max(v for _, v in seeded), max(v for _, v in unseeded))
    target = 0.95 * max_rps
    t_seeded = time_to_reach(seeded, target, sustain_points=2)
    t_unseeded = time_to_reach(unseeded, target, sustain_points=2)

    lines = [
        "Figure 12 — RPS ramp after runtime restart (30 s windows)",
        "  with seeder JIT data:    " +
        sparkline([v for _, v in seeded]),
        "  without (self-profiling): " +
        sparkline([v for _, v in unseeded]),
        f"  time to max RPS with profile data:    {t_seeded / 60:.1f} min "
        "(paper: 3 min)",
        f"  time to max RPS without profile data: {t_unseeded / 60:.1f} min "
        "(paper: 21 min)",
        f"  ratio: {t_unseeded / max(t_seeded, 1e-9):.1f}x (paper: 7x)",
    ]
    write_result("fig12_cooperative_jit", "\n".join(lines))

    # Paper shape: ~3 min vs ~21 min, a ~7x ratio.
    assert 120 <= t_seeded <= 300
    assert 1000 <= t_unseeded <= 1500
    assert 4.0 <= t_unseeded / t_seeded <= 10.0
