"""§5.3 extension — opportunistic work on harvested elastic capacity.

The paper's ongoing work: run opportunistic functions on low-cost
elastic capacity (spot-like).  The bench compares a small dedicated pool
with and without an elastic pool that is only available during the
donor's trough hours: the elastic arm completes the same opportunistic
backlog sooner, and reclaim interruptions are absorbed by the
at-least-once retry path.
"""

import math

from conftest import write_result

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.core.elastic import ElasticSchedule
from repro.metrics import format_table
from repro.workloads import FunctionSpec, LogNormal, QuotaType, ResourceProfile

HORIZON_S = 6 * 3600.0
N_CALLS = 1200


def run_arm(elastic: bool):
    sim = Simulator(seed=23)
    machine = MachineSpec(cores=2, core_mips=1000, threads=32)
    topology = build_topology(n_regions=1, workers_per_unit=2,
                              machine_spec=machine)
    platform = XFaaS(sim, topology, PlatformParams())
    region = topology.region_names[0]
    pool = None
    if elastic:
        pool = platform.add_elastic_pool(
            region, n_workers=3,
            schedule=ElasticSchedule(available_windows=(
                (0.0, 2 * 3600.0), (4 * 3600.0, 86_400.0))))
    spec = FunctionSpec(
        name="batch", quota_type=QuotaType.OPPORTUNISTIC,
        quota_minstr_per_s=1.0e6,
        profile=ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(2000.0), sigma=0.4),
            memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
            exec_time_s=LogNormal(mu=math.log(2.0), sigma=0.4)))
    platform.register_function(spec)
    # Burst: the whole batch lands up front (a Fig 4-style dump), so the
    # measured makespan is pure drain time, not arrival pacing.
    task = sim.every(1.0, lambda: [platform.submit("batch")
                                   for _ in range(N_CALLS // 60)])
    sim.call_after(59.5, task.cancel)
    sim.run_until(HORIZON_S)
    completed = platform.traces.completed()
    finish_times = sorted(t.finish_time for t in completed)
    makespan = finish_times[int(0.95 * len(finish_times))] \
        if finish_times else float("inf")
    return {
        "completed": len(completed),
        "p95_done_at_s": makespan,
        "reclaims": pool.reclaims if pool else 0,
        "retried": sum(1 for t in completed if t.attempts > 1),
    }


def test_elastic_capacity(benchmark):
    with_elastic, without = benchmark.pedantic(
        lambda: (run_arm(True), run_arm(False)), rounds=1, iterations=1)
    table = format_table(
        ["metric", "with elastic", "dedicated only"],
        [["opportunistic calls completed", with_elastic["completed"],
          without["completed"]],
         ["95% of work done by (h)",
          f"{with_elastic['p95_done_at_s'] / 3600:.2f}",
          f"{without['p95_done_at_s'] / 3600:.2f}"],
         ["elastic reclaim events", with_elastic["reclaims"], "-"],
         ["calls needing retries", with_elastic["retried"],
          without["retried"]]],
        title="§5.3 extension — harvested elastic capacity for "
              "opportunistic work")
    write_result("elastic_capacity", table)

    # Elastic capacity finishes the backlog substantially sooner.
    assert with_elastic["completed"] >= without["completed"]
    assert with_elastic["p95_done_at_s"] < without["p95_done_at_s"] * 0.8
    # Reclaim happened and the retry path survived it.
    assert with_elastic["reclaims"] > 0
