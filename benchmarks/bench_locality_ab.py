"""§5.2 A/B — locality groups reduce worker memory consumption.

Paper experiment: one region's workers were split into two partitions,
with and without locality groups, receiving the same randomly-split
production traffic for two weeks; the locality partition used 11.8%
(P50) / 11.4% (P95) less memory.

The reproduction runs the same mixed workload (including Morphing-style
ephemeral memory hogs) on two identical platforms differing only in the
locality flag and compares worker memory distributions.
"""


from conftest import write_result

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.core import LocalityParams, WorkerParams
from repro.metrics import format_table
from repro.workloads import (
    ArrivalGenerator,
    ConstantRate,
    all_examples,
    build_population,
)

HORIZON_S = 3 * 3600.0


def run_arm(enabled: bool):
    sim = Simulator(seed=31)
    topology = build_topology(
        n_regions=2, workers_per_unit=6,
        machine_spec=MachineSpec(cores=4, core_mips=2000, threads=64))
    params = PlatformParams(
        locality_groups=enabled,
        locality=LocalityParams(n_groups=2, rebalance_interval_s=120.0),
        # Resident footprint per function stands in for HHVM's JIT code
        # + warm caches, which in production are GBs per worker — the
        # quantity the §5.2 A/B actually saves.
        worker=WorkerParams(resident_multiplier=10.0,
                            resident_budget_mb=40 * 1024.0),
        memory_sample_interval_s=60.0,
        distinct_window_s=1800.0)
    platform = XFaaS(sim, topology, params)
    pop = build_population(n_functions=60, total_rate=10.0,
                           opportunistic_fraction=0.0)
    for load in pop.loads:
        load.shape = ConstantRate(1.0)
        load.shape_mean = 1.0
    for spec in pop.specs:
        platform.register_function(spec)
    for example in all_examples():
        if example.name == "morphing-framework":
            for spec in example.specs:
                platform.register_function(spec)
    ArrivalGenerator(sim, pop, lambda s, d: platform.submit(s.name),
                     tick_s=10.0, stop_at=HORIZON_S)
    morph = [f for f in platform.functions() if f.startswith("morphing")]
    sim.every(60.0, lambda: platform.submit(
        sim.rng.stream("morph-pick").choice(morph)))
    sim.run_until(HORIZON_S)
    mem = platform.metrics.distribution("worker.memory_mb")
    distinct = platform.metrics.distribution(
        "worker.distinct_functions_per_window")
    return {
        "mem_p50": mem.percentile(50),
        "mem_p95": mem.percentile(95),
        "distinct_p50": int(distinct.percentile(50)),
        "completed": platform.completed_count(),
    }


def test_locality_ab(benchmark):
    with_groups, without = benchmark.pedantic(
        lambda: (run_arm(True), run_arm(False)), rounds=1, iterations=1)
    saving_p50 = 100.0 * (1 - with_groups["mem_p50"] / without["mem_p50"])
    saving_p95 = 100.0 * (1 - with_groups["mem_p95"] / without["mem_p95"])
    table = format_table(
        ["metric", "with locality", "without", "saving"],
        [["worker memory P50 (MB)", f"{with_groups['mem_p50']:.0f}",
          f"{without['mem_p50']:.0f}", f"{saving_p50:.1f}% (paper 11.8%)"],
         ["worker memory P95 (MB)", f"{with_groups['mem_p95']:.0f}",
          f"{without['mem_p95']:.0f}", f"{saving_p95:.1f}% (paper 11.4%)"],
         ["distinct functions P50", with_groups["distinct_p50"],
          without["distinct_p50"], ""],
         ["calls completed", with_groups["completed"],
          without["completed"], ""]],
        title="§5.2 A/B — locality groups vs no locality groups")
    write_result("locality_ab", table)

    # Shape claims: locality reduces P50 worker memory by a meaningful
    # margin (paper: ~12%) at identical completed work, by bounding the
    # distinct-function (and therefore resident JIT/cache) set.  P95 is
    # reported but not asserted: at 5-6 workers per group, the morphing
    # hogs' placement dominates the tail either way.
    assert saving_p50 > 4.0
    assert with_groups["distinct_p50"] < without["distinct_p50"]
    ratio = with_groups["completed"] / max(without["completed"], 1)
    assert ratio > 0.9  # locality must not cost throughput
