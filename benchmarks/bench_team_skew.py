"""§6 team capacity skew — 0.4% / 2.6% of teams use 50% / 90% of capacity.

Paper claim: among thousands of teams, a single team consumes 10% of
total capacity, 0.4% of teams consume 50%, and 2.6% consume 90%.
"""

from conftest import write_result

from repro.metrics import format_table
from repro.workloads import capacity_concentration, team_weights

N_TEAMS = 2000


def compute_skew():
    weights = team_weights(N_TEAMS)
    return {
        "top_team": weights[0],
        "c50": capacity_concentration(weights, 0.5),
        "c90": capacity_concentration(weights, 0.9),
        "weights": weights,
    }


def test_team_skew(benchmark):
    skew = benchmark(compute_skew)
    table = format_table(
        ["statistic", "measured", "paper"],
        [["top team capacity share", f"{100 * skew['top_team']:.1f}%", "10%"],
         ["teams covering 50% capacity", f"{100 * skew['c50']:.2f}%", "0.4%"],
         ["teams covering 90% capacity", f"{100 * skew['c90']:.2f}%", "2.6%"]],
        title=f"§6 team skew over {N_TEAMS} teams")
    write_result("team_skew", table)

    assert abs(skew["top_team"] - 0.10) < 0.01
    assert abs(skew["c50"] - 0.004) < 0.001
    assert abs(skew["c90"] - 0.026) < 0.003
    assert abs(sum(skew["weights"]) - 1.0) < 1e-9
