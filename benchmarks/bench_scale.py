"""Fleet-scale ladder benchmark: events/sec at 1k / 10k / 100k workers.

``bench_speed`` answers "how fast is the kernel on the reference
dayrun"; this bench answers the scaling question behind the
struct-of-arrays refactor: *does per-event cost stay flat as the fleet
grows two orders of magnitude?*  Each rung builds the same workload
(:func:`repro.scenarios.build_fleetrun`) over an explicit worker count
and times fleet construction and event processing separately, so the
recorded events/sec measures steady-state dispatch, not topology setup.

Every rung runs under **both** event-queue backends (tuple heap and
calendar queue) and asserts their trace digests are bit-identical —
the backend selector is a pure performance knob, never a behavior one.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py
        # full ladder (1k, 10k, 100k), appends records
    PYTHONPATH=src python benchmarks/bench_scale.py --rungs 1000
        # subset of rungs (comma-separated worker counts)
    PYTHONPATH=src python benchmarks/bench_scale.py --rungs 1000 --check
        # CI gate: no file write; exits 1 when any (rung, backend)
        # drops more than --max-regression below its newest committed
        # record, or when the two backends' digests diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_FILE = REPO_ROOT / "BENCH_kernel.json"

sys.path.insert(0, str(BENCH_DIR))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from conftest import require_label  # noqa: E402
from bench_speed import (  # noqa: E402
    latest_baseline,
    load_records,
    provenance,
    trace_digest,
)

from repro.scenarios import build_fleetrun  # noqa: E402
from repro.sim import QUEUE_BACKENDS  # noqa: E402

DEFAULT_RUNGS = (1_000, 10_000, 100_000)
HORIZON_S = 600.0


def run_rung(n_workers: int, backend: str, label: str = "",
             repeat: int = 3) -> dict:
    """Best-of-``repeat`` measurement of one (rung, backend) cell.

    Wall-clock on a shared box is one-sided noise (contention only ever
    slows a run down), so the fastest of N repeats is the most stable
    estimator of the code's real cost.  Every repeat must produce the
    same trace digest — the runs are bit-identical by construction.
    """
    best = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        run = build_fleetrun(n_workers, horizon_s=HORIZON_S,
                             queue_backend=backend, run_sim=False)
        t1 = time.perf_counter()
        run.sim.run_until(run.horizon_s)
        wall_s = time.perf_counter() - t1
        sim, platform = run.sim, run.platform
        rec = {
            "mode": "scale",
            "label": label,
            "n_workers": n_workers,
            "backend": backend,
            "horizon_s": HORIZON_S,
            "events_executed": sim.events_executed,
            "setup_s": round(t1 - t0, 3),
            "wall_s": round(wall_s, 3),
            "events_per_sec": round(sim.events_executed / wall_s, 1),
            "n_traces": len(platform.traces),
            "trace_digest": trace_digest(platform),
            **provenance(),
        }
        if best is not None and rec["trace_digest"] != best["trace_digest"]:
            raise AssertionError(
                f"non-deterministic repeat at n={n_workers} {backend}: "
                f"{rec['trace_digest'][:12]} vs {best['trace_digest'][:12]}")
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


def scale_baseline(records: list, n_workers: int, backend: str) -> dict:
    for rec in reversed(records):
        if (rec.get("mode") == "scale"
                and rec.get("n_workers") == n_workers
                and rec.get("backend") == backend):
            return rec
    return {}


def parse_rungs(spec: str) -> list:
    rungs = sorted({int(tok) for tok in spec.split(",") if tok.strip()})
    if not rungs or any(r < 4 for r in rungs):
        raise argparse.ArgumentTypeError(
            f"--rungs needs comma-separated worker counts >= 4, got {spec!r}")
    return rungs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rungs", type=parse_rungs,
                        default=list(DEFAULT_RUNGS),
                        help="comma-separated worker counts "
                             "(default 1000,10000,100000)")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed baselines instead of "
                             "appending records; non-zero exit on excessive "
                             "regression or backend digest divergence")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional events/sec drop per "
                             "(rung, backend) in --check mode (default 0.25)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats per (rung, backend); the fastest run "
                             "is recorded (default 3)")
    parser.add_argument("--label", default="",
                        help="free-form description stored with each record")
    args = parser.parse_args(argv)
    require_label(parser, args)

    records = load_records()
    full_ref = latest_baseline(records, "full")
    failures = 0
    new_records = []

    for n_workers in args.rungs:
        by_backend = {}
        for backend in sorted(QUEUE_BACKENDS):
            rec = run_rung(n_workers, backend, args.label,
                           repeat=args.repeat)
            by_backend[backend] = rec
            print(f"[scale n={n_workers} {backend}] "
                  f"{rec['events_executed']} events in {rec['wall_s']:.2f}s "
                  f"(+{rec['setup_s']:.2f}s setup) -> "
                  f"{rec['events_per_sec']:.0f} events/sec "
                  f"(digest {rec['trace_digest'][:12]}...)")

        digests = {rec["trace_digest"] for rec in by_backend.values()}
        if len(digests) != 1:
            print(f"FAIL: backend digest divergence at n={n_workers}: "
                  + ", ".join(f"{b}={r['trace_digest'][:12]}..."
                              for b, r in sorted(by_backend.items())))
            failures += 1
        else:
            print(f"backend digest parity at n={n_workers}: identical")

        if full_ref:
            best = max(r["events_per_sec"] for r in by_backend.values())
            print(f"vs newest full-mode dayrun record "
                  f"({full_ref['events_per_sec']:.0f} events/sec): "
                  f"{best / full_ref['events_per_sec']:.2f}x")

        for backend, rec in sorted(by_backend.items()):
            baseline = scale_baseline(records, n_workers, backend)
            if baseline:
                ratio = rec["events_per_sec"] / baseline["events_per_sec"]
                same = baseline.get("trace_digest") == rec["trace_digest"]
                print(f"  {backend} baseline "
                      f"{baseline['events_per_sec']:.0f} events/sec -> "
                      f"{ratio:.2f}x, digest "
                      f"{'identical' if same else 'DIVERGED'}")
            if args.check:
                if not baseline:
                    print(f"  {backend}: no committed baseline; check passes")
                    continue
                floor = (baseline["events_per_sec"]
                         * (1.0 - args.max_regression))
                if rec["events_per_sec"] < floor:
                    print(f"FAIL: {backend} n={n_workers} "
                          f"{rec['events_per_sec']:.0f} events/sec is below "
                          f"the {floor:.0f} floor "
                          f"({args.max_regression:.0%} regression budget)")
                    failures += 1
            else:
                # Same dedup rule as bench_speed: label + bit-identical
                # digest.  The git hash is deliberately NOT part of the
                # key — a commit that doesn't change behavior would
                # otherwise re-append an identical measurement per rev.
                if (baseline
                        and baseline.get("label") == rec["label"]
                        and baseline.get("trace_digest")
                        == rec["trace_digest"]):
                    print(f"  {backend}: unchanged vs newest committed "
                          "record; not appending")
                    continue
                new_records.append(rec)

    if failures:
        return 1
    if not args.check and new_records:
        records.extend(new_records)
        BENCH_FILE.write_text(json.dumps(records, indent=1) + "\n")
        print(f"appended {len(new_records)} record(s) to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
