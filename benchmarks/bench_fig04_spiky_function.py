"""Figure 4 — a single function's 20M-calls-in-15-minutes spike, smoothed.

Paper claim: one function received almost 20 million calls within a
15-minute window; XFaaS executed them spread out over many hours
instead of attempting them at arrival rate.  (Our volume is scaled by
the bench's global scale factor; the shape is the claim.)
"""

from conftest import write_result

from repro.metrics import Counter, series_block

DAY_S = 86_400.0


def build_series(dayrun):
    spiky = dayrun.spiky_function
    received = Counter("received", window=60.0)
    executed = Counter("executed", window=60.0)
    for trace in dayrun.platform.traces:
        if trace.function != spiky:
            continue
        received.add(trace.submit_time)
        if trace.outcome == "ok" and trace.dispatch_time >= 0:
            executed.add(trace.dispatch_time)
    return received.values(0, DAY_S), executed.values(0, DAY_S)


def test_fig04_spiky_function(dayrun, benchmark):
    received, executed = benchmark(lambda: build_series(dayrun))
    total = sum(received)
    # Submission window: minutes that carry >1% of the volume.
    rx_window = [i for i, v in enumerate(received) if v > 0.01 * total]
    ex_window = [i for i, v in enumerate(executed) if v > 0.005 * total]
    rx_span = (rx_window[-1] - rx_window[0] + 1) if rx_window else 0
    ex_span = (ex_window[-1] - ex_window[0] + 1) if ex_window else 0

    out = "\n".join([
        f"spiky function: {dayrun.spiky_function}  "
        f"({total:.0f} calls, scaled from the paper's ~20M)",
        series_block("received per minute", received),
        "",
        series_block("executed per minute", executed),
        "",
        f"received concentrated in ~{rx_span} minutes "
        "(paper: 15 minutes)",
        f"executed spread over ~{ex_span} minutes",
    ])
    write_result("fig04_spiky_function", out)

    assert total > 500
    # Submissions land in a tight window (~15 min + Poisson tick edges).
    assert rx_span <= 20
    # Execution is spread over at least 3x the submission window.
    assert ex_span >= 3 * rx_span
    # Peak execution rate is well below peak arrival rate.
    assert max(executed) < max(received) * 0.5
    # All of it eventually runs (at-least-once, opportunistic deferral).
    assert sum(executed) >= 0.95 * total
