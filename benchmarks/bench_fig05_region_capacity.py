"""Figure 5 — uneven worker-pool capacity across regions.

Paper claim: due to incremental hardware acquisition, XFaaS's capacity
varies wildly across regions (roughly a 10× spread in the figure),
which is why cross-region dispatch matters.
"""

from conftest import write_result

from repro.cluster import build_topology
from repro.metrics import format_table


def build_capacity():
    topology = build_topology(n_regions=12, workers_per_unit=100)
    counts = [(r.name, r.workers_for("default")) for r in topology.regions]
    return topology, counts


def test_fig05_region_capacity(benchmark):
    topology, counts = benchmark(build_capacity)
    rows = [[name, n, "#" * max(1, n // 4)] for name, n in counts]
    table = format_table(["region", "workers", "capacity"], rows,
                         title="Figure 5 — worker pool capacity by region")
    write_result("fig05_region_capacity", table)

    sizes = [n for _, n in counts]
    # Shape: monotone-decreasing profile with ~10x spread, every region
    # non-empty.
    assert sizes == sorted(sizes, reverse=True)
    assert sizes[0] / sizes[-1] >= 8
    assert min(sizes) >= 1
    # Capacity shares sum to 1 (used by client-region weighting).
    assert abs(sum(topology.capacity_share("default").values()) - 1.0) < 1e-9
