"""§4.4 — criticality ordering under a capacity crunch / site outage.

Paper claim: FuncBuffers order by criticality first "so that important
function calls are more likely to be executed during a capacity crunch
or a site outage."

The bench loses half of one region's workers mid-run while offering 2×
the surviving capacity, split evenly across four criticality levels, and
measures each level's completion and queueing delay.
"""

import math

from conftest import write_result

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.metrics import format_table
from repro.workloads import Criticality, FunctionSpec, LogNormal, ResourceProfile

HORIZON_S = 1800.0
OUTAGE_AT_S = 300.0
PER_LEVEL_RPS = 2


def profile():
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(500.0), sigma=0.2),
        memory_mb=LogNormal(mu=math.log(32.0), sigma=0.2),
        exec_time_s=LogNormal(mu=math.log(1.0), sigma=0.2))


def run_crunch():
    sim = Simulator(seed=19)
    topology = build_topology(
        n_regions=1, workers_per_unit=4,
        machine_spec=MachineSpec(cores=2, core_mips=500, threads=16))
    platform = XFaaS(sim, topology, PlatformParams())
    levels = [Criticality.LOW, Criticality.NORMAL, Criticality.HIGH,
              Criticality.CRITICAL]
    for level in levels:
        platform.register_function(FunctionSpec(
            name=f"fn-{level.name.lower()}", criticality=level,
            quota_minstr_per_s=1.0e9, profile=profile()))
    task = sim.every(1.0, lambda: [
        platform.submit(f"fn-{level.name.lower()}")
        for level in levels for _ in range(PER_LEVEL_RPS)])
    workers = platform.workers_by_region[topology.region_names[0]]
    sim.call_at(OUTAGE_AT_S,
                lambda: [w.fail() for w in workers[:len(workers) // 2]])
    sim.run_until(HORIZON_S)
    task.cancel()

    stats = {}
    offered = int((HORIZON_S - 1) * PER_LEVEL_RPS)
    for level in levels:
        traces = [t for t in platform.traces.completed()
                  if t.function == f"fn-{level.name.lower()}"]
        delays = sorted(t.queueing_delay for t in traces)
        stats[level.name] = {
            "done": len(traces),
            "offered": offered,
            "p50_delay": delays[len(delays) // 2] if delays else float("inf"),
        }
    return stats


def test_criticality_crunch(benchmark):
    stats = benchmark.pedantic(run_crunch, rounds=1, iterations=1)
    rows = [[name, s["done"], s["offered"],
             f"{100 * s['done'] / s['offered']:.0f}%",
             f"{s['p50_delay']:.1f}"]
            for name, s in stats.items()]
    table = format_table(
        ["criticality", "completed", "offered", "survival", "P50 delay (s)"],
        rows, title="§4.4 — completions by criticality after losing half "
                    "the workers (2x overload)")
    write_result("criticality_crunch", table)

    # Survival is monotone in criticality, and the top level is near-full
    # while the bottom is heavily deferred.
    done = [stats[level]["done"]
            for level in ("LOW", "NORMAL", "HIGH", "CRITICAL")]
    assert done == sorted(done)
    assert stats["CRITICAL"]["done"] > 0.9 * stats["CRITICAL"]["offered"]
    assert stats["LOW"]["done"] < 0.7 * stats["LOW"]["offered"]
    # And the critical tier keeps low queueing delay through the outage.
    assert stats["CRITICAL"]["p50_delay"] < stats["LOW"]["p50_delay"]
