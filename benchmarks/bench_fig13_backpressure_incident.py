"""Figures 13/14 (§5.5) — back-pressure protects downstream services.

Paper incidents: (1) a buggy WTCache release degraded its KVStore path;
KVStore throttled WTCache, and XFaaS's back-pressure mechanism slowed
the calling functions until the release was fixed.  (2) AIMD cut a
function's RPS during overload and restored it automatically afterward.

The reproduction injects a KVStore capacity collapse mid-run and checks
the full loop: exceptions spike → AIMD cuts the caller's RPS →
downstream load drops → incident ends → additive increase restores
traffic, all without manual intervention.
"""

import math

from conftest import write_result

from repro import (
    FunctionSpec,
    Incident,
    IncidentInjector,
    PlatformParams,
    ServiceRegistry,
    Simulator,
    XFaaS,
    build_tao_stack,
    build_topology,
)
from repro.core import CongestionParams
from repro.metrics import series_block
from repro.workloads import LogNormal, ResourceProfile

HORIZON_S = 4800.0
INCIDENT_START = 1800.0
INCIDENT_END = 3000.0
OFFERED_RPS = 40


def run_incident():
    sim = Simulator(seed=13)
    topology = build_topology(n_regions=2, workers_per_unit=6)
    services = ServiceRegistry()
    tao, wtcache, kvstore = build_tao_stack(
        sim, services, tao_capacity_rps=5000.0,
        wtcache_capacity_rps=400.0, kvstore_capacity_rps=400.0)
    params = PlatformParams(congestion=CongestionParams(
        backpressure_threshold_per_min=60.0, adjust_window_s=30.0,
        additive_increase_rps=5.0))
    platform = XFaaS(sim, topology, params, services=services)
    spec = FunctionSpec(
        name="graph-sync", quota_minstr_per_s=1.0e6,
        profile=ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(20.0), sigma=0.3),
            memory_mb=LogNormal(mu=math.log(32.0), sigma=0.3),
            exec_time_s=LogNormal(mu=math.log(0.2), sigma=0.3)),
        downstream=(("wtcache", 3),))
    platform.register_function(spec)
    IncidentInjector(sim).inject(
        kvstore, Incident("kvstore", INCIDENT_START, INCIDENT_END,
                          degraded_factor=0.05))
    sim.every(1.0, lambda: [platform.submit("graph-sync")
                            for _ in range(OFFERED_RPS)])
    limits = []
    sim.every(60.0, lambda: limits.append(
        min(platform.congestion.rps_limit("graph-sync"), 10 * OFFERED_RPS)))
    sim.run_until(HORIZON_S)
    bp = platform.metrics.counter("backpressure.wtcache").values(0, HORIZON_S)
    executed = platform.metrics.counter("calls.executed").values(0, HORIZON_S)
    return platform, bp, executed, limits


def _mean(xs):
    return sum(xs) / max(len(xs), 1)


def test_fig13_backpressure_incident(benchmark):
    platform, bp, executed, limits = benchmark.pedantic(
        run_incident, rounds=1, iterations=1)
    m0, m1 = int(INCIDENT_START // 60), int(INCIDENT_END // 60)
    during_exec = _mean(executed[m0 + 5:m1])
    before_exec = _mean(executed[m0 - 10:m0])
    after_exec = _mean(executed[-10:])
    during_limit = min(limits[m0 + 2:m1])
    out = "\n".join([
        series_block("wtcache back-pressure exceptions / min", bp),
        "",
        series_block("function executions / min", executed),
        "",
        series_block("AIMD RPS limit (capped for display)",
                     [float(l) for l in limits]),
        "",
        f"executions/min before incident: {before_exec:.0f}",
        f"executions/min during incident: {during_exec:.0f}",
        f"executions/min after recovery:  {after_exec:.0f}",
        f"lowest AIMD limit during incident: {during_limit:.1f} RPS "
        f"(offered {OFFERED_RPS} RPS)",
        f"multiplicative decreases: {platform.congestion.decrease_count}, "
        f"additive increases: {platform.congestion.increase_count}",
    ])
    write_result("fig13_backpressure_incident", out)

    # The §5.5 loop: exceptions concentrated in the incident window...
    assert sum(bp[m0:m1 + 2]) > 0.5 * sum(bp)
    # ...AIMD engaged and cut the limit hard...
    assert platform.congestion.decrease_count >= 3
    assert during_limit < OFFERED_RPS
    # ...throttling executions during the incident...
    assert during_exec < 0.75 * before_exec
    # ...and automatic recovery afterward.
    assert after_exec > 1.3 * during_exec
    assert platform.congestion.increase_count > 0
