"""Figure 9 — distinct functions executed per worker per hour.

Paper claim: although there are tens of thousands of functions, each
worker executes only ~61 (P50) to ~113 (P95) distinct functions in an
hour — locality groups confine each worker to a stable subset, which is
what keeps JIT code and caches resident.

At bench scale the population is 60 functions over 3 locality groups, so
the claim becomes: a worker sees roughly its group's share of functions,
not the whole population.
"""

from conftest import write_result

from repro.analysis import distinct_functions_percentiles
from repro.metrics import format_table


def test_fig09_distinct_functions(dayrun, benchmark):
    p50, p95 = benchmark(lambda: distinct_functions_percentiles(
        dayrun.platform, percentiles=(50, 95)))
    n_functions = len(dayrun.platform.functions())
    n_groups = dayrun.platform.locality_optimizer.n_groups
    table = format_table(
        ["statistic", "value"],
        [["registered functions", n_functions],
         ["locality groups", n_groups],
         ["distinct functions / worker / hour P50", p50],
         ["distinct functions / worker / hour P95", p95],
         ["paper (18,377 functions)", "61 P50 / 113 P95"]],
        title="Figure 9 — distinct functions per worker per hour")
    write_result("fig09_distinct_functions", table)

    # Shape: a worker sees a subset of the population.  At simulation
    # scale (2-worker regions running near saturation) overflow spill
    # across groups is common, so the subset effect is milder than the
    # paper's 61-of-18,377; the §5.2 A/B bench isolates it cleanly.
    assert p50 < n_functions * 0.9
    assert p50 <= p95
    assert p95 <= n_functions
    # And workers do execute a meaningful variety (not 1-2 functions).
    assert p50 >= 3
