"""Parallel-runner benchmark: wall-clock speedup from region sharding.

``bench_scale`` measures single-kernel events/sec; this bench answers
the PR-7 question: *does splitting regions across worker processes buy
real wall-clock speedup without changing behavior?*  Every rung runs
the same 4-region / 10k-worker fleetrun through ``repro.parsim`` with a
different shard count and asserts the canonical trace digests are
bit-identical across all rungs — the shard count is a pure performance
knob, never a behavior one.

Speedup rungs need real cores: on a 1-CPU machine the multi-shard
rungs are skipped gracefully (the recorded ``cpu_count`` provenance
documents why no speedup claim was measured there).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py
        # all rungs (shards 1, 2, 4), appends records
    PYTHONPATH=src python benchmarks/bench_parallel.py --shard-rungs 1,2
    PYTHONPATH=src python benchmarks/bench_parallel.py --check
        # CI gate: no file write; exits 1 when the 2-shard rung's wall
        # time regresses more than --max-regression over its newest
        # committed record, or when any rung's digest diverges.
        # Skipped (exit 0) with a note on machines without 2 usable
        # CPUs.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_FILE = REPO_ROOT / "BENCH_kernel.json"

sys.path.insert(0, str(BENCH_DIR))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from conftest import require_label  # noqa: E402
from bench_speed import load_records, provenance  # noqa: E402

from repro.parsim import ParsimSpec, available_cpus, run_parsim  # noqa: E402

DEFAULT_SHARD_RUNGS = (1, 2, 4)

#: The reference workload: the bench_scale 10k rung's shape, 4 regions.
BASE_SPEC = ParsimSpec(
    scenario="fleetrun", seed=7, horizon_s=600.0, total_rate=30.0,
    n_functions=40, n_regions=4, opportunistic_fraction=0.5,
    n_workers=10_000)


def run_rung(n_shards: int, label: str = "", repeat: int = 2) -> dict:
    """Best-of-``repeat`` wall measurement of one shard-count rung.

    Contention on a shared box only ever slows a run down, so the
    fastest repeat is the most stable estimator.  Every repeat must
    produce the same canonical digest.
    """
    spec = dataclasses.replace(BASE_SPEC, n_shards=n_shards)
    best = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = run_parsim(spec)
        wall_s = time.perf_counter() - t0
        rec = {
            "mode": "parallel",
            "label": label,
            "n_shards": n_shards,
            "effective_shards": result.n_shards,
            "n_regions": spec.n_regions,
            "n_workers": spec.n_workers,
            "horizon_s": spec.horizon_s,
            "wall_s": round(wall_s, 3),
            "events_executed": result.events_executed,
            "submitted": result.submitted,
            "completed": result.completed,
            "barriers": result.barriers,
            "messages_exchanged": result.messages_exchanged,
            "trace_digest": result.digest,
            **provenance(),
        }
        if best is not None and rec["trace_digest"] != best["trace_digest"]:
            raise AssertionError(
                f"non-deterministic repeat at shards={n_shards}: "
                f"{rec['trace_digest'][:12]} vs {best['trace_digest'][:12]}")
        if best is None or rec["wall_s"] < best["wall_s"]:
            best = rec
    return best


def parallel_baseline(records: list, n_shards: int) -> dict:
    for rec in reversed(records):
        if (rec.get("mode") == "parallel"
                and rec.get("n_shards") == n_shards
                and rec.get("n_workers") == BASE_SPEC.n_workers
                and rec.get("n_regions") == BASE_SPEC.n_regions):
            return rec
    return {}


def parse_rungs(spec: str) -> list:
    rungs = sorted({int(tok) for tok in spec.split(",") if tok.strip()})
    if not rungs or any(r < 1 for r in rungs):
        raise argparse.ArgumentTypeError(
            f"--shard-rungs needs comma-separated counts >= 1, got {spec!r}")
    return rungs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shard-rungs", type=parse_rungs,
                        default=list(DEFAULT_SHARD_RUNGS),
                        help="comma-separated shard counts (default 1,2,4)")
    parser.add_argument("--check", action="store_true",
                        help="gate the 2-shard rung's wall time against its "
                             "newest committed record instead of appending")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional wall-time increase for the "
                             "2-shard rung in --check mode (default 0.25)")
    parser.add_argument("--min-speedup", type=float, default=1.8,
                        help="required serial/4-shard speedup when >= 4 "
                             "CPUs are usable (default 1.8)")
    parser.add_argument("--repeat", type=int, default=2,
                        help="repeats per rung; the fastest is kept "
                             "(default 2)")
    parser.add_argument("--label", default="",
                        help="free-form description stored with each record")
    args = parser.parse_args(argv)
    require_label(parser, args)

    usable = available_cpus()
    records = load_records()
    failures = 0
    new_records = []
    by_shards = {}

    for n_shards in args.shard_rungs:
        if n_shards > 1 and usable < 2:
            # A 1-CPU box can't demonstrate speedup; time-slicing two
            # shards on one core measures the scheduler, not the code.
            print(f"[parallel shards={n_shards}] SKIPPED: "
                  f"only {usable} usable CPU(s); speedup rungs need >= 2 "
                  "(cpu_count is recorded in every appended record)")
            continue
        rec = run_rung(n_shards, args.label, repeat=args.repeat)
        by_shards[n_shards] = rec
        line = (f"[parallel shards={n_shards}] {rec['wall_s']:.2f}s wall, "
                f"{rec['events_executed']} events, "
                f"{rec['barriers']} barriers "
                f"(digest {rec['trace_digest'][:12]}...)")
        if 1 in by_shards and n_shards != 1:
            speedup = by_shards[1]["wall_s"] / rec["wall_s"]
            line += f" -> {speedup:.2f}x vs serial"
        print(line)

    digests = {rec["trace_digest"] for rec in by_shards.values()}
    if len(digests) > 1:
        print("FAIL: shard-count digest divergence: "
              + ", ".join(f"shards={s}={r['trace_digest'][:12]}..."
                          for s, r in sorted(by_shards.items())))
        failures += 1
    elif len(by_shards) > 1:
        print(f"digest parity across {sorted(by_shards)} shards: identical")

    if 4 in by_shards and 1 in by_shards and usable >= 4:
        speedup = by_shards[1]["wall_s"] / by_shards[4]["wall_s"]
        if speedup < args.min_speedup:
            print(f"FAIL: 4-shard speedup {speedup:.2f}x is below the "
                  f"{args.min_speedup:.2f}x floor on {usable} CPUs")
            failures += 1
        else:
            print(f"OK: 4-shard speedup {speedup:.2f}x >= "
                  f"{args.min_speedup:.2f}x floor")
    elif 4 in args.shard_rungs and usable < 4:
        print(f"speedup floor not evaluated: {usable} usable CPU(s) < 4")

    if args.check:
        baseline = parallel_baseline(records, 2)
        rec = by_shards.get(2)
        if rec is None:
            print("check: 2-shard rung did not run on this machine; "
                  "check passes")
        elif not baseline:
            print("check: no committed 2-shard baseline; check passes")
        else:
            ceiling = baseline["wall_s"] * (1.0 + args.max_regression)
            if rec["wall_s"] > ceiling:
                print(f"FAIL: 2-shard wall {rec['wall_s']:.2f}s exceeds the "
                      f"{ceiling:.2f}s ceiling "
                      f"({args.max_regression:.0%} regression budget over "
                      f"{baseline['wall_s']:.2f}s)")
                failures += 1
            else:
                print(f"OK: 2-shard wall {rec['wall_s']:.2f}s within the "
                      f"{ceiling:.2f}s ceiling")
        return 1 if failures else 0

    for n_shards, rec in sorted(by_shards.items()):
        baseline = parallel_baseline(records, n_shards)
        if (baseline
                and baseline.get("label") == rec["label"]
                and baseline.get("trace_digest") == rec["trace_digest"]
                and baseline.get("cpu_count") == rec.get("cpu_count")):
            print(f"  shards={n_shards}: unchanged vs newest committed "
                  "record; not appending")
            continue
        new_records.append(rec)

    if failures:
        return 1
    if new_records:
        records.extend(new_records)
        BENCH_FILE.write_text(json.dumps(records, indent=1) + "\n")
        print(f"appended {len(new_records)} record(s) to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
