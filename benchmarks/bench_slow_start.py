"""§4.6.3 slow start — traffic growth capped at α=20% per minute.

Paper claim: with W = 1 minute, T = 100 calls, α = 20%, a function whose
offered load steps up abruptly is released to its downstream services
gradually, giving caches and autoscalers time to warm.
"""

from conftest import write_result

from repro.core import CongestionController, CongestionParams
from repro.metrics import sparkline
from repro.workloads import FunctionSpec

OFFERED_PER_MIN = 3000.0


def run_step_load(n_windows: int = 25):
    ctl = CongestionController(CongestionParams())
    ctl.register(FunctionSpec(name="stepper"))
    dispatched = []
    for window in range(n_windows):
        count = 0
        for _ in range(int(OFFERED_PER_MIN)):
            if ctl.can_dispatch("stepper", window * 60.0):
                ctl.on_dispatch("stepper")
                ctl.on_finish("stepper")
                count += 1
        dispatched.append(count)
        ctl.adjust((window + 1) * 60.0)
    return dispatched


def test_slow_start(benchmark):
    dispatched = benchmark(run_step_load)
    lines = [
        "Slow start — dispatched calls per minute under a step to "
        f"{OFFERED_PER_MIN:.0f}/min offered",
        "  " + sparkline([float(d) for d in dispatched]),
        "  windows: " + ", ".join(str(d) for d in dispatched[:12]) + " ...",
    ]
    write_result("slow_start", "\n".join(lines))

    # First window: exactly T = 100 calls.
    assert dispatched[0] == 100
    # Growth capped at 20% per window until the offered load is reached.
    for prev, cur in zip(dispatched, dispatched[1:]):
        if cur < OFFERED_PER_MIN:
            assert cur <= prev * 1.2 + 1
    # Eventually the full offered load flows.
    assert dispatched[-1] == OFFERED_PER_MIN
    # Ramp takes ~log(30)/log(1.2) ≈ 19 windows.
    first_full = next(i for i, d in enumerate(dispatched)
                      if d == OFFERED_PER_MIN)
    assert 15 <= first_full <= 22
