"""Figure 8 — worker CPU utilization over the day.

Paper claim: the utilization curve's peak-to-trough ratio is only 1.4×,
versus 4.3× for received calls — the deferral machinery converts a
spiky arrival process into near-flat hardware usage.
"""

import statistics

from conftest import write_result

from repro.analysis import fleet_utilization_series, peak_to_trough
from repro.metrics import series_block

DAY_S = 86_400.0


def test_fig08_utilization_curve(dayrun, benchmark):
    series = benchmark(lambda: fleet_utilization_series(
        dayrun.platform, 3600.0, DAY_S, step=600.0))
    values = [v for _, v in series]
    p2t = peak_to_trough(values, trim_fraction=0.02)
    out = "\n".join([
        series_block("fleet CPU utilization (10-minute samples)", values),
        "",
        f"utilization peak-to-trough: {p2t:.2f}x "
        "(paper: 1.4x, vs 4.3x received)",
        f"mean: {statistics.mean(values):.3f}",
    ])
    write_result("fig08_utilization_curve", out)

    # The defining shape claim: utilization is far flatter than the
    # 4.3x received curve.  The paper reports 1.4x; we accept < 2.5x
    # at simulation scale (integer-granular regional capacity).
    assert p2t < 2.5
    assert statistics.mean(values) > 0.4
