"""Figure 10 — a worker's memory stays stable while highly utilized.

Paper claim: worker memory consumption holds at a stable level under
full load — the locality-group-bounded resident set plus per-call live
memory never runs away, which is what makes 64 GB workers viable.
"""

import statistics

from conftest import write_result

from repro.analysis import worker_memory_series
from repro.metrics import series_block

DAY_S = 86_400.0


def test_fig10_worker_memory(dayrun, benchmark):
    series = benchmark(lambda: worker_memory_series(
        dayrun.platform, 3600.0, DAY_S, step=600.0))
    values = [v for _, v in series]
    mean_mb = statistics.mean(values)
    cv = statistics.pstdev(values) / mean_mb
    machine_mb = dayrun.platform.topology.regions[0].machine_spec.memory_mb

    out = "\n".join([
        series_block("sample worker memory (MB, 10-min samples)", values),
        "",
        f"mean {mean_mb:.0f} MB of {machine_mb:.0f} MB physical "
        f"({100 * mean_mb / machine_mb:.0f}%)",
        f"coefficient of variation: {cv:.3f} (stability claim)",
        f"max observed: {max(values):.0f} MB",
    ])
    write_result("fig10_worker_memory", out)

    # Stability: bounded variation, no monotone growth (leak shape),
    # never exceeding physical memory.
    assert cv < 0.5
    assert max(values) < machine_mb
    first_half = statistics.mean(values[: len(values) // 2])
    second_half = statistics.mean(values[len(values) // 2:])
    assert second_half < first_half * 1.5  # no runaway growth
