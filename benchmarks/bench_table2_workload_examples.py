"""Table 2 — the five §3.2 example workloads' resource ranges.

Paper claim: workloads span orders of magnitude — Falco log handlers are
tiny and sub-second; Morphing Framework transformations run for minutes
and consume orders of magnitude more CPU than ordinary functions.
"""

from conftest import write_result

from repro.metrics import format_table
from repro.workloads import table2_rows


def test_table2_workload_examples(benchmark):
    rows = benchmark(lambda: table2_rows(samples_per_spec=400))
    table = format_table(
        ["workload", "CPU lo (M instr)", "CPU hi", "mem lo (MB)", "mem hi",
         "exec lo (s)", "exec hi"],
        [[name, f"{cl:.2f}", f"{ch:.0f}", f"{ml:.0f}", f"{mh:.0f}",
          f"{el:.3f}", f"{eh:.1f}"]
         for name, cl, ch, ml, mh, el, eh in rows],
        title="Table 2 — §3.2 workload examples (P10–P90 ranges)")
    write_result("table2_workload_examples", table)

    by_name = {r[0]: r for r in rows}
    falco = by_name["falco"]
    morphing = by_name["morphing-framework"]
    # Morphing CPU exceeds Falco CPU by orders of magnitude (§3.2).
    assert morphing[1] > 1000 * falco[2]
    # Morphing runs for minutes; Falco is sub-second at the median scale.
    assert morphing[5] >= 60.0
    assert falco[5] < 1.0
    # All five workloads present.
    assert len(rows) == 5
