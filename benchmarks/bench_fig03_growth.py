"""Figure 3 — daily invocation growth: 50× over five years.

Paper claim: FaaS volume in the private cloud grew ~50× in five years,
with a sharp inflection at the end of 2022 when the Kafka-like
data-stream trigger launched.
"""

from conftest import write_result

from repro.metrics import sparkline
from repro.workloads import figure3_model


def build_series():
    model = figure3_model()
    series = model.series(days=5 * 365, step_days=30)
    return model, series


def test_fig03_growth(benchmark):
    model, series = benchmark(build_series)
    values = [v for _, v in series]
    lines = [
        "Figure 3 — normalized daily invocations over 5 years",
        "  " + sparkline(values),
        f"  growth factor over 5 years: {model.growth_factor(1825):.1f}x "
        "(paper: ~50x)",
    ]
    # Inflection: growth in the launch year vs the year before.
    year4 = model.daily_calls(4 * 365) / model.daily_calls(3 * 365)
    year5 = model.daily_calls(5 * 365) / model.daily_calls(4 * 365)
    lines.append(f"  year-4 growth {year4:.2f}x, year-5 growth {year5:.2f}x "
                 "(stream-trigger launch inflection)")
    write_result("fig03_growth", "\n".join(lines))

    assert 40 <= model.growth_factor(1825) <= 60
    assert year5 > year4 * 1.3
    assert all(b >= a for a, b in zip(values, values[1:]))
