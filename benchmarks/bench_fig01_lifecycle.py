"""Figure 1 — the function lifecycle and where its cost goes.

Paper claim: steps (1)–(7), (9), (10) are pure overhead; only step (8)
is billable.  XFaaS eliminates (1)–(5) and (9)–(10) for all functions
and (6)–(7) for regularly invoked ones (§1.2), while a conventional
platform pays seconds of startup plus ≥10 minutes of idle keep-alive
(Wang et al.).
"""


from conftest import write_result

from repro.baselines import BASELINE_STEPS, baseline_model, xfaas_model
from repro.metrics import format_table

EXECUTE_S = 1.0


def build_rows():
    base = baseline_model().breakdown(EXECUTE_S, cold=True)
    xf_regular = xfaas_model(regularly_invoked=True).breakdown(
        EXECUTE_S, cold=True)
    xf_first = xfaas_model(regularly_invoked=False).breakdown(
        EXECUTE_S, cold=True)
    rows = [
        ["conventional (cold)", base.startup_overhead_s,
         base.idle_overhead_s + base.shutdown_s,
         100.0 * base.billable_fraction],
        ["XFaaS, regularly invoked", xf_regular.startup_overhead_s,
         xf_regular.idle_overhead_s + xf_regular.shutdown_s,
         100.0 * xf_regular.billable_fraction],
        ["XFaaS, first sighting", xf_first.startup_overhead_s,
         xf_first.idle_overhead_s + xf_first.shutdown_s,
         100.0 * xf_first.billable_fraction],
    ]
    return rows, base, xf_regular


def test_fig01_lifecycle(benchmark):
    rows, base, xf = benchmark(build_rows)
    steps = format_table(
        ["step", "name", "baseline cost (s)"],
        [[n, name, cost] for n, name, cost in BASELINE_STEPS],
        title="Figure 1 lifecycle steps (step 8 = execute, billable)")
    table = format_table(
        ["platform", "startup overhead (s)", "idle+shutdown (s)",
         "billable %"],
        rows, title=f"Per-call breakdown at execute={EXECUTE_S}s")
    write_result("fig01_lifecycle", steps + "\n\n" + table)

    # Paper shape: XFaaS eliminates steps (1)-(5), (9), (10) entirely.
    assert xf.idle_overhead_s == 0.0
    assert xf.shutdown_s == 0.0
    # Startup overhead drops by >30x for regularly invoked functions.
    assert base.startup_overhead_s / xf.startup_overhead_s > 30
    # Billable fraction: <1% on the baseline, >90% on XFaaS.
    assert base.billable_fraction < 0.01
    assert xf.billable_fraction > 0.9
