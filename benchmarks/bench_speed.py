"""Kernel speed benchmark: events/sec on a scaled dayrun.

Runs the shared ``conftest.build_dayrun`` workload over a shortened
horizon and records simulator throughput into ``BENCH_kernel.json`` at
the repo root, so every PR lands on a measured trajectory.  The record
also carries a SHA-256 digest of the full call-trace, making any
behavioral drift of an "optimization" visible next to its speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py
        # full (1 h horizon), appends a record
    PYTHONPATH=src python benchmarks/bench_speed.py --quick
        # short smoke run (10 min horizon)
    PYTHONPATH=src python benchmarks/bench_speed.py --quick --check
        # CI gate: no file write; exits 1 when events/sec drops more
        # than --max-regression (default 25%) below the newest committed
        # record of the same mode.
"""

from __future__ import annotations

import argparse
import json
import os
import platform as py_platform
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_FILE = REPO_ROOT / "BENCH_kernel.json"

sys.path.insert(0, str(BENCH_DIR))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from conftest import build_dayrun, require_label  # noqa: E402

FULL_HORIZON_S = 3600.0
QUICK_HORIZON_S = 600.0


def peak_rss_mb() -> float:
    """Process peak resident set size in MB (informational).

    ``ru_maxrss`` is the high-water mark over the whole process
    lifetime, which for a one-run bench process is the run's peak.  Not
    a gate — RSS depends on the allocator and interpreter build — but a
    committed series of it makes memory regressions visible next to the
    throughput numbers.
    """
    try:
        import resource
    except ImportError:       # non-POSIX platform
        return 0.0
    kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return round(kb / 1024.0, 1)


def provenance() -> dict:
    """Machine/source context stamped into every appended record.

    Throughput numbers are only comparable on the same machine against
    the same source; the git short hash, CPU count, and interpreter
    version let a reader (and the --check gate's audience) judge whether
    two records are actually comparable.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=10)
        git_rev = out.stdout.strip() if out.returncode == 0 else None
        if git_rev:
            dirty = subprocess.run(
                ["git", "status", "--porcelain", "-uno"], cwd=REPO_ROOT,
                capture_output=True, text=True, timeout=10)
            if dirty.returncode == 0 and dirty.stdout.strip():
                git_rev += "-dirty"
    except OSError:
        git_rev = None
    return {
        "git": git_rev or None,
        "cpu_count": os.cpu_count(),
        "python": py_platform.python_version(),
    }


def trace_digest(platform) -> str:
    # Delegates to the library so benches and the sweep engine can never
    # drift apart on what "behaviorally identical" means.
    return platform.traces.digest()


def run_benchmark(mode: str, label: str = "") -> dict:
    horizon = QUICK_HORIZON_S if mode == "quick" else FULL_HORIZON_S
    t0 = time.perf_counter()
    run = build_dayrun(horizon_s=horizon)
    wall_s = time.perf_counter() - t0
    sim, platform = run.sim, run.platform
    return {
        "mode": mode,
        "label": label,
        "horizon_s": horizon,
        "events_executed": sim.events_executed,
        "wall_s": round(wall_s, 3),
        "events_per_sec": round(sim.events_executed / wall_s, 1),
        "n_traces": len(platform.traces),
        "trace_digest": trace_digest(platform),
        "peak_rss_mb": peak_rss_mb(),
        **provenance(),
    }


def load_records(path: Path = BENCH_FILE) -> list:
    if not path.exists():
        return []
    return json.loads(path.read_text())


def latest_baseline(records: list, mode: str) -> dict:
    for rec in reversed(records):
        if rec.get("mode") == mode:
            return rec
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short smoke run instead of the 1 h dayrun")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead "
                             "of appending a record; non-zero exit on "
                             "excessive regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional events/sec drop in --check "
                             "mode (default 0.25)")
    parser.add_argument("--label", default="",
                        help="free-form description stored with the record")
    args = parser.parse_args(argv)
    require_label(parser, args)

    mode = "quick" if args.quick else "full"
    records = load_records()
    baseline = latest_baseline(records, mode)

    rec = run_benchmark(mode, args.label)
    print(f"[{mode}] {rec['events_executed']} events in {rec['wall_s']:.2f}s "
          f"-> {rec['events_per_sec']:.0f} events/sec "
          f"({rec['n_traces']} traces, digest {rec['trace_digest'][:12]}..., "
          f"peak RSS {rec['peak_rss_mb']:.0f} MB)")

    if baseline:
        base_evps = baseline["events_per_sec"]
        ratio = rec["events_per_sec"] / base_evps
        print(f"baseline ({baseline.get('label') or 'previous'}): "
              f"{base_evps:.0f} events/sec -> {ratio:.2f}x")
        if baseline.get("trace_digest") and \
                baseline.get("horizon_s") == rec["horizon_s"]:
            same = baseline["trace_digest"] == rec["trace_digest"]
            print("trace digest vs baseline: "
                  f"{'identical' if same else 'DIVERGED'}")

    if args.check:
        if not baseline:
            print("no committed baseline for this mode; check passes")
            return 0
        floor = baseline["events_per_sec"] * (1.0 - args.max_regression)
        if rec["events_per_sec"] < floor:
            print(f"FAIL: {rec['events_per_sec']:.0f} events/sec is below "
                  f"the {floor:.0f} floor "
                  f"({args.max_regression:.0%} regression budget)")
            return 1
        print(f"OK: above the {floor:.0f} events/sec regression floor")
        return 0

    if baseline and baseline.get("label") == rec["label"] and \
            baseline.get("trace_digest") == rec["trace_digest"]:
        # Same label and bit-identical behavior as the newest committed
        # record of this mode: appending would only accumulate noise.
        print(f"unchanged: newest {mode} record already has this label "
              "and trace digest; not appending")
        return 0

    records.append(rec)
    BENCH_FILE.write_text(json.dumps(records, indent=1) + "\n")
    print(f"appended record to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
