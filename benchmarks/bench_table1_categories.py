"""Table 1 — breakdown of functions by trigger category.

Paper numbers (one production month):

    trigger   functions   calls   compute
    queue     89%         15%     86%
    event     8%          85%     14%
    timer     3%          <1%     <1%
"""

from conftest import write_result

from repro.analysis import table1_from_traces
from repro.metrics import format_table

PAPER = {
    "queue-triggered": (89, 15, 86),
    "event-triggered": (8, 85, 14),
    "timer-triggered": (3, 1, 1),
}


def test_table1_categories(dayrun, benchmark):
    rows = benchmark(lambda: table1_from_traces(
        dayrun.platform.traces, dayrun.specs_by_trigger))
    display = []
    for name, f_pct, c_pct, cpu_pct in rows:
        p = PAPER[name]
        display.append([name,
                        f"{f_pct:.0f}% (paper {p[0]}%)",
                        f"{c_pct:.0f}% (paper {p[1]}%)",
                        f"{cpu_pct:.0f}% (paper {p[2]}%)"])
    table = format_table(
        ["trigger", "functions", "function calls", "compute usage"],
        display, title="Table 1 — trigger-category breakdown")
    write_result("table1_categories", table)

    by_name = {r[0]: r for r in rows}
    q = by_name["queue-triggered"]
    e = by_name["event-triggered"]
    t = by_name["timer-triggered"]
    # Function-count shares are construction-exact (±2%).
    assert abs(q[1] - 89) < 3 and abs(e[1] - 8) < 3 and abs(t[1] - 3) < 3
    # Call shares: event dominates invocations.
    assert e[2] > 70
    assert q[2] < 30
    # Compute shares: queue dominates CPU despite few calls.
    assert q[3] > 60
    assert e[3] < 35
    assert t[2] < 5
