"""Figure 11 — reserved vs opportunistic CPU consumption complement.

Paper claim: reserved-quota CPU shows a diurnal pattern (user-facing
triggers); opportunistic-quota CPU is scheduled into the troughs, so
the two curves almost exactly complement each other — the Utilization
Controller's S multiplier pulls deferred work forward exactly when
reserved demand dips.
"""

from conftest import write_result

from repro.analysis import complementarity, pearson, quota_cpu_series
from repro.metrics import series_block

DAY_S = 86_400.0
BUCKET_S = 1800.0  # half-hour buckets smooth sampling noise


def build_series(dayrun):
    reserved, opportunistic = quota_cpu_series(dayrun.platform, 0, DAY_S)
    k = int(BUCKET_S / 60.0)

    def bucket(xs):
        return [sum(xs[i:i + k]) for i in range(0, len(xs), k)]
    return bucket(reserved), bucket(opportunistic)


def test_fig11_time_shifting(dayrun, benchmark):
    reserved, opportunistic = benchmark(lambda: build_series(dayrun))
    corr = pearson(reserved, opportunistic)
    comp = complementarity(reserved, opportunistic)
    out = "\n".join([
        series_block("reserved-quota CPU (M instr / 30 min)", reserved),
        "",
        series_block("opportunistic-quota CPU (M instr / 30 min)",
                     opportunistic),
        "",
        f"pearson(reserved, opportunistic) = {corr:.3f} "
        "(complement => negative)",
        f"CV(total) / CV(reserved) = {comp:.3f} "
        "(< 1 means opportunistic fills the troughs)",
    ])
    write_result("fig11_time_shifting", out)

    # Both quota classes consumed meaningful CPU.
    assert sum(reserved) > 0 and sum(opportunistic) > 0
    # Complement shape: anti-correlated curves, flatter sum.
    assert corr < 0.1
    assert comp < 0.9
