"""Table 3 — per-trigger percentiles of CPU, memory, and execution time.

Paper columns (CPU in M instructions per call):

    queue-triggered  P10 20.40   P50 221.80  P90 7,611
    event-triggered  P10 0.54    P50 11.36   P90 189
    timer-triggered  P10 0.37    P50 576.00  P90 44,839

plus §3.3 aggregate anchors (33%/94% of calls within 1 s/60 s, timer
execution from 24 ms at P10 to ~11 min at P99).
"""

from conftest import write_result

from repro.metrics import format_table
from repro.sim import RngStream
from repro.workloads import TriggerType, profile_for

PAPER_CPU = {
    "queue": (20.40, 221.80, 7611.0),
    "event": (0.54, 11.36, 189.0),
    "timer": (0.37, 576.00, 44_839.0),
}
N = 40_000


def sample_table():
    rng = RngStream("bench-table3", 11)
    out = {}
    for trigger in TriggerType:
        profile = profile_for(trigger)
        cpu = sorted(profile.cpu_minstr.sample(rng) for _ in range(N))
        mem = sorted(profile.memory_mb.sample(rng) for _ in range(N))
        ex = sorted(profile.exec_time_s.sample(rng) for _ in range(N))

        def pct(v, p):
            return v[min(N - 1, int(p / 100 * N))]
        out[trigger.value] = {
            "cpu": [pct(cpu, p) for p in (10, 50, 90, 99)],
            "mem": [pct(mem, p) for p in (10, 50, 90, 99)],
            "exec": [pct(ex, p) for p in (10, 50, 90, 99)],
        }
    return out


def test_table3_resource_percentiles(benchmark):
    table = benchmark(sample_table)
    rows = []
    for trigger, metrics in table.items():
        paper = PAPER_CPU[trigger]
        rows.append([
            f"{trigger}-triggered",
            f"{metrics['cpu'][0]:.2f} (paper {paper[0]})",
            f"{metrics['cpu'][1]:.1f} (paper {paper[1]})",
            f"{metrics['cpu'][2]:.0f} (paper {paper[2]})",
            f"{metrics['mem'][1]:.0f}",
            f"{metrics['exec'][1]:.3f}",
            f"{metrics['exec'][3]:.1f}",
        ])
    out = format_table(
        ["trigger", "CPU P10", "CPU P50", "CPU P90", "mem P50 (MB)",
         "exec P50 (s)", "exec P99 (s)"],
        rows, title="Table 3 — per-trigger resource percentiles")
    write_result("table3_resource_percentiles", out)

    # Fit points (P10/P90) land within 25% of the paper's columns.
    for trigger, (p10, _, p90) in PAPER_CPU.items():
        measured = table[trigger]["cpu"]
        assert abs(measured[0] - p10) / p10 < 0.3, trigger
        assert abs(measured[2] - p90) / p90 < 0.3, trigger
    # §3.3: timer-triggered execution 24 ms at P10 → ~11 min at P99.
    timer_exec = table["timer"]["exec"]
    assert timer_exec[0] < 0.05
    assert timer_exec[3] > 300.0
