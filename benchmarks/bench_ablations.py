"""Ablations — switching off each §1.2 technique, one at a time.

The paper argues its techniques are a *holistic set* (§5.3: opportunistic
quota alone does not explain the smoothing).  Each ablation disables one
mechanism and measures what degrades:

* no time-shifting  → executed curve follows the spiky received curve;
* no global dispatch → regional utilization imbalance grows;
* no locality groups → workers touch many more distinct functions.

Also includes the paper's stated future-work sweep: converting reserved
functions to opportunistic quota increases deferral capacity.
"""


from conftest import build_dayrun, write_result

from repro import PlatformParams
from repro.analysis import peak_to_trough, received_vs_executed
from repro.core import LocalityParams, SchedulerParams, UtilizationParams

HORIZON_S = 6 * 3600.0  # 6-hour window covering the midnight spike


def _median(values):
    values = sorted(values)
    return values[len(values) // 2] if values else 0.0


def run_config(label: str, **flag_overrides):
    params = PlatformParams(
        scheduler=SchedulerParams(poll_interval_s=2.0, buffer_capacity=1000,
                                  runq_capacity=300),
        utilization=UtilizationParams(target_utilization=0.72),
        locality=LocalityParams(n_groups=3),
        distinct_window_s=1800.0,
        memory_sample_interval_s=300.0,
        **flag_overrides)
    run = build_dayrun(seed=17, horizon_s=HORIZON_S, params_override=params)
    platform = run.platform
    received, executed = received_vs_executed(platform, 0, HORIZON_S)
    distinct = platform.metrics.distribution(
        "worker.distinct_functions_per_window")
    opp_delays = [t.queueing_delay for t in platform.traces.completed()
                  if t.quota_type == "opportunistic"]
    cross_pulls = sum(s.cross_region_pulls
                      for s in platform.schedulers.values())
    return {
        "label": label,
        "executed_p2t": peak_to_trough(
            [max(v, 1e-9) for v in executed], trim_fraction=0.02),
        "received_p2t": peak_to_trough(received, trim_fraction=0.02),
        "opp_delay_median_s": _median(opp_delays),
        "cross_region_pulls": cross_pulls,
        "distinct_p50": int(distinct.percentile(50)) if len(distinct) else 0,
        "completed": platform.completed_count(),
    }


def run_all():
    return [
        run_config("full XFaaS"),
        run_config("no time-shifting", time_shifting=False),
        run_config("no global dispatch", global_dispatch=False),
        run_config("no locality groups", locality_groups=False),
    ]


def test_ablations(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    by_label = {r["label"]: r for r in results}
    from repro.metrics import format_table
    table = format_table(
        ["config", "executed p2t", "opp delay P50 (s)",
         "cross-region pulls", "distinct fns P50", "completed"],
        [[r["label"], f"{r['executed_p2t']:.2f}x",
          f"{r['opp_delay_median_s']:.1f}", r["cross_region_pulls"],
          r["distinct_p50"], r["completed"]]
         for r in results],
        title=f"Ablations over the first {HORIZON_S / 3600:.0f} h "
              "(midnight spike window)")
    write_result("ablations", table)

    full = by_label["full XFaaS"]
    no_shift = by_label["no time-shifting"]
    no_gtc = by_label["no global dispatch"]
    no_locality = by_label["no locality groups"]

    # Time-shifting defers opportunistic work: its median queueing delay
    # collapses when the S gate is pinned open.  (The executed curve's
    # p2t moves little — §5.3's own point: opportunistic deferral alone
    # does not explain the smoothing; quota/criticality still act.)
    assert full["opp_delay_median_s"] > 2 * no_shift["opp_delay_median_s"]
    # Global dispatch: schedulers pull cross-region only with the GTC.
    assert no_gtc["cross_region_pulls"] == 0
    assert full["cross_region_pulls"] > 0
    # Locality groups bound the per-worker distinct-function set.
    assert no_locality["distinct_p50"] >= full["distinct_p50"]
    # None of the ablations should change total work dramatically at
    # this horizon (deferral moves work, it doesn't destroy it).
    for r in results:
        assert r["completed"] > 0.5 * full["completed"]
