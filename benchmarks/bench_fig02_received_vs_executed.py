"""Figure 2 — received vs executed function calls per minute.

Paper claim: received calls peak at 4.3× the trough (with the global
peak at midnight from big-data pipelines); the executed curve is far
smoother because XFaaS defers delay-tolerant and over-quota work, so
capacity only needs to match the executed curve.
"""

from conftest import write_result

from repro.analysis import (
    coefficient_of_variation,
    peak_to_trough,
    received_vs_executed,
)
from repro.metrics import series_block

DAY_S = 86_400.0


def test_fig02_received_vs_executed(dayrun, benchmark):
    received, executed = benchmark(
        lambda: received_vs_executed(dayrun.platform, 0, DAY_S))
    # Ignore all-zero tail buckets of the executed series (in-flight at
    # horizon) for ratio robustness.
    exec_clean = [max(v, 1e-9) for v in executed]

    r_p2t = peak_to_trough(received, trim_fraction=0.02)
    e_p2t = peak_to_trough(exec_clean, trim_fraction=0.02)
    r_cv = coefficient_of_variation(received)
    e_cv = coefficient_of_variation(executed)

    out = "\n".join([
        series_block("received per minute", received),
        "",
        series_block("executed per minute", executed),
        "",
        f"received peak-to-trough:  {r_p2t:.2f}x (paper: 4.3x)",
        f"executed peak-to-trough:  {e_p2t:.2f}x (paper: visibly flatter)",
        f"coefficient of variation: received {r_cv:.3f} -> executed {e_cv:.3f}",
    ])
    write_result("fig02_received_vs_executed", out)

    # Shape claims: the received curve is spiky like the paper's (the
    # trim keeps the Fig 4 burst bucket from dominating), and the
    # executed curve is substantially smoother.
    assert 3.0 <= r_p2t <= 7.0
    assert e_p2t < r_p2t * 0.75
    assert e_cv < r_cv
    # Conservation: everything received is eventually executed (minus
    # the in-flight tail at the horizon).
    assert sum(executed) >= 0.93 * sum(received)
