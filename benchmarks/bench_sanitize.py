"""Sanitizer overhead benchmark: simsan's cost on the reference dayrun.

Runs the shared ``conftest.build_dayrun`` workload twice — plain and
under ``sanitize=True`` — and records the wall-time overhead ratio into
``BENCH_kernel.json``.  Digest equality between the two runs is a hard
assertion (the sanitizer's contract is bit-identical behavior); the
overhead ratio is informational with a 2x target.

Usage::

    PYTHONPATH=src python benchmarks/bench_sanitize.py
        # full (1 h horizon), appends a record
    PYTHONPATH=src python benchmarks/bench_sanitize.py --quick
        # short smoke run (10 min horizon)
    PYTHONPATH=src python benchmarks/bench_sanitize.py --quick --check
        # CI/no-write mode: exits 1 on digest divergence; overhead is
        # reported but never gates.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_FILE = REPO_ROOT / "BENCH_kernel.json"

sys.path.insert(0, str(BENCH_DIR))
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_speed import load_records, provenance  # noqa: E402
from conftest import build_dayrun, require_label  # noqa: E402

FULL_HORIZON_S = 3600.0
QUICK_HORIZON_S = 600.0
OVERHEAD_TARGET = 2.0


def timed_run(horizon_s: float, sanitize: bool) -> dict:
    # Harness timing, not simulated time.
    t0 = time.perf_counter()  # simlint: disable=SL002
    run = build_dayrun(horizon_s=horizon_s, sanitize=sanitize)
    wall_s = time.perf_counter() - t0  # simlint: disable=SL002
    return {
        "wall_s": round(wall_s, 3),
        "events_executed": run.sim.events_executed,
        "events_per_sec": round(run.sim.events_executed / wall_s, 1),
        "trace_digest": run.platform.traces.digest(),
    }


def run_benchmark(mode: str, label: str = "") -> dict:
    horizon = QUICK_HORIZON_S if mode == "quick" else FULL_HORIZON_S
    plain = timed_run(horizon, sanitize=False)
    sanitized = timed_run(horizon, sanitize=True)
    return {
        "mode": f"sanitize-{mode}",
        "label": label,
        "horizon_s": horizon,
        "plain": plain,
        "sanitized": sanitized,
        "overhead_x": round(sanitized["wall_s"] / plain["wall_s"], 3),
        "digest_parity": plain["trace_digest"] == sanitized["trace_digest"],
        "trace_digest": plain["trace_digest"],
        **provenance(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short smoke run instead of the 1 h dayrun")
    parser.add_argument("--check", action="store_true",
                        help="no file write; exit 1 on sanitized-vs-plain "
                             "digest divergence")
    parser.add_argument("--label", default="",
                        help="free-form description stored with the record")
    args = parser.parse_args(argv)
    require_label(parser, args)

    mode = "quick" if args.quick else "full"
    rec = run_benchmark(mode, args.label)
    print(f"[sanitize-{mode}] plain {rec['plain']['wall_s']:.2f}s "
          f"({rec['plain']['events_per_sec']:.0f} ev/s), sanitized "
          f"{rec['sanitized']['wall_s']:.2f}s "
          f"({rec['sanitized']['events_per_sec']:.0f} ev/s) -> "
          f"{rec['overhead_x']:.2f}x overhead "
          f"(target <= {OVERHEAD_TARGET:.0f}x, informational)")
    print("digest parity: "
          f"{'identical' if rec['digest_parity'] else 'DIVERGED'} "
          f"({rec['trace_digest'][:12]}...)")

    if not rec["digest_parity"]:
        print("FAIL: the sanitized run diverged from the plain run — "
              "a simsan check perturbed simulation behavior")
        return 1
    if rec["overhead_x"] > OVERHEAD_TARGET:
        print(f"note: overhead {rec['overhead_x']:.2f}x exceeds the "
              f"{OVERHEAD_TARGET:.0f}x target (informational, not a gate)")

    if args.check:
        print("OK: sanitized run is bit-identical to the plain run")
        return 0

    records = load_records()
    newest = next((r for r in reversed(records)
                   if r.get("mode") == rec["mode"]), {})
    if newest and newest.get("label") == rec["label"] and \
            newest.get("trace_digest") == rec["trace_digest"] and \
            newest.get("digest_parity"):
        print(f"unchanged: newest sanitize-{mode} record already has this "
              "label and trace digest; not appending")
        return 0
    records.append(rec)
    BENCH_FILE.write_text(json.dumps(records, indent=1) + "\n")
    print(f"appended record to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
