"""Figure 7 — daily average CPU utilization of workers per region.

Paper claim: XFaaS sustains a daily average CPU utilization of 66%
across regions (measured over 12 regions), several times higher than
typical FaaS platforms, despite the 4.3× spiky received load.
"""

import statistics

from conftest import write_result

from repro.analysis import region_utilization_averages
from repro.metrics import format_table

DAY_S = 86_400.0


def test_fig07_utilization(dayrun, benchmark):
    utils = benchmark(lambda: region_utilization_averages(
        dayrun.platform, 3600.0, DAY_S))
    mean_util = statistics.mean(utils.values())
    rows = [[region, f"{100 * u:.1f}%", "#" * int(40 * u)]
            for region, u in sorted(utils.items())]
    rows.append(["FLEET MEAN", f"{100 * mean_util:.1f}%", ""])
    table = format_table(
        ["region", "daily avg CPU util", ""], rows,
        title="Figure 7 — daily average worker CPU utilization "
              "(paper: 66% fleet average)")
    write_result("fig07_utilization", table)

    assert len(utils) == dayrun.n_regions
    # Fleet average in the paper's regime (66%); we accept a band since
    # capacity is integer-granular at this scale.
    assert 0.45 <= mean_util <= 0.85
    # No region is pathologically idle: global dispatch keeps every
    # region's workers in use.
    assert min(utils.values()) > 0.2
