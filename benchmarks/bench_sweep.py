"""Sweep engine benchmark: serial vs parallel wall clock + determinism.

Runs the same 8-run seed sweep twice — ``--workers 1`` (serial,
in-process) and ``--workers N`` (spawn pool) — and records both wall
clocks, the speedup, and whether every per-run trace digest is
bit-identical between the two executions, into ``BENCH_sweep.json`` at
the repo root.  Digest stability is the load-bearing claim: parallelism
must be a pure wall-clock optimization, never a behavior change.

Speedup scales with physical cores; the record carries ``cpu_count`` so
a ~1× result on a 1-core container is legible next to a ~4× result on a
4-core machine.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # 1 h per run
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick    # 15 min per run
    PYTHONPATH=src python benchmarks/bench_sweep.py --quick --check
        # CI gate: no file write; exits 1 on digest divergence between
        # serial and parallel execution.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
BENCH_FILE = REPO_ROOT / "BENCH_sweep.json"

if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sweep import build_grid, run_sweep, sweep_report  # noqa: E402

sys.path.insert(0, str(BENCH_DIR))
from conftest import require_label  # noqa: E402

N_RUNS = 8
FULL_HORIZON_S = 3600.0
QUICK_HORIZON_S = 900.0


def timed_sweep(specs, workers: int):
    t0 = time.perf_counter()
    results = run_sweep(specs, workers=workers)
    wall = time.perf_counter() - t0
    return results, wall


def run_benchmark(mode: str, workers: int, label: str = "") -> dict:
    horizon = QUICK_HORIZON_S if mode == "quick" else FULL_HORIZON_S
    specs = build_grid(n_reps=N_RUNS, master_seed=7, horizon_s=horizon,
                       total_rate=4.0, n_functions=40, n_regions=4)

    serial, wall_serial = timed_sweep(specs, workers=1)
    parallel, wall_parallel = timed_sweep(specs, workers=workers)

    digests_serial = [r.trace_digest for r in serial]
    digests_parallel = [r.trace_digest for r in parallel]
    report = sweep_report(serial)
    util = report["aggregates"].get("baseline", {}).get("fleet_util_mean", {})
    return {
        "mode": mode,
        "label": label,
        "horizon_s": horizon,
        "n_runs": N_RUNS,
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "wall_serial_s": round(wall_serial, 3),
        "wall_parallel_s": round(wall_parallel, 3),
        #: Per-run wall clocks (same spec order as ``digests``): the
        #: aggregate speedup is only legible next to the straggler
        #: profile — one slow seed bounds the parallel wall clock.
        "run_wall_serial_s": [round(r.wall_s, 3) for r in serial],
        "run_wall_parallel_s": [round(r.wall_s, 3) for r in parallel],
        "speedup": round(wall_serial / wall_parallel, 3),
        "all_ok": all(r.ok for r in serial + parallel),
        "digests_identical": digests_serial == digests_parallel,
        "digests": [d[:16] for d in digests_serial],
        "fleet_util_mean": round(util.get("mean", 0.0), 4),
        "fleet_util_ci95": round(util.get("ci95", 0.0), 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="15-minute runs instead of 1-hour runs")
    parser.add_argument("--workers", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="parallel worker count (default min(4, cores))")
    parser.add_argument("--check", action="store_true",
                        help="no file write; exit 1 unless all runs "
                             "succeeded with identical digests")
    parser.add_argument("--label", default="",
                        help="free-form description stored with the record")
    args = parser.parse_args(argv)
    require_label(parser, args)

    mode = "quick" if args.quick else "full"
    rec = run_benchmark(mode, max(args.workers, 2), args.label)

    print(f"[{mode}] {rec['n_runs']}-run sweep on {rec['cpu_count']} core(s): "
          f"serial {rec['wall_serial_s']:.1f}s, "
          f"parallel({rec['workers']}w) {rec['wall_parallel_s']:.1f}s "
          f"-> {rec['speedup']:.2f}x speedup")
    print("per-run wall s: serial "
          + " ".join(f"{w:.2f}" for w in rec["run_wall_serial_s"])
          + " | parallel "
          + " ".join(f"{w:.2f}" for w in rec["run_wall_parallel_s"]))
    print(f"digests identical: {rec['digests_identical']}, "
          f"all ok: {rec['all_ok']}, "
          f"fleet util {rec['fleet_util_mean']:.3f} "
          f"± {rec['fleet_util_ci95']:.4f} (95% CI, {rec['n_runs']} seeds)")
    if (rec["cpu_count"] or 1) < 4:
        print(f"note: only {rec['cpu_count']} core(s) visible; speedup is "
              "spawn-overhead-bound here and meaningful only on 4+ cores")

    if args.check:
        if not (rec["all_ok"] and rec["digests_identical"]):
            print("FAIL: sweep runs failed or diverged between serial and "
                  "parallel execution")
            return 1
        if (rec["cpu_count"] or 1) > 1 and rec["speedup"] <= 1.0:
            print(f"FAIL: parallel sweep showed no speedup "
                  f"({rec['speedup']:.2f}x on {rec['cpu_count']} cores) — "
                  "the spawn pool is adding overhead without parallelism")
            return 1
        print("OK: serial and parallel sweeps are behaviorally identical")
        return 0

    records = json.loads(BENCH_FILE.read_text()) if BENCH_FILE.exists() else []
    records.append(rec)
    BENCH_FILE.write_text(json.dumps(records, indent=1) + "\n")
    print(f"appended record to {BENCH_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
