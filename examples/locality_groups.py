#!/usr/bin/env python
"""Locality groups demo: the §5.2 A/B experiment in miniature.

Runs the same mixed workload (including memory-hungry Morphing-style
functions) on two identical platforms — one with locality groups, one
without — and compares worker memory and the number of distinct
functions each worker executes (Figures 9/10 and the 11.8% memory
saving of §5.2).

Run:  python examples/locality_groups.py
"""

from repro import PlatformParams, Simulator, XFaaS, build_topology
from repro.cluster import MachineSpec
from repro.core import LocalityParams, WorkerParams
from repro.workloads import ConstantRate, all_examples, build_population


def run(enabled: bool):
    sim = Simulator(seed=21)
    topology = build_topology(
        n_regions=2, workers_per_unit=6,
        machine_spec=MachineSpec(cores=4, core_mips=2000, threads=64))
    params = PlatformParams(
        locality_groups=enabled,
        locality=LocalityParams(n_groups=2, rebalance_interval_s=120.0),
        # Per-function resident footprint stands in for HHVM's JIT code
        # and warm caches — the memory locality groups actually save.
        worker=WorkerParams(resident_multiplier=10.0,
                            resident_budget_mb=40 * 1024.0),
        memory_sample_interval_s=30.0,
        distinct_window_s=600.0)
    platform = XFaaS(sim, topology, params)

    pop = build_population(n_functions=60, total_rate=12.0,
                           opportunistic_fraction=0.0)
    for load in pop.loads:
        load.shape = ConstantRate(1.0)
        load.shape_mean = 1.0
    for spec in pop.specs:
        platform.register_function(spec)
    # Add the Morphing Framework's ephemeral memory hogs.
    for example in all_examples():
        if example.name == "morphing-framework":
            for spec in example.specs:
                platform.register_function(spec)

    from repro.workloads import ArrivalGenerator
    ArrivalGenerator(sim, pop, lambda s, d: platform.submit(s.name),
                     tick_s=10.0, stop_at=3600.0)
    morph = [s for s in platform.functions() if s.startswith("morphing")]
    sim.every(30.0, lambda: platform.submit(
        sim.rng.stream("morph-pick").choice(morph)))

    sim.run_until(3600.0)
    mem = platform.metrics.distribution("worker.memory_mb")
    distinct = platform.metrics.distribution(
        "worker.distinct_functions_per_window")
    return {
        "mem_p50": mem.percentile(50),
        "mem_p95": mem.percentile(95),
        "distinct_p50": distinct.percentile(50),
        "distinct_p95": distinct.percentile(95),
        "completed": platform.completed_count(),
    }


def main() -> None:
    with_groups = run(enabled=True)
    without = run(enabled=False)

    print("                         with locality   without")
    print(f"worker memory P50 (MB)   {with_groups['mem_p50']:14.0f} "
          f"{without['mem_p50']:9.0f}")
    print(f"worker memory P95 (MB)   {with_groups['mem_p95']:14.0f} "
          f"{without['mem_p95']:9.0f}")
    print(f"distinct functions P50   {with_groups['distinct_p50']:14.0f} "
          f"{without['distinct_p50']:9.0f}")
    print(f"distinct functions P95   {with_groups['distinct_p95']:14.0f} "
          f"{without['distinct_p95']:9.0f}")
    print(f"calls completed          {with_groups['completed']:14d} "
          f"{without['completed']:9d}")

    saving_p50 = 100.0 * (1 - with_groups["mem_p50"] / without["mem_p50"])
    print()
    print(f"P50 memory saving with locality groups: {saving_p50:.1f}% "
          f"(paper §5.2 measured 11.8%)")


if __name__ == "__main__":
    main()
