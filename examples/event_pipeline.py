#!/usr/bin/env python
"""Event pipeline demo: all four trigger types driving one platform.

Recreates the §2.2 origin story of the midnight spike — Hive-like
pipelines land tables around midnight, each landing firing hundreds of
partition-processing calls — alongside a Falco-style data-stream logger,
a timer-driven notification campaign, and an ETL orchestration workflow:

* data warehouse:  10 tables land near midnight → `table-processor`
* data stream:     continuous log events → `falco-logger` (15 s SLO)
* timer:           an hourly campaign fan-out → `notify-users`
* workflow:        extract → transform → load chains all day

Run:  python examples/event_pipeline.py
"""

import math

from repro import (FunctionSpec, PlatformParams, QuotaType, Simulator, XFaaS,
                   build_topology)
from repro.cluster import MachineSpec
from repro.metrics import series_block
from repro.triggers import (DataStream, DataWarehouse, IntervalSchedule,
                            StreamTriggerService, TimerTriggerService,
                            WorkflowEngine, WorkflowSpec, midnight_pipelines)
from repro.workloads import LogNormal, ResourceProfile

HORIZON_S = 6 * 3600.0  # the six hours around midnight


def profile(cpu, exec_s):
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu), sigma=0.4),
        memory_mb=LogNormal(mu=math.log(48.0), sigma=0.4),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.4))


def main() -> None:
    sim = Simulator(seed=9)
    topology = build_topology(
        n_regions=3, workers_per_unit=4,
        machine_spec=MachineSpec(cores=4, core_mips=1000, threads=48))
    platform = XFaaS(sim, topology, PlatformParams())

    platform.register_function(FunctionSpec(
        name="table-processor", quota_type=QuotaType.OPPORTUNISTIC,
        quota_minstr_per_s=5.0e4, profile=profile(400.0, 2.0)))
    platform.register_function(FunctionSpec(
        name="falco-logger", deadline_s=15.0,
        quota_minstr_per_s=1.0e5, profile=profile(5.0, 0.1)))
    platform.register_function(FunctionSpec(
        name="notify-users", quota_minstr_per_s=1.0e5,
        profile=profile(50.0, 0.5)))
    for step in ("extract", "transform", "load"):
        platform.register_function(FunctionSpec(
            name=step, quota_minstr_per_s=1.0e5, profile=profile(100.0, 1.0)))

    # 1. Warehouse: the midnight pipeline cluster.
    warehouse = DataWarehouse(sim)
    for table in midnight_pipelines(n_tables=10, partitions=150,
                                    spread_s=2700.0):
        warehouse.register_table(table)
        warehouse.subscribe(table.name, "table-processor")
    warehouse.start(lambda fn: platform.submit(fn), days=1)

    # 2. Stream: steady Falco-style log events at ~8/s.
    stream = DataStream(sim, "falco-events", partitions=4)
    trigger = StreamTriggerService(sim, stream, "falco-logger",
                                   lambda fn: platform.submit(fn),
                                   poll_interval_s=1.0)
    sim.every(1.0, lambda: [stream.produce() for _ in range(8)])

    # 3. Timer: an hourly notification campaign, 100 users per fire.
    timers = TimerTriggerService(sim, lambda fn: platform.submit(fn))
    timers.register("notify-users", IntervalSchedule(interval_s=3600.0,
                                                     offset_s=1800.0),
                    calls_per_fire=100)

    # 4. Workflows: a new ETL instance every 5 minutes.
    engine = WorkflowEngine(platform)
    engine.register(WorkflowSpec(name="etl",
                                 steps=("extract", "transform", "load")))
    sim.every(300.0, lambda: engine.start("etl"))

    sim.run_until(HORIZON_S)

    received = platform.metrics.counter("calls.received").values(0, HORIZON_S)
    executed = platform.metrics.counter("calls.executed").values(0, HORIZON_S)
    falco = [t for t in platform.traces.completed()
             if t.function == "falco-logger"]
    # Exclude the first 15 minutes: slow start (§4.6.3) intentionally
    # ramps a brand-new high-volume function at 20%/min, so its very
    # first minutes carry queueing delay by design.
    steady = [t for t in falco if t.submit_time > 900.0]
    falco_lat = sorted(t.completion_latency for t in steady)

    print(series_block("received per minute (midnight spike at t=0)",
                       received))
    print()
    print(series_block("executed per minute", executed))
    print()
    table_calls = sum(1 for t in platform.traces
                      if t.function == "table-processor")
    print(f"table landings within the window: {len(warehouse.landings)} "
          f"({table_calls} partition calls)")
    print(f"falco events processed: {len(falco)}, steady-state P99 latency "
          f"{falco_lat[int(0.99 * len(falco_lat))]:.2f}s (SLO 60s at P99; "
          f"the first minutes ramp through slow start)")
    print(f"campaigns fired: {timers.fired_count} "
          f"({timers.submitted_count} notifications)")
    print(f"workflows completed: {len(engine.completed())} of "
          f"{len(engine.instances)}")
    print()
    print("The warehouse landings create the received spike at t=0; the")
    print("opportunistic table-processor calls are deferred and drained")
    print("while the latency-sensitive stream/workflow traffic flows.")


if __name__ == "__main__":
    main()
