#!/usr/bin/env python
"""Quickstart: run a small XFaaS deployment and execute function calls.

Builds a 3-region platform, registers a function, submits 200 calls
(some with future execution start times, §4.6), and prints completion
statistics.

Run:  python examples/quickstart.py
"""

import math

from repro import FunctionSpec, PlatformParams, Simulator, XFaaS, build_topology
from repro.metrics import format_table
from repro.workloads import LogNormal, ResourceProfile


def main() -> None:
    sim = Simulator(seed=42)
    topology = build_topology(n_regions=3, workers_per_unit=6)
    platform = XFaaS(sim, topology, PlatformParams())

    spec = FunctionSpec(
        name="image-thumbnailer",
        deadline_s=60.0,            # completion SLO
        quota_minstr_per_s=1.0e5,   # CPU quota (M instr / s, global)
        profile=ResourceProfile(    # per-call resource distributions
            cpu_minstr=LogNormal(mu=math.log(50.0), sigma=0.5),
            memory_mb=LogNormal(mu=math.log(128.0), sigma=0.4),
            exec_time_s=LogNormal(mu=math.log(0.4), sigma=0.5)),
    )
    platform.register_function(spec)

    # Submit 150 immediate calls and 50 with a future start time —
    # callers spreading their own load predictably (§4.6).
    for i in range(150):
        platform.submit("image-thumbnailer")
    for i in range(50):
        platform.submit("image-thumbnailer", start_delay_s=120.0 + i)

    sim.run_until(600.0)

    traces = platform.traces.completed()
    immediate = [t for t in traces
                 if t.start_time_requested == t.submit_time]
    latencies = sorted(t.completion_latency for t in immediate)
    queueing = sorted(t.queueing_delay for t in traces)
    cross = sum(1 for t in traces if t.cross_region)

    print(f"submitted: {platform.submitted_count}")
    print(f"completed: {platform.completed_count()}")
    print(f"cross-region executions: {cross}")
    rows = [
        ["completion latency P50 (s)", latencies[len(latencies) // 2]],
        ["completion latency P99 (s)", latencies[int(len(latencies) * 0.99)]],
        ["queueing delay P50 (s)", queueing[len(queueing) // 2]],
    ]
    print(format_table(["metric", "value"], rows))


if __name__ == "__main__":
    main()
