#!/usr/bin/env python
"""Global dispatch demo: cross-region load balancing via the GTC (§4.4).

All client traffic lands in one small region while a large region sits
idle.  The Global Traffic Conductor notices the imbalance and publishes
a traffic matrix telling the idle region's schedulers to pull from the
overloaded region's DurableQs.

Run:  python examples/global_dispatch.py
"""

import math

from repro import (FunctionSpec, PlatformParams, Simulator, XFaaS)
from repro.cluster import MachineSpec, NetworkModel, Region, Topology
from repro.core import GtcParams
from repro.workloads import LogNormal, ResourceProfile


def main() -> None:
    sim = Simulator(seed=3)
    machine = MachineSpec(cores=2, core_mips=1000, threads=32)
    # One tiny region (receives all traffic) and one big idle region.
    topology = Topology(
        regions=[
            Region("tiny", {"default": 1}, machine_spec=machine),
            Region("big", {"default": 6}, machine_spec=machine),
        ],
        network=NetworkModel(["tiny", "big"]))
    params = PlatformParams(gtc=GtcParams(update_interval_s=30.0))
    platform = XFaaS(sim, topology, params)

    spec = FunctionSpec(
        name="batch-score",
        quota_minstr_per_s=1.0e6,
        profile=ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(800.0), sigma=0.4),
            memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
            exec_time_s=LogNormal(mu=math.log(1.0), sigma=0.4)))
    platform.register_function(spec)

    # 8 calls/s, every one submitted in the tiny region.
    sim.every(1.0, lambda: [platform.submit("batch-score", region="tiny")
                            for _ in range(8)])
    sim.run_until(1800.0)

    traces = platform.traces.completed()
    by_exec_region = {}
    for t in traces:
        by_exec_region[t.region_executed] = \
            by_exec_region.get(t.region_executed, 0) + 1
    cross = sum(1 for t in traces if t.cross_region)

    print(f"completed: {len(traces)} "
          f"(all submitted in region 'tiny')")
    for region, count in sorted(by_exec_region.items()):
        print(f"  executed in {region}: {count}")
    print(f"cross-region executions: {cross} "
          f"({100.0 * cross / max(len(traces), 1):.0f}%)")
    print()
    print("traffic matrix rows (scheduler region -> pull fractions):")
    for row_region, row in sorted((platform.gtc.last_matrix or {}).items()):
        cells = ", ".join(f"{src}={frac:.2f}"
                          for src, frac in sorted(row.items()))
        print(f"  {row_region}: {cells}")
    print()
    print("The big region pulls most of the tiny region's backlog — the")
    print("§4.4 demand/supply balancing at work.")


if __name__ == "__main__":
    main()
