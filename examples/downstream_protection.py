#!/usr/bin/env python
"""Downstream protection demo: the §5.5 WTCache incident, reproduced.

A high-volume function calls WTCache (which fronts TAO and persists to a
KVStore).  Mid-run, a bad KVStore release cuts its capacity to 10% —
the §5.5 incident.  WTCache starts throwing back-pressure exceptions;
XFaaS's AIMD controller cuts the function's RPS limit, protecting the
downstream stack; when the incident ends, slow start restores traffic.

Run:  python examples/downstream_protection.py
"""

import math

from repro import (FunctionSpec, Incident, IncidentInjector, PlatformParams,
                   ServiceRegistry, Simulator, XFaaS, build_tao_stack,
                   build_topology)
from repro.core import CongestionParams
from repro.metrics import series_block
from repro.workloads import LogNormal, ResourceProfile

INCIDENT_START = 1200.0
INCIDENT_END = 2400.0


def main() -> None:
    sim = Simulator(seed=11)
    topology = build_topology(n_regions=2, workers_per_unit=6)
    services = ServiceRegistry()
    tao, wtcache, kvstore = build_tao_stack(
        sim, services,
        tao_capacity_rps=5000.0,
        wtcache_capacity_rps=400.0,
        kvstore_capacity_rps=400.0)
    params = PlatformParams(
        congestion=CongestionParams(
            backpressure_threshold_per_min=60.0,
            adjust_window_s=30.0,
            additive_increase_rps=5.0))
    platform = XFaaS(sim, topology, params, services=services)

    spec = FunctionSpec(
        name="graph-sync",
        quota_minstr_per_s=1.0e6,
        profile=ResourceProfile(
            cpu_minstr=LogNormal(mu=math.log(20.0), sigma=0.3),
            memory_mb=LogNormal(mu=math.log(32.0), sigma=0.3),
            exec_time_s=LogNormal(mu=math.log(0.2), sigma=0.3)),
        downstream=(("wtcache", 3),))
    platform.register_function(spec)

    # Inject the KVStore capacity collapse (the buggy release).
    injector = IncidentInjector(sim)
    injector.inject(kvstore, Incident("kvstore", INCIDENT_START,
                                      INCIDENT_END, degraded_factor=0.05))

    # Steady high-volume traffic: 40 calls/s.
    sim.every(1.0, lambda: [platform.submit("graph-sync")
                            for _ in range(40)])

    limit_series = []
    sim.every(60.0, lambda: limit_series.append(
        min(platform.congestion.rps_limit("graph-sync"), 200.0)))

    sim.run_until(4800.0)

    bp = platform.metrics.counter("backpressure.wtcache").values(0, 4800)
    executed = platform.metrics.counter("calls.executed").values(0, 4800)

    print(series_block("back-pressure exceptions per minute", bp))
    print()
    print(series_block("function executions per minute", executed))
    print()
    print(series_block("AIMD RPS limit (capped at 200 for display)",
                       limit_series))
    print()
    during = platform.congestion.decrease_count
    print(f"AIMD multiplicative decreases: {during}")
    print(f"AIMD additive increases:       "
          f"{platform.congestion.increase_count}")
    print()
    print("During the incident the AIMD limit collapses, throttling the")
    print("function; after recovery the limit climbs back additively —")
    print("no human intervention, unlike the day-long §5.5 outage.")


if __name__ == "__main__":
    main()
