#!/usr/bin/env python
"""Time-shifting demo: a midnight-style spike absorbed by deferral (§4.6.2).

Two functions share an under-provisioned worker pool:

* ``interactive-logger`` — reserved quota, 15 s SLO (a Falco-style
  event-triggered function).
* ``batch-reindex`` — opportunistic quota, 24 h SLO.

A large burst of batch calls lands at t=0 (like the paper's midnight
data-pipeline spike).  XFaaS defers the batch work — the Utilization
Controller's S multiplier gates it — so the reserved function keeps its
latency SLO, and the batch backlog drains when capacity frees up.

Run:  python examples/time_shifting.py
"""

import math

from repro import (Criticality, FunctionSpec, PlatformParams, QuotaType,
                   Simulator, XFaaS, build_topology)
from repro.cluster import MachineSpec
from repro.core import UtilizationParams
from repro.metrics import series_block
from repro.workloads import LogNormal, ResourceProfile


def profile(cpu_minstr: float, exec_s: float) -> ResourceProfile:
    return ResourceProfile(
        cpu_minstr=LogNormal(mu=math.log(cpu_minstr), sigma=0.3),
        memory_mb=LogNormal(mu=math.log(64.0), sigma=0.3),
        exec_time_s=LogNormal(mu=math.log(exec_s), sigma=0.3))


def main() -> None:
    sim = Simulator(seed=7)
    # A deliberately small pool: the burst exceeds its capacity.
    topology = build_topology(
        n_regions=2, workers_per_unit=2,
        machine_spec=MachineSpec(cores=2, core_mips=1000, threads=32))
    params = PlatformParams(
        utilization=UtilizationParams(target_utilization=0.7,
                                      update_interval_s=30.0))
    platform = XFaaS(sim, topology, params)

    logger = FunctionSpec(name="interactive-logger", deadline_s=15.0,
                          criticality=Criticality.HIGH,
                          quota_minstr_per_s=1.0e5,
                          profile=profile(20.0, 0.2))
    batch = FunctionSpec(name="batch-reindex",
                         criticality=Criticality.LOW,
                         quota_type=QuotaType.OPPORTUNISTIC,
                         quota_minstr_per_s=2.0e4,
                         profile=profile(2000.0, 2.0))
    platform.register_function(logger)
    platform.register_function(batch)

    # The spike: 2,000 batch calls in the first minutes.
    burst = sim.every(1.0, lambda: [platform.submit("batch-reindex")
                                    for _ in range(10)])
    sim.call_after(200.0, burst.cancel)
    # Steady interactive traffic throughout.
    sim.every(1.0, lambda: [platform.submit("interactive-logger")
                            for _ in range(2)])

    sim.run_until(4 * 3600.0)

    batch_traces = [t for t in platform.traces.completed()
                    if t.function == "batch-reindex"]
    logger_traces = [t for t in platform.traces.completed()
                     if t.function == "interactive-logger"]

    logger_lat = sorted(t.completion_latency for t in logger_traces)
    batch_delay = sorted(t.queueing_delay for t in batch_traces)

    print(f"interactive completed: {len(logger_traces)}, "
          f"P99 latency {logger_lat[int(len(logger_lat) * 0.99)]:.2f}s "
          f"(SLO 15s)")
    print(f"batch completed: {len(batch_traces)} of 2000, "
          f"median execution deferral "
          f"{batch_delay[len(batch_delay) // 2] / 60:.1f} minutes")

    executed = platform.metrics.counter("calls.executed")
    received = platform.metrics.counter("calls.received")
    print()
    print(series_block("received per minute", received.values(0, 14400)))
    print(series_block("executed per minute", executed.values(0, 14400)))
    print()
    print("The executed curve spreads the burst over hours — that is")
    print("time-shifting: opportunistic work runs when capacity allows.")


if __name__ == "__main__":
    main()
