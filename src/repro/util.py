"""Small shared utilities with no domain dependencies."""

from __future__ import annotations

import dataclasses
from typing import Type, TypeVar

_T = TypeVar("_T")


def add_slots(cls: Type[_T]) -> Type[_T]:
    """Rebuild a dataclass with ``__slots__`` (Python 3.9 compatible).

    ``@dataclass(slots=True)`` only exists from 3.10; this is the same
    rebuild trick the stdlib uses.  Apply *under* the ``@dataclass``
    decorator (i.e. listed above it in the source).  Hot per-call
    objects use this: slotted instances skip the per-instance
    ``__dict__``, which is both smaller and faster to read attributes
    from on million-event simulation runs.
    """
    if "__slots__" in cls.__dict__:
        raise TypeError(f"{cls.__name__} already defines __slots__")
    cls_dict = dict(cls.__dict__)
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    cls_dict["__slots__"] = field_names
    for name in field_names:
        # Defaults live in the generated __init__; class attributes of
        # the same name would shadow the slot descriptors.
        cls_dict.pop(name, None)
    cls_dict.pop("__dict__", None)
    cls_dict.pop("__weakref__", None)
    new_cls = type(cls.__name__, cls.__bases__, cls_dict)
    new_cls.__qualname__ = getattr(cls, "__qualname__", cls.__name__)
    return new_cls
