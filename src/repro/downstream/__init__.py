"""Downstream service models: TAO/WTCache/KVStore, back-pressure, incidents."""

from .incident import Incident, IncidentInjector
from .service import (
    DownstreamService,
    ServiceCallResult,
    ServiceParams,
    ServiceRegistry,
)
from .tao import build_tao_stack

__all__ = [
    "DownstreamService",
    "Incident",
    "IncidentInjector",
    "ServiceCallResult",
    "ServiceParams",
    "ServiceRegistry",
    "build_tao_stack",
]
