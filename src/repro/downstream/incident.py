"""Fault injection for reproducing the §5.5 production incidents."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..sim.kernel import Simulator
from .service import DownstreamService


@dataclass(frozen=True)
class Incident:
    """A capacity-degradation window on one service.

    Models events like the WTCache release whose KVStore bug throttled
    requests: between ``start_s`` and ``end_s`` the service runs at
    ``degraded_factor`` of its capacity, then recovers.
    """

    service_name: str
    start_s: float
    end_s: float
    degraded_factor: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("end_s must exceed start_s")
        if not 0 <= self.degraded_factor < 1:
            raise ValueError("degraded_factor must be in [0, 1)")


class IncidentInjector:
    """Schedules incidents onto services."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.injected: List[Incident] = []

    def inject(self, service: DownstreamService, incident: Incident) -> None:
        if incident.service_name != service.name:
            raise ValueError(
                f"incident targets {incident.service_name!r}, got service "
                f"{service.name!r}")
        self.sim.call_at(incident.start_s,
                         lambda: service.set_capacity_factor(
                             incident.degraded_factor))
        self.sim.call_at(incident.end_s,
                         lambda: service.set_capacity_factor(1.0))
        self.injected.append(incident)
