"""TAO and the WTCache/KVStore stack used in the §5.5 incidents.

The paper's first incident: a new WTCache release had a bug in its
persistent KVStore path; KVStore throttled WTCache, WTCache dropped
reads/writes, and XFaaS functions calling WTCache received back-pressure
— which the AIMD controller turned into reduced function RPS, protecting
TAO from the retry storm.

This module builds that topology:

    functions → WTCache → KVStore
                  ↘ TAO (the social-graph database)
"""

from __future__ import annotations

from typing import Tuple

from ..sim.kernel import Simulator
from .service import DownstreamService, ServiceParams, ServiceRegistry


def build_tao_stack(sim: Simulator, registry: ServiceRegistry,
                    tao_capacity_rps: float = 5000.0,
                    wtcache_capacity_rps: float = 2000.0,
                    kvstore_capacity_rps: float = 1500.0,
                    ) -> Tuple[DownstreamService, DownstreamService,
                               DownstreamService]:
    """Create TAO, WTCache, KVStore with the §5.5 dependency shape."""
    tao = DownstreamService(
        sim, "tao", ServiceParams(capacity_rps=tao_capacity_rps))
    kvstore = DownstreamService(
        sim, "kvstore", ServiceParams(capacity_rps=kvstore_capacity_rps))
    wtcache = DownstreamService(
        sim, "wtcache", ServiceParams(capacity_rps=wtcache_capacity_rps),
        depends_on=[kvstore, tao], amplification=0.5,
        dependency_coupling=0.9)
    registry.register(tao)
    registry.register(kvstore)
    registry.register(wtcache)
    return tao, wtcache, kvstore
