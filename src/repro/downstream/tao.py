"""TAO and the WTCache/KVStore stack used in the §5.5 incidents.

The paper's first incident: a new WTCache release had a bug in its
persistent KVStore path; KVStore throttled WTCache, WTCache dropped
reads/writes, and XFaaS functions calling WTCache received back-pressure
— which the AIMD controller turned into reduced function RPS, protecting
TAO from the retry storm.

This module builds that topology:

    functions → WTCache → KVStore
                  ↘ TAO (the social-graph database)
"""

from __future__ import annotations

from typing import Tuple

from ..sim.kernel import Simulator
from .service import DownstreamService, ServiceParams, ServiceRegistry


def build_tao_stack(sim: Simulator, registry: ServiceRegistry,
                    tao_capacity_rps: float = 5000.0,
                    wtcache_capacity_rps: float = 2000.0,
                    kvstore_capacity_rps: float = 1500.0,
                    rng_prefix: str = "",
                    ) -> Tuple[DownstreamService, DownstreamService,
                               DownstreamService]:
    """Create TAO, WTCache, KVStore with the §5.5 dependency shape.

    ``rng_prefix`` qualifies the services' RNG stream names (e.g.
    ``"region-00/"``): parsim builds one stack per region and needs
    each region's draw sequences independent of shard grouping.
    """
    tao = DownstreamService(
        sim, "tao", ServiceParams(capacity_rps=tao_capacity_rps),
        rng_name=f"service/{rng_prefix}tao")
    kvstore = DownstreamService(
        sim, "kvstore", ServiceParams(capacity_rps=kvstore_capacity_rps),
        rng_name=f"service/{rng_prefix}kvstore")
    wtcache = DownstreamService(
        sim, "wtcache", ServiceParams(capacity_rps=wtcache_capacity_rps),
        depends_on=[kvstore, tao], amplification=0.5,
        dependency_coupling=0.9,
        rng_name=f"service/{rng_prefix}wtcache")
    registry.register(tao)
    registry.register(kvstore)
    registry.register(wtcache)
    return tao, wtcache, kvstore
