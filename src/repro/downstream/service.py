"""Load-dependent downstream service model (§4.6.3, §5.5).

A downstream service (TAO, WTCache, KVStore, …) has a healthy capacity
in requests/second.  Its load is tracked in rolling windows; when load
exceeds capacity the service starts throwing **back-pressure exceptions**
with probability growing in the overload, and a fraction of requests
fail outright (which is what produced the §5.5 retry-amplification
domino).  Services can depend on other services: failures cascade with
an amplification factor, reproducing the WTCache→KVStore incident shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.kernel import Simulator


@dataclass(frozen=True)
class ServiceParams:
    """Capacity and overload behaviour of one service."""

    capacity_rps: float = 1000.0
    #: Load/capacity ratio where back-pressure exceptions begin.
    backpressure_knee: float = 0.9
    #: Exception probability grows linearly from 0 at the knee to this
    #: value at 2× capacity.
    max_exception_prob: float = 0.9
    #: Fraction of *exceeding* requests that fail hard (caller error).
    failure_prob_at_2x: float = 0.3
    window_s: float = 10.0

    def __post_init__(self) -> None:
        if self.capacity_rps <= 0:
            raise ValueError("capacity_rps must be positive")
        if self.backpressure_knee <= 0:
            raise ValueError("backpressure_knee must be positive")


@dataclass
class ServiceCallResult:
    """Outcome of a batch of requests from one function call."""

    ok: int = 0
    exceptions: int = 0
    failures: int = 0


class DownstreamService:
    """One downstream service with overload-driven back-pressure."""

    def __init__(self, sim: Simulator, name: str,
                 params: ServiceParams = ServiceParams(),
                 depends_on: Optional[List["DownstreamService"]] = None,
                 amplification: float = 1.0,
                 dependency_coupling: float = 1.0,
                 rng_name: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.params = params
        self.depends_on = depends_on or []
        self.amplification = amplification
        if not 0.0 <= dependency_coupling <= 1.0:
            raise ValueError("dependency_coupling must be in [0, 1]")
        #: How strongly an overloaded dependency throttles this service
        #: (§5.5: KVStore throttled WTCache's requests).  0 = decoupled,
        #: 1 = capacity scales fully with the worst dependency's health.
        self.dependency_coupling = dependency_coupling
        self._window_start = 0.0
        self._window_requests = 0.0
        self._current_load_rps = 0.0
        #: Multiplier on capacity for incident injection (1.0 = healthy).
        self._capacity_factor = 1.0
        self.total_requests = 0
        self.total_exceptions = 0
        self.total_failures = 0
        self.exception_counter = None  # optional metrics Counter
        # parsim builds one stack per region and qualifies the stream
        # name by region; the default keeps the legacy global stream.
        self.rng = sim.rng.stream(rng_name or f"service/{name}")

    # ------------------------------------------------------------------
    @property
    def health(self) -> float:
        """1.0 when within capacity, degrading as overload grows."""
        ratio = self.load_ratio
        if ratio <= 1.0:
            return 1.0
        return max(0.1, 1.0 / ratio)

    @property
    def effective_capacity(self) -> float:
        capacity = self.params.capacity_rps * self._capacity_factor
        if self.depends_on and self.dependency_coupling > 0:
            worst = min(dep.health for dep in self.depends_on)
            capacity *= (1.0 - self.dependency_coupling * (1.0 - worst))
        return capacity

    @property
    def load_rps(self) -> float:
        self._roll_window()
        return self._current_load_rps

    @property
    def load_ratio(self) -> float:
        return self.load_rps / max(self.effective_capacity, 1e-9)

    def set_capacity_factor(self, factor: float) -> None:
        """Incident injection: degrade (or restore) service capacity."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        self._capacity_factor = factor

    # ------------------------------------------------------------------
    def call(self, n: int, caller: str = "?") -> ServiceCallResult:
        """Issue ``n`` requests; returns per-batch ok/exception/failure."""
        if n <= 0:
            return ServiceCallResult()
        self._roll_window()
        self._window_requests += n
        self.total_requests += n
        result = ServiceCallResult()
        ratio = self.load_ratio
        exception_prob = self._exception_prob(ratio)
        failure_prob = self._failure_prob(ratio)
        for _ in range(n):
            roll = self.rng.random()
            if roll < failure_prob:
                result.failures += 1
            elif roll < failure_prob + exception_prob:
                result.exceptions += 1
            else:
                result.ok += 1
        self.total_exceptions += result.exceptions
        self.total_failures += result.failures
        if self.exception_counter is not None and result.exceptions:
            self.exception_counter.add(self.sim.now, result.exceptions)
        # Cascade: requests amplify into dependencies; failures upstream
        # amplify retries downstream (§5.5's domino effect).
        for dep in self.depends_on:
            amplified = int(round(n * self.amplification))
            if result.failures or result.exceptions:
                amplified = int(round(amplified * 1.5))
            if amplified > 0:
                dep.call(amplified, caller=f"{caller}->{self.name}")
        return result

    # ------------------------------------------------------------------
    def _exception_prob(self, ratio: float) -> float:
        p = self.params
        if ratio <= p.backpressure_knee:
            return 0.0
        frac = min((ratio - p.backpressure_knee) / (2.0 - p.backpressure_knee),
                   1.0)
        return p.max_exception_prob * frac

    def _failure_prob(self, ratio: float) -> float:
        p = self.params
        if ratio <= 1.0:
            return 0.0
        return min((ratio - 1.0) * p.failure_prob_at_2x, p.failure_prob_at_2x)

    def _roll_window(self) -> None:
        now = self.sim.now
        elapsed = now - self._window_start
        if elapsed >= self.params.window_s:
            self._current_load_rps = self._window_requests / elapsed
            self._window_start = now
            self._window_requests = 0.0


class ServiceRegistry:
    """Name → service lookup shared by workers and benchmarks."""

    def __init__(self) -> None:
        self._services: Dict[str, DownstreamService] = {}

    def register(self, service: DownstreamService) -> None:
        if service.name in self._services:
            raise ValueError(f"service {service.name!r} already registered")
        self._services[service.name] = service

    def get(self, name: str) -> DownstreamService:
        service = self._services.get(name)
        if service is None:
            raise KeyError(f"unknown downstream service {name!r}")
        return service

    def maybe_get(self, name: str) -> Optional[DownstreamService]:
        return self._services.get(name)

    def names(self) -> List[str]:
        return sorted(self._services)
