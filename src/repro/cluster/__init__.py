"""Cluster substrate: machines, regions, network, topology."""

from .machine import CpuAccount, MachineSpec
from .network import NetworkModel
from .region import Region
from .topology import (
    FIG5_RELATIVE_CAPACITY,
    Topology,
    build_topology,
    size_topology_for_utilization,
)

__all__ = [
    "CpuAccount",
    "FIG5_RELATIVE_CAPACITY",
    "MachineSpec",
    "NetworkModel",
    "Region",
    "Topology",
    "build_topology",
    "size_topology_for_utilization",
]
