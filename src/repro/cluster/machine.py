"""Hardware model of a worker machine.

The paper's workers are physical servers with 64 GB of memory (§5.2)
hosting an always-on language runtime.  CPU is accounted in millions of
instructions per second per core, matching the paper's use of "MIPS" as
the per-call CPU-usage metric (§3.2): a call carrying ``cpu_minstr``
million instructions consumes ``cpu_minstr / core_mips`` core-seconds.

Calls are mostly IO-bound (Table 3: event-triggered calls carry ~11 M
instructions but run for hundreds of milliseconds), so a running call
contributes a *fractional* CPU load — its core-seconds spread over its
wall-clock duration.  :class:`CpuAccount` integrates that load over time
to produce the utilization numbers of Figures 7/8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util import add_slots


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a worker machine's hardware."""

    cores: int = 32
    core_mips: float = 4000.0     # million instructions / second / core
    memory_mb: float = 64 * 1024  # paper §5.2: workers have 64 GB
    ssd_gb: float = 512.0
    threads: int = 256            # concurrent calls one runtime process holds

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if self.core_mips <= 0:
            raise ValueError(f"core_mips must be positive, got {self.core_mips}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if self.threads <= 0:
            raise ValueError(f"threads must be positive, got {self.threads}")

    @property
    def total_mips(self) -> float:
        """Aggregate instruction throughput of the machine."""
        return self.cores * self.core_mips


@add_slots
@dataclass
class CpuAccount:
    """Integrates fractional CPU load over time into utilization.

    A call that needs ``c`` core-seconds over a duration ``d`` adds load
    ``c/d`` while running.  Utilization over a window is accumulated
    core-seconds divided by ``cores × window`` — the quantity plotted in
    the paper's Figures 7 and 8.
    """

    cores: int
    busy_core_seconds: float = 0.0
    load: float = field(default=0.0)
    _last_change: float = field(default=0.0, repr=False)
    _window_start: float = field(default=0.0, repr=False)
    _window_busy: float = field(default=0.0, repr=False)

    def on_start(self, now: float, load: float) -> None:
        """A call contributing ``load`` cores began running."""
        if load < 0:
            raise ValueError(f"load must be >= 0, got {load}")
        self._settle(now)
        self.load += load

    def on_finish(self, now: float, load: float) -> None:
        """A call contributing ``load`` cores finished."""
        self._settle(now)
        self.load -= load
        if self.load < -1e-9:
            raise RuntimeError(f"cpu load went negative: {self.load}")
        self.load = max(self.load, 0.0)

    def _settle(self, now: float) -> None:
        elapsed = now - self._last_change
        if elapsed > 0:
            # Load can transiently exceed core count in the model (queued
            # CPU); utilization is capped at 100% like a real machine.
            effective = min(self.load, float(self.cores))
            delta = effective * elapsed
            self.busy_core_seconds += delta
            self._window_busy += delta
            self._last_change = now

    def utilization_total(self, now: float) -> float:
        """Utilization since account creation (t=0)."""
        self._settle(now)
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_core_seconds / (self.cores * now))

    def take_window(self, now: float) -> float:
        """Utilization since the last take_window call (rolling windows)."""
        self._settle(now)
        span = now - self._window_start
        util = 0.0
        if span > 0:
            util = min(1.0, self._window_busy / (self.cores * span))
        self._window_start = now
        self._window_busy = 0.0
        return util
