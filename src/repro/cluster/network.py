"""Cross-region network model.

Paper §2.3: cross-region bandwidth is ~10× lower than intra-region, and
cross-region latency is ~100–1000× longer.  Components use this model to
(a) delay cross-region operations and (b) let the Global Traffic
Conductor prefer *nearby* regions when shifting load.
"""

from __future__ import annotations

from typing import Dict, Sequence


class NetworkModel:
    """Pairwise latency/bandwidth between regions on a ring layout.

    Regions are placed on a logical ring; "distance" is the hop count on
    the ring, which gives the GTC a meaningful notion of *nearby regions*
    (§4.4) without a full geographic model.
    """

    def __init__(self, region_names: Sequence[str],
                 intra_latency_s: float = 0.0005,
                 cross_latency_base_s: float = 0.05,
                 cross_latency_per_hop_s: float = 0.01,
                 intra_bandwidth_gbps: float = 100.0,
                 cross_bandwidth_gbps: float = 10.0) -> None:
        if not region_names:
            raise ValueError("need at least one region")
        if len(set(region_names)) != len(region_names):
            raise ValueError("duplicate region names")
        self.region_names = list(region_names)
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.region_names)}
        self.intra_latency_s = intra_latency_s
        self.cross_latency_base_s = cross_latency_base_s
        self.cross_latency_per_hop_s = cross_latency_per_hop_s
        self.intra_bandwidth_gbps = intra_bandwidth_gbps
        self.cross_bandwidth_gbps = cross_bandwidth_gbps

    def hops(self, src: str, dst: str) -> int:
        """Ring distance between two regions (0 for same region)."""
        i, j = self._index[src], self._index[dst]
        n = len(self.region_names)
        d = abs(i - j)
        return min(d, n - d)

    def latency(self, src: str, dst: str) -> float:
        """One-way latency in seconds."""
        if src == dst:
            return self.intra_latency_s
        return (self.cross_latency_base_s +
                self.cross_latency_per_hop_s * (self.hops(src, dst) - 1))

    def bandwidth_gbps(self, src: str, dst: str) -> float:
        return (self.intra_bandwidth_gbps if src == dst
                else self.cross_bandwidth_gbps)

    def transfer_time(self, src: str, dst: str, size_mb: float) -> float:
        """Seconds to move ``size_mb`` between regions (latency + serialization)."""
        if size_mb < 0:
            raise ValueError(f"size_mb must be >= 0, got {size_mb}")
        gbps = self.bandwidth_gbps(src, dst)
        return self.latency(src, dst) + (size_mb * 8.0 / 1000.0) / gbps

    def neighbors_by_distance(self, src: str) -> list:
        """All other regions sorted by ring distance then name (stable)."""
        return sorted((r for r in self.region_names if r != src),
                      key=lambda r: (self.hops(src, r), r))

    # ------------------------------------------------------------------
    # Conservative-parallel-simulation bounds (repro.parsim)
    # ------------------------------------------------------------------
    def lookahead(self) -> float:
        """Minimum one-way latency between *distinct* regions.

        This is the conservative parallel-DES lookahead window: any
        cross-region interaction started at time ``t`` cannot take
        effect in another region before ``t + lookahead()``, so region
        shards synchronized at ``T`` may safely advance to
        ``T + lookahead()`` without hearing from each other.

        A single-region topology has no distinct pair; the value
        degenerates to ``intra_latency_s``, which is far too small to be
        a useful window — parallel mode must refuse or fall back to
        serial in that case (see :mod:`repro.parsim`).
        """
        names = self.region_names
        if len(names) < 2:
            return self.intra_latency_s
        return min(self.latency(a, b)
                   for i, a in enumerate(names) for b in names[i + 1:])

    def max_latency(self) -> float:
        """Maximum one-way latency between any pair of distinct regions.

        Used by :mod:`repro.parsim` as the uniform delay on broadcast
        state (RIM reports): every shard — including the sender's own —
        sees a report after the same delay, so global aggregates are
        identical regardless of how regions are grouped into shards.
        """
        names = self.region_names
        if len(names) < 2:
            return self.intra_latency_s
        return max(self.latency(a, b)
                   for i, a in enumerate(names) for b in names[i + 1:])
