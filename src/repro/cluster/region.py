"""Datacenter regions and their worker-pool capacity."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .machine import MachineSpec


@dataclass
class Region:
    """A datacenter region hosting XFaaS worker pools.

    Paper §2.3: hardware within a region is fungible; capacity across
    regions is wildly uneven (Fig 5), which forces cross-region load
    balancing.  ``worker_counts`` maps namespace name → number of worker
    machines dedicated to that namespace in this region (worker pools
    are per-namespace, §4.5).
    """

    name: str
    worker_counts: Dict[str, int] = field(default_factory=dict)
    machine_spec: MachineSpec = field(default_factory=MachineSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        for ns, count in self.worker_counts.items():
            if count < 0:
                raise ValueError(
                    f"negative worker count for namespace {ns!r}: {count}")

    def workers_for(self, namespace: str) -> int:
        return self.worker_counts.get(namespace, 0)

    def total_workers(self) -> int:
        return sum(self.worker_counts.values())

    def capacity_mips(self, namespace: str) -> float:
        """Aggregate instruction throughput of one namespace's pool here."""
        return self.workers_for(namespace) * self.machine_spec.total_mips
