"""Topology construction: regions + network, with uneven capacity.

Figure 5 of the paper shows XFaaS worker-pool capacity varying severely
across regions (due to incremental hardware acquisition).  The default
profile here reproduces that shape: a roughly geometric decay from the
largest region to the smallest, spanning about a 10× range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .machine import MachineSpec
from .network import NetworkModel
from .region import Region

#: Relative worker-pool sizes across 12 regions, shaped like Figure 5:
#: a few large regions, a long tail of small ones (~10x spread).
FIG5_RELATIVE_CAPACITY: Sequence[float] = (
    1.00, 0.82, 0.71, 0.58, 0.47, 0.40, 0.31, 0.25, 0.19, 0.15, 0.12, 0.09,
)


@dataclass
class Topology:
    """A set of regions plus the network connecting them."""

    regions: List[Region]
    network: NetworkModel

    def __post_init__(self) -> None:
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError("duplicate region names in topology")
        if set(names) != set(self.network.region_names):
            raise ValueError("network regions do not match topology regions")

    @property
    def region_names(self) -> List[str]:
        return [r.name for r in self.regions]

    def region(self, name: str) -> Region:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(f"unknown region {name!r}")

    def total_workers(self, namespace: str) -> int:
        return sum(r.workers_for(namespace) for r in self.regions)

    def capacity_share(self, namespace: str) -> Dict[str, float]:
        """Fraction of the namespace's global capacity in each region."""
        total = self.total_workers(namespace)
        if total == 0:
            return {r.name: 0.0 for r in self.regions}
        return {r.name: r.workers_for(namespace) / total
                for r in self.regions}

    def lookahead(self) -> float:
        """Conservative parallel-simulation window for this topology.

        Delegates to :meth:`NetworkModel.lookahead`: the minimum one-way
        cross-region latency, i.e. how far region shards can advance
        between synchronization barriers without missing a cross-region
        interaction.  Degenerates to the (tiny) intra-region latency for
        single-region topologies, where parallel mode is pointless.
        """
        return self.network.lookahead()


def build_topology(n_regions: int = 12,
                   workers_per_unit: int = 40,
                   namespace: str = "default",
                   relative_capacity: Optional[Sequence[float]] = None,
                   machine_spec: Optional[MachineSpec] = None,
                   extra_namespaces: Optional[Dict[str, int]] = None) -> Topology:
    """Build an uneven-capacity topology in the shape of Figure 5.

    Parameters
    ----------
    n_regions:
        Number of regions (paper evaluates 12 in Fig 7).
    workers_per_unit:
        Worker count of the largest region; other regions scale by the
        relative-capacity profile (minimum 1 worker).
    relative_capacity:
        Optional explicit profile; defaults to :data:`FIG5_RELATIVE_CAPACITY`
        cycled/truncated to ``n_regions``.
    extra_namespaces:
        Additional namespace → workers-per-unit mappings; each namespace
        gets its own dedicated pool in every region (paper §4.5).
    """
    if n_regions <= 0:
        raise ValueError(f"n_regions must be positive, got {n_regions}")
    if workers_per_unit <= 0:
        raise ValueError(
            f"workers_per_unit must be positive, got {workers_per_unit}")
    profile = list(relative_capacity) if relative_capacity else \
        [FIG5_RELATIVE_CAPACITY[i % len(FIG5_RELATIVE_CAPACITY)]
         for i in range(n_regions)]
    if len(profile) < n_regions:
        raise ValueError("relative_capacity shorter than n_regions")
    spec = machine_spec or MachineSpec()
    regions = []
    for i in range(n_regions):
        counts = {namespace: max(1, round(workers_per_unit * profile[i]))}
        for ns, unit in (extra_namespaces or {}).items():
            counts[ns] = max(1, round(unit * profile[i]))
        regions.append(Region(name=f"region-{i:02d}", worker_counts=counts,
                              machine_spec=spec))
    network = NetworkModel([r.name for r in regions])
    return Topology(regions=regions, network=network)


def size_topology_for_utilization(
        demand_minstr_per_s: float,
        target_utilization: float = 0.66,
        n_regions: int = 12,
        namespace: str = "default",
        machine_spec: Optional[MachineSpec] = None,
        relative_capacity: Optional[Sequence[float]] = None) -> Topology:
    """Build a Fig-5-shaped topology sized so the given CPU demand lands
    at roughly ``target_utilization`` of fleet capacity.

    The paper intentionally under-provisions relative to *peak* demand
    (§1.2); passing the workload's *mean* demand here with target 0.66
    reproduces that regime: peaks exceed capacity and must be absorbed
    by time-shifting and deferral.
    """
    if demand_minstr_per_s <= 0:
        raise ValueError("demand must be positive")
    if not 0 < target_utilization < 1:
        raise ValueError("target_utilization must be in (0, 1)")
    spec = machine_spec or MachineSpec()
    needed_mips = demand_minstr_per_s / target_utilization
    needed_workers = max(n_regions, needed_mips / spec.total_mips)
    profile = list(relative_capacity) if relative_capacity else \
        [FIG5_RELATIVE_CAPACITY[i % len(FIG5_RELATIVE_CAPACITY)]
         for i in range(n_regions)]
    profile = profile[:n_regions]
    # Largest-remainder allocation of the worker budget across the
    # Fig-5 profile (min 1 per region) — plain rounding overshoots
    # badly when regions hold only a few workers each.
    total_profile = sum(profile)
    ideal = [needed_workers * p / total_profile for p in profile]
    counts = [max(1, int(x)) for x in ideal]
    remainders = sorted(range(n_regions),
                        key=lambda i: ideal[i] - int(ideal[i]),
                        reverse=True)
    shortfall = max(0, round(needed_workers) - sum(counts))
    for i in remainders[:shortfall]:
        counts[i] += 1

    machine = spec
    regions = []
    for i in range(n_regions):
        regions.append(Region(name=f"region-{i:02d}",
                              worker_counts={namespace: counts[i]},
                              machine_spec=machine))
    network = NetworkModel([r.name for r in regions])
    return Topology(regions=regions, network=network)
