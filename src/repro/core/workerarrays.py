"""Struct-of-arrays store for per-worker hot state (the fleet layer).

Two optimization rounds (PR 1 kernel, PR 4 component fast path) left the
per-*event* cost low enough that fleet *size* became the binding
ceiling: every admission probe, two-choices draw, and load-score read
chased pointers through a Python ``Worker`` object, and a 100k-worker
fleet meant 100k such objects on every aggregate scan.  This module
flips the layout: one :class:`WorkerArrays` per region holds the hot
scalars in flat ``array`` columns, indexed by a dense integer worker
index, and the ``Worker`` objects become *views* — they keep the cold
machinery (JIT ramp, resident-set LRU, call bookkeeping, failure
injection) and read/write their row of the columns.

Layout contract
---------------
Columns are plain :mod:`array` arrays, so reads return native Python
ints/floats and every arithmetic expression computes bit-for-bit the
same result as the attribute-chasing code it replaced — trace digests
are unchanged by the refactor.  Column meanings:

``running``
    Live call count (mirror of ``len(worker._running)``).
``cpu_load``
    The worker's :class:`~repro.cluster.machine.CpuAccount` load, copied
    after every start/finish (same float object value).
``mem_mb``
    ``baseline + resident + live`` memory, recomputed (not accumulated)
    after every mutation so the float equals the old expression exactly.
``threads`` / ``cores`` / ``memory_mb``
    Per-worker machine constants, denominators of the load score.
``online`` / ``group``
    Admission flag and locality-group id (the ``Worker`` properties
    ``online`` / ``locality_group`` are backed by these columns).

Aggregates
----------
``total_running`` is maintained O(1) on the execute/complete path so
fleet-level demand signals (RIM free threads) never need an O(n) scan
over worker objects inside a sim-clock handler — the anti-pattern
simlint rule SL008 flags.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (worker views)
    from .worker import Worker


class WorkerArrays:
    """Dense per-region columns of worker hot state.

    Rows are append-only: a worker keeps its integer index for life.
    ``workers[i]`` is the thin :class:`~repro.core.worker.Worker` view
    for row ``i`` (cold paths — code deploy, crash injection — go
    through it).
    """

    __slots__ = ("workers", "running", "cpu_load", "mem_mb", "threads",
                 "cores", "memory_mb", "online", "group", "total_running")

    def __init__(self) -> None:
        #: index -> Worker view, aligned with every column.
        self.workers: List["Worker"] = []
        self.running = array("l")
        self.cpu_load = array("d")
        self.mem_mb = array("d")
        self.threads = array("l")
        self.cores = array("l")
        self.memory_mb = array("d")
        self.online = array("b")
        self.group = array("l")
        #: Sum of ``running`` over all rows, maintained incrementally.
        self.total_running = 0

    def __len__(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    def add(self, worker: "Worker", threads: int, cores: int,
            memory_mb: float, mem0_mb: float) -> int:
        """Append a row for ``worker``; returns its permanent index."""
        idx = len(self.workers)
        self.workers.append(worker)
        self.running.append(0)
        self.cpu_load.append(0.0)
        self.mem_mb.append(mem0_mb)
        self.threads.append(threads)
        self.cores.append(cores)
        self.memory_mb.append(memory_mb)
        self.online.append(1)
        self.group.append(0)
        return idx

    def adopt(self, worker: "Worker") -> int:
        """Re-home ``worker`` (and its current hot state) into this store.

        Used when a pool is assembled from workers constructed against
        private stores (tests, elastic pools built standalone).  The
        worker's row in its old store is left behind unreferenced.
        """
        old = worker._arrays
        if old is self:
            return worker._index
        i = worker._index
        idx = len(self.workers)
        self.workers.append(worker)
        self.running.append(old.running[i])
        self.cpu_load.append(old.cpu_load[i])
        self.mem_mb.append(old.mem_mb[i])
        self.threads.append(old.threads[i])
        self.cores.append(old.cores[i])
        self.memory_mb.append(old.memory_mb[i])
        self.online.append(old.online[i])
        self.group.append(old.group[i])
        self.total_running += old.running[i]
        old.total_running -= old.running[i]
        worker._arrays = self
        worker._index = idx
        return idx

    # ------------------------------------------------------------------
    # Whole-store aggregates (order-stable, index order)
    # ------------------------------------------------------------------
    def capacity_threads(self) -> int:
        """Total thread capacity across all rows (static between adds)."""
        return sum(self.threads)

    def free_threads(self) -> int:
        """Capacity minus live calls; admission caps running <= threads
        per worker, so the difference never goes negative per row."""
        return sum(self.threads) - self.total_running
