"""Adaptive concurrency control protecting downstream services (§4.6.3).

Three cooperating mechanisms, per function:

* **AIMD rate control** — downstream services throw back-pressure
  exceptions when overloaded.  When a function's exceptions per minute
  exceed the service's threshold, its RPS limit is cut multiplicatively
  (``r ← r·M``); windows free of back-pressure raise it additively
  (``r ← r + I``).  The paper's production threshold example is 5,000
  exceptions/min for the largest services.
* **Concurrency limit** — a per-function cap on simultaneously running
  instances (safety net for services that do not emit back-pressure).
* **Slow start** — when a function's call volume is above ``T`` calls
  per window ``W``, its dispatch volume may grow at most ``α`` per
  window, giving downstream caches/autoscalers time to warm up.
  Production values: W = 1 min, T = 100 calls, α = 20%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..util import add_slots
from ..workloads.spec import FunctionSpec
from .ratelimiter import TokenBucket


@dataclass(frozen=True)
class CongestionParams:
    """Tunables of §4.6.3 with the paper's production defaults."""

    multiplicative_decrease: float = 0.5   # M
    additive_increase_rps: float = 10.0    # I, per adjustment window
    adjust_window_s: float = 60.0
    backpressure_threshold_per_min: float = 100.0
    slow_start_window_s: float = 60.0      # W
    slow_start_threshold_calls: float = 100.0  # T
    slow_start_growth: float = 0.20        # α
    initial_rps: float = 1.0e9             # effectively uncapped until AIMD engages
    min_rps: float = 0.1

    def __post_init__(self) -> None:
        if not 0 < self.multiplicative_decrease < 1:
            raise ValueError("multiplicative_decrease must be in (0, 1)")
        if self.additive_increase_rps <= 0:
            raise ValueError("additive_increase_rps must be positive")
        if self.slow_start_growth <= 0:
            raise ValueError("slow_start_growth must be positive")


@add_slots
@dataclass
class _FunctionState:
    spec: FunctionSpec
    rps_limit: float
    bucket: TokenBucket
    running: int = 0
    #: Back-pressure exceptions per downstream service this window.
    window_exceptions: Dict[str, float] = field(default_factory=dict)
    #: Dispatches in the current and previous slow-start windows.
    window_dispatches: float = 0.0
    prev_window_dispatches: float = 0.0
    aimd_engaged: bool = False


class CongestionController:
    """Per-function AIMD + concurrency limit + slow start."""

    def __init__(self, params: Optional[CongestionParams] = None) -> None:
        self.params = params or CongestionParams()
        # Slow-start constants folded once for the dispatch gate.
        self._ss_growth_factor = 1.0 + self.params.slow_start_growth
        self._ss_threshold = self.params.slow_start_threshold_calls
        self._functions: Dict[str, _FunctionState] = {}
        #: Per-service back-pressure thresholds (exceptions/min), set by
        #: service owners (§4.6.3); falls back to the params default.
        self._service_thresholds: Dict[str, float] = {}
        self.decrease_count = 0
        self.increase_count = 0
        self.slow_start_denials = 0
        self.concurrency_denials = 0
        self.rate_denials = 0

    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        if spec.name in self._functions:
            return
        p = self.params
        self._functions[spec.name] = _FunctionState(
            spec=spec, rps_limit=p.initial_rps,
            bucket=TokenBucket(rate=p.initial_rps, burst_s=1.0))

    def set_service_threshold(self, service: str,
                              exceptions_per_min: float) -> None:
        if exceptions_per_min <= 0:
            raise ValueError("threshold must be positive")
        self._service_thresholds[service] = exceptions_per_min

    # ------------------------------------------------------------------
    # Dispatch-time gates
    # ------------------------------------------------------------------
    def can_dispatch(self, name: str, now: float) -> bool:
        """All three gates; consumes a rate token when allowed."""
        st = self._functions.get(name)
        if st is None:
            raise KeyError(
                f"function {name!r} not registered with congestion controller")
        return self.can_dispatch_state(st, now)

    def state_for(self, name: str) -> _FunctionState:
        """Resolve a function's gate state once (scheduler sweeps gate
        many calls of the same function back to back)."""
        return self._require(name)

    def can_dispatch_state(self, st: _FunctionState, now: float) -> bool:
        """:meth:`can_dispatch` on a pre-resolved :meth:`state_for`."""
        limit = st.spec.concurrency_limit
        if limit is not None and st.running >= limit:
            self.concurrency_denials += 1
            return False
        allowance = st.prev_window_dispatches * self._ss_growth_factor
        if allowance < self._ss_threshold:
            allowance = self._ss_threshold
        if st.window_dispatches >= allowance:
            self.slow_start_denials += 1
            return False
        # TokenBucket.set_rate_and_take inlined (identical arithmetic):
        # this gate runs for every dispatch attempt of every sweep.
        bucket = st.bucket
        rate = st.rps_limit
        tokens = bucket.tokens
        burst_s = bucket.burst_s
        min_tokens = bucket.min_tokens
        old_rate = bucket.rate
        elapsed = now - bucket.last_refill
        if elapsed > 0:
            if old_rate <= 0:
                cap = 0.0
            else:
                cap = old_rate * burst_s
                if cap < min_tokens:
                    cap = min_tokens
            tokens += elapsed * old_rate
            if tokens > cap:
                tokens = cap
            bucket.last_refill = now
        bucket.rate = rate
        if rate <= 0:
            cap = 0.0
        else:
            cap = rate * burst_s
            if cap < min_tokens:
                cap = min_tokens
        if tokens > cap:
            tokens = cap
        if tokens >= 1.0:
            bucket.tokens = tokens - 1.0
            return True
        bucket.tokens = tokens
        self.rate_denials += 1
        return False

    def _slow_start_allows(self, st: _FunctionState) -> bool:
        p = self.params
        allowance = max(p.slow_start_threshold_calls,
                        st.prev_window_dispatches * (1.0 + p.slow_start_growth))
        return st.window_dispatches < allowance

    def on_dispatch(self, name: str) -> None:
        st = self._require(name)
        st.running += 1
        st.window_dispatches += 1

    def cancel_dispatch(self, name: str) -> None:
        """Undo on_dispatch for a call that could not be placed."""
        st = self._require(name)
        if st.running > 0:
            st.running -= 1
        st.window_dispatches = max(0.0, st.window_dispatches - 1.0)

    def on_finish(self, name: str) -> None:
        st = self._require(name)
        if st.running <= 0:
            raise RuntimeError(f"on_finish without dispatch for {name!r}")
        st.running -= 1

    def on_backpressure(self, name: str, service: str, n: float = 1.0) -> None:
        """A downstream ``service`` threw ``n`` back-pressure exceptions."""
        st = self._require(name)
        st.window_exceptions[service] = st.window_exceptions.get(service, 0.0) + n

    def running(self, name: str) -> int:
        return self._require(name).running

    def rps_limit(self, name: str) -> float:
        return self._require(name).rps_limit

    # ------------------------------------------------------------------
    # Periodic adjustment (call every adjust_window_s)
    # ------------------------------------------------------------------
    def adjust(self, now: float) -> None:
        """Run one AIMD window for every function and roll slow-start windows."""
        p = self.params
        scale = p.adjust_window_s / 60.0
        for st in self._functions.values():
            over = any(
                count > self._service_thresholds.get(
                    service, p.backpressure_threshold_per_min) * scale
                for service, count in st.window_exceptions.items())
            if over:
                # First decrease anchors the limit to the observed rate so
                # the cut bites immediately rather than decaying from the
                # uncapped initial limit.
                if not st.aimd_engaged:
                    observed_rps = st.window_dispatches / p.adjust_window_s
                    st.rps_limit = max(observed_rps, p.min_rps)
                    st.aimd_engaged = True
                st.rps_limit = max(
                    st.rps_limit * p.multiplicative_decrease, p.min_rps)
                self.decrease_count += 1
            elif st.aimd_engaged:
                st.rps_limit = st.rps_limit + p.additive_increase_rps
                self.increase_count += 1
                if st.rps_limit >= p.initial_rps:
                    st.rps_limit = p.initial_rps
                    st.aimd_engaged = False
            st.window_exceptions.clear()
            st.prev_window_dispatches = st.window_dispatches
            st.window_dispatches = 0.0

    # ------------------------------------------------------------------
    def max_concurrency_estimate(self, name: str,
                                 exec_time_s: float) -> float:
        """§4.6.3's R = r × p estimate of concurrent instances."""
        st = self._require(name)
        r = st.rps_limit
        if math.isinf(r):
            return math.inf
        return r * exec_time_s

    def _require(self, name: str) -> _FunctionState:
        st = self._functions.get(name)
        if st is None:
            raise KeyError(
                f"function {name!r} not registered with congestion controller")
        return st
