"""RunQ: the scheduler's ordered output queue with flow control (§4.4).

The paper describes "a single ordered RunQ of function calls that will
be dispatched for execution" — ordered by the same criteria as the
FuncBuffers (criticality first, then deadline), so a burst of deferred
batch work admitted earlier cannot head-of-line-block a critical call
admitted a tick later.

Its length is the scheduler's flow-control signal: a RunQ near capacity
slows both FuncBuffer→RunQ movement and DurableQ polling, so backlog
accumulates in the durable store rather than in scheduler memory.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from .call import CallState, FunctionCall


class RunQ:
    """Bounded priority queue of runnable calls."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List[Tuple[tuple, int, FunctionCall]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def free_space(self) -> int:
        return max(0, self.capacity - len(self._heap))

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def push(self, call: FunctionCall) -> None:
        if self.full:
            raise OverflowError("RunQ is full (flow control should prevent this)")
        call.state = CallState.RUNNABLE
        heapq.heappush(self._heap, (call.sort_key(), next(self._seq), call))

    def pop(self) -> Optional[FunctionCall]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def push_front(self, call: FunctionCall) -> None:
        """Return a call the WorkerLB could not place.

        In a priority queue this is just a push — the call keeps its
        priority and will be retried in order.
        """
        heapq.heappush(self._heap, (call.sort_key(), next(self._seq), call))

    def peek(self) -> Optional[FunctionCall]:
        return self._heap[0][2] if self._heap else None

    def fill_fraction(self) -> float:
        return len(self._heap) / self.capacity
