"""Distributed key-value store for oversized call arguments (§4.2).

"If a function's arguments are too large, the submitter stores the
arguments separately in a distributed key-value store."  The model: a
sharded store with per-shard capacity and size accounting; submitters
PUT spilled arguments before the batched DurableQ write, and workers GET
them at execution time.  Entries are deleted when their call finalizes,
so store occupancy tracks in-flight spilled calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.kernel import Simulator


@dataclass(frozen=True)
class KVStoreParams:
    """Shard count, latencies, and per-shard capacity."""

    shards: int = 8
    put_latency_s: float = 0.010
    get_latency_s: float = 0.005
    #: Per-shard capacity; PUTs beyond it are rejected (caller retries
    #: or fails the submission).
    shard_capacity_mb: float = 4096.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_capacity_mb <= 0:
            raise ValueError("shard_capacity_mb must be positive")


class DistributedKVStore:
    """Sharded argument store with size accounting."""

    def __init__(self, sim: Simulator,
                 params: KVStoreParams = KVStoreParams()) -> None:
        self.sim = sim
        self.params = params
        self._entries: Dict[str, tuple] = {}  # key → (shard, size_mb)
        self._shard_used_mb = [0.0] * params.shards
        self.put_count = 0
        self.get_count = 0
        self.delete_count = 0
        self.reject_count = 0

    def _shard_of(self, key: str) -> int:
        return hash(key) % self.params.shards

    def put(self, key: str, size_kb: float) -> bool:
        """Store an entry; False when the target shard is full."""
        if key in self._entries:
            raise KeyError(f"key {key!r} already stored")
        size_mb = size_kb / 1024.0
        shard = self._shard_of(key)
        if self._shard_used_mb[shard] + size_mb > \
                self.params.shard_capacity_mb:
            self.reject_count += 1
            return False
        self._entries[key] = (shard, size_mb)
        self._shard_used_mb[shard] += size_mb
        self.put_count += 1
        return True

    def contains(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> float:
        """Fetch an entry's size (the worker reads the args)."""
        if key not in self._entries:
            raise KeyError(f"key {key!r} not in store")
        self.get_count += 1
        return self._entries[key][1]

    def delete(self, key: str) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            shard, size_mb = entry
            self._shard_used_mb[shard] -= size_mb
            self.delete_count += 1

    @property
    def used_mb(self) -> float:
        return sum(self._shard_used_mb)

    @property
    def entry_count(self) -> int:
        return len(self._entries)
