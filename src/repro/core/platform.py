"""The XFaaS platform façade: builds and wires every Figure 6 component.

This is the main public entry point of the reproduction:

    from repro import XFaaS, PlatformParams
    from repro.cluster import build_topology
    from repro.sim import Simulator

    sim = Simulator(seed=42)
    platform = XFaaS(sim, build_topology(n_regions=4))
    platform.register_function(spec)
    platform.submit(spec.name)
    sim.run_until(3600)

Feature flags on :class:`PlatformParams` switch individual paper
techniques off for the ablation benchmarks (time-shifting, global
dispatch, locality groups, cooperative JIT, AIMD back-pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..cluster.topology import Topology
from ..downstream.service import ServiceRegistry
from ..metrics.recorder import MetricsRegistry
from ..metrics.timeseries import Counter
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from ..sim.simsan import region_map
from ..workloads.spec import FunctionSpec, QuotaType
from ..workloads.trace import TraceLog
from .call import CallArena, CallIdAllocator, CallOutcome, FunctionCall
from .codedeploy import CodeDeployer, RolloutParams
from .config import ConfigStore
from .congestion import CongestionController, CongestionParams
from .durableq import DurableQ
from .gtc import GlobalTrafficConductor, GtcParams
from .isolation import NamespaceRegistry
from .jit import JitParams
from .kvstore import DistributedKVStore
from .locality import LocalityOptimizer, LocalityParams
from .queuelb import ROUTING_KEY, QueueLB, capacity_proportional_routing
from .ratelimiter import CentralRateLimiter, ClientRateLimiter
from .rim import Rim
from .scheduler import S_MULTIPLIER_KEY, Scheduler, SchedulerParams
from .submitter import Submitter, SubmitterFrontend, SubmitterParams
from .utilization import UtilizationController, UtilizationParams
from .worker import Worker, WorkerParams
from .workerarrays import WorkerArrays
from .workerlb import WorkerLB


@dataclass(frozen=True)
class PlatformParams:
    """All tunables plus ablation feature flags."""

    namespace: str = "default"
    durableq_shards_per_region: int = 2
    scheduler: SchedulerParams = field(default_factory=SchedulerParams)
    worker: WorkerParams = field(default_factory=WorkerParams)
    jit: JitParams = field(default_factory=JitParams)
    locality: LocalityParams = field(default_factory=LocalityParams)
    congestion: CongestionParams = field(default_factory=CongestionParams)
    utilization: UtilizationParams = field(default_factory=UtilizationParams)
    gtc: GtcParams = field(default_factory=GtcParams)
    submitter: SubmitterParams = field(default_factory=SubmitterParams)
    rollout: RolloutParams = field(default_factory=RolloutParams)
    #: When set, publish a §4.3 storage routing policy blending this
    #: much regional locality with DurableQ-capacity-proportional spread
    #: (None keeps the default submit-locally policy).
    queuelb_locality_bias: Optional[float] = None
    config_propagation_s: float = 5.0
    rim_sample_interval_s: float = 60.0
    #: Hourly window for the Fig 9 distinct-functions metric.
    distinct_window_s: float = 3600.0
    memory_sample_interval_s: float = 60.0
    collect_traces: bool = True
    start_code_deployer: bool = False

    # Ablation flags (§1.2 techniques).
    time_shifting: bool = True
    global_dispatch: bool = True
    locality_groups: bool = True
    cooperative_jit: bool = True
    aimd: bool = True


class XFaaS:
    """One namespace's XFaaS deployment across a topology."""

    def __init__(self, sim: Simulator, topology: Topology,
                 params: PlatformParams = PlatformParams(),
                 services: Optional[ServiceRegistry] = None) -> None:
        self.sim = sim
        self.topology = topology
        self.params = params
        self.metrics = MetricsRegistry()
        self.traces = TraceLog()
        self._call_id_allocator = CallIdAllocator()
        #: Columnar store for every call record this platform creates
        #: (see :mod:`repro.core.callarena`).  Bulk-arrival slots are
        #: recycled on terminalization, so steady-state memory is
        #: O(in-flight calls), not O(calls submitted).
        self.arena = CallArena()
        self.services = services or ServiceRegistry()
        self.namespaces = NamespaceRegistry()
        self.config = ConfigStore(sim, params.config_propagation_s)
        self.rate_limiter = CentralRateLimiter()
        self.client_limiter = ClientRateLimiter()
        self.kvstore = DistributedKVStore(sim)
        self.congestion = CongestionController(params.congestion)
        self._specs: Dict[str, FunctionSpec] = {}

        # Per-call metrics resolved once here; the submit/finish hot
        # paths below use the handles directly (simlint SL007).
        self._calls_received = self.metrics.bind_counter("calls.received")
        self._calls_executed = self.metrics.bind_counter("calls.executed")
        self._calls_throttled = self.metrics.bind_counter("calls.throttled")
        self._cpu_reserved = self.metrics.bind_counter("cpu.reserved")
        self._cpu_opportunistic = self.metrics.bind_counter(
            "cpu.opportunistic")
        self._queueing_latency = self.metrics.bind_distribution(
            "latency.queueing")
        self._completion_latency = self.metrics.bind_distribution(
            "latency.completion")
        self._backpressure_counters: Dict[str, Counter] = {}
        # Built lazily on first submit (topology shares are final then).
        self._client_region_chooser: Optional[Callable[[], str]] = None

        ns = params.namespace
        self.namespaces.create(ns)
        regions = topology.region_names

        # simsan (opt-in): the serial platform owns every region, so no
        # restriction is applied — the proxies still enforce sorted
        # iteration and the RNG streams check draw-time monotonicity,
        # and region_guard() can scope a block in tests.
        sanitizer = sim.sanitizer
        if sanitizer is not None:
            sanitizer.register_regions(regions)

        # --- Stateful storage: sharded DurableQs per region -----------
        self.durableqs_by_region: Dict[str, List[DurableQ]] = \
            region_map(sanitizer, "durableqs_by_region")
        for r in regions:
            shards = [DurableQ(sim, name=f"dq/{r}/{i}", region=r)
                      for i in range(params.durableq_shards_per_region)]
            self.durableqs_by_region[r] = shards

        # --- Controllers (off the critical path) ----------------------
        # All unjittered control loops share one SamplerHub so each
        # shared firing instant costs one kernel event, not one per
        # loop.  Jittered tasks (scheduler ticks, DurableQ sweeps,
        # config refresh) never share instants and stay on sim.every.
        self.sampler_hub = SamplerHub(sim)
        self.rim = Rim(sim, self.metrics, params.rim_sample_interval_s,
                       timers=self.sampler_hub)
        self.locality_optimizer = LocalityOptimizer(
            sim, self.config, params.locality,
            enabled=params.locality_groups, namespace=ns,
            timers=self.sampler_hub)
        self.gtc = GlobalTrafficConductor(
            sim, self.rim, self.config, topology.network, params.gtc,
            enabled=params.global_dispatch, timers=self.sampler_hub)
        self.utilization_controller = UtilizationController(
            sim, self.rim, self.config, params.utilization,
            timers=self.sampler_hub)
        self.deployer = CodeDeployer(sim, params.rollout, params.jit,
                                     cooperative_jit=params.cooperative_jit,
                                     timers=self.sampler_hub)
        if not params.time_shifting:
            # Ablation: opportunistic functions are not deferred — their
            # elastic limit is pinned wide open.
            self.config.publish(S_MULTIPLIER_KEY, 1.0e9)
        if params.queuelb_locality_bias is not None:
            # §4.3: balance the *storage* load across regions' DurableQs.
            shards = {r: len(qs) for r, qs in self.durableqs_by_region.items()}
            self.config.publish(ROUTING_KEY, capacity_proportional_routing(
                regions, shards, locality_bias=params.queuelb_locality_bias))

        # --- Per-region pipeline --------------------------------------
        self.workers_by_region: Dict[str, List[Worker]] = \
            region_map(sanitizer, "workers_by_region")
        self.workerlbs: Dict[str, WorkerLB] = \
            region_map(sanitizer, "workerlbs")
        self.schedulers: Dict[str, Scheduler] = \
            region_map(sanitizer, "schedulers")
        self.frontends: Dict[str, SubmitterFrontend] = \
            region_map(sanitizer, "frontends")
        self.queuelbs: Dict[str, QueueLB] = \
            region_map(sanitizer, "queuelbs")

        for r in regions:
            n_workers = topology.region(r).workers_for(ns)
            machine = topology.region(r).machine_spec
            # One SoA store per region: every worker's hot scalars live
            # in its columns; admission and dispatch index into it.
            arrays = WorkerArrays()
            workers = []
            for w in range(n_workers):
                worker = Worker(
                    sim, name=f"{r}/{ns}/w{w:03d}", region=r, namespace=ns,
                    machine=machine, params=params.worker,
                    jit_params=params.jit,
                    downstream_gateway=self._invoke_downstream,
                    arrays=arrays)
                self.locality_optimizer.register_worker(worker)
                self.deployer.register_worker(worker)
                workers.append(worker)
            self.workers_by_region[r] = workers
            self.rim.register_workers(r, workers)
            self.rim.register_durableqs(r, self.durableqs_by_region[r])

            workerlb = WorkerLB(
                sim, r, workers,
                group_of_function=self.locality_optimizer.group_of,
                n_groups_fn=lambda: self.locality_optimizer.n_groups,
                group_epoch_fn=lambda: self.locality_optimizer.group_epoch)
            self.workerlbs[r] = workerlb

            scheduler = Scheduler(
                sim, r, self.durableqs_by_region, workerlb,
                self.rate_limiter, self.congestion, self.config,
                params.scheduler, on_done=self._on_done,
                timers=self.sampler_hub)
            self.schedulers[r] = scheduler
            self.rim.register_scheduler(r, scheduler)
            for worker in workers:
                worker.on_finish = scheduler.on_call_finished

            queuelb = QueueLB(sim, r, self.durableqs_by_region, self.config)
            self.queuelbs[r] = queuelb
            normal = Submitter(sim, r, queuelb, self.client_limiter,
                               params.submitter, pool="normal",
                               on_throttle=self._on_throttle,
                               kvstore=self.kvstore)
            spiky = Submitter(sim, r, queuelb, self.client_limiter,
                              params.submitter, pool="spiky",
                              on_throttle=self._on_throttle,
                              kvstore=self.kvstore)
            self.frontends[r] = SubmitterFrontend(normal, spiky)

        # --- Start controllers & samplers -----------------------------
        self.rim.start()
        self.gtc.start()
        if params.time_shifting:
            self.utilization_controller.start()
        self.locality_optimizer.start()
        if params.start_code_deployer:
            self.deployer.start()
        self.sampler_hub.every(params.congestion.adjust_window_s,
                               lambda: self.congestion.adjust(sim.now))
        self.sampler_hub.every(params.distinct_window_s,
                               self._sample_distinct_functions,
                               start=params.distinct_window_s)
        if params.memory_sample_interval_s > 0:
            self.sampler_hub.every(params.memory_sample_interval_s,
                                   self._sample_memory)

        self.submitted_count = 0
        self.throttled_count = 0
        self._completion_listeners: List[Callable[[FunctionCall, CallOutcome],
                                                  None]] = []

    def add_completion_listener(
            self, listener: Callable[[FunctionCall, CallOutcome],
                                     None]) -> None:
        """Invoke ``listener(call, outcome)`` whenever a call finalizes.

        Used by trigger services (orchestration workflows chain the next
        step off a completion) and by observability tooling.
        """
        self._completion_listeners.append(listener)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def register_function(self, spec: FunctionSpec,
                          expected_cost_minstr: Optional[float] = None) -> None:
        """Register a function with every subsystem that tracks it."""
        if spec.name in self._specs:
            return
        if spec.namespace != self.params.namespace:
            raise ValueError(
                f"function {spec.name!r} belongs to namespace "
                f"{spec.namespace!r}; this platform hosts "
                f"{self.params.namespace!r}")
        self._specs[spec.name] = spec
        self.namespaces.assign(spec)
        if expected_cost_minstr is None:
            # Seed the quota cost prior from the declared profile (the
            # production analogue: owners size quotas from profiling).
            expected_cost_minstr = spec.profile.cpu_minstr.mean
        self.rate_limiter.register(spec, expected_cost_minstr)
        self.congestion.register(spec)
        self.locality_optimizer.register_function(spec)

    def add_elastic_pool(self, region: str, n_workers: int,
                         schedule=None) -> "ElasticPool":
        """Attach harvested elastic capacity to one region (§5.3 ext.).

        Elastic workers only run opportunistic/low-criticality calls and
        can be reclaimed mid-execution; interrupted calls are NACKed and
        retried through the normal at-least-once path.
        """
        from .elastic import ElasticPool, ElasticSchedule
        scheduler = self.schedulers[region]
        machine = self.topology.region(region).machine_spec
        kwargs = {"schedule": schedule} if schedule is not None else {}
        pool = ElasticPool(self.sim, region, n_workers, machine=machine,
                           params=self.params.worker,
                           on_finish=scheduler.on_call_finished,
                           timers=self.sampler_hub, **kwargs)
        self.workerlbs[region].add_workers(pool.workers)
        self.workers_by_region[region].extend(pool.workers)
        self.rim.register_workers(region, pool.workers)
        for worker in pool.workers:
            self.locality_optimizer.register_worker(worker)
            self.deployer.register_worker(worker)
        return pool

    def register_spiky_client(self, team: str) -> None:
        """Move a client to the spiky submitter pool in every region."""
        for frontend in self.frontends.values():
            frontend.register_spiky_client(team)

    def submit(self, function_name: str, region: Optional[str] = None,
               start_delay_s: float = 0.0, source_level: int = 0,
               args_size_kb: float = 4.0) -> Optional[FunctionCall]:
        """Submit one call; returns the call, or None when throttled."""
        spec = self._specs.get(function_name)
        if spec is None:
            raise KeyError(f"function {function_name!r} is not registered")
        if start_delay_s < 0:
            raise ValueError("start_delay_s must be >= 0")
        region = region or self._pick_client_region()
        now = self.sim.now
        # call_id comes from the platform's own allocator: ids (and thus
        # trace digests) must depend only on this run, never on how many
        # simulations the process ran before (simlint SL001) — the sweep
        # engine compares digests across workers.
        # Pinned arena row: the call is handed back to the caller, who
        # may hold it indefinitely, so its slot is never recycled.
        call = FunctionCall(spec=spec, submit_time=now,
                            start_time=now + start_delay_s,
                            region_submitted=region,
                            source_level=source_level,
                            args_size_kb=args_size_kb,
                            call_id=self._call_id_allocator.allocate(),
                            arena=self.arena)
        self._calls_received.add(now)
        self.submitted_count += 1
        accepted = self.frontends[region].submit(call)
        return call if accepted else None

    def submit_stream(self, spec: FunctionSpec, start_delay_s: float = 0.0
                      ) -> None:
        """Bulk arrival-stream submission: one call, nothing returned.

        The :class:`~repro.workloads.generator.ArrivalGenerator` fast
        path: materializes the arrival record directly into an
        *unpinned* arena slot (recycled when the call terminalizes) and
        skips the name lookup and return plumbing of :meth:`submit`.
        Draw-for-draw identical to ``submit(spec.name,
        start_delay_s=...)`` — same RNG stream order, same counters —
        so trace digests are unchanged.
        """
        region = self._pick_client_region()
        now = self.sim.now
        call = FunctionCall.new_streamed(
            spec, now, now + start_delay_s, region,
            self._call_id_allocator.allocate(), self.arena)
        self._calls_received.add(now)
        self.submitted_count += 1
        self.frontends[region].submit(call)

    def spec(self, function_name: str) -> FunctionSpec:
        return self._specs[function_name]

    def functions(self) -> List[str]:
        return sorted(self._specs)

    @property
    def all_workers(self) -> List[Worker]:
        return [  # simlint: disable=SL008 -- flat registration-order view
            w for ws in self.workers_by_region.values() for w in ws]

    def completed_count(self) -> int:
        return sum(s.completed_count for s in self.schedulers.values())

    def pending_backlog(self) -> int:
        return sum(self.rim.region_backlog(r)
                   for r in self.topology.region_names)

    # ------------------------------------------------------------------
    # Wiring callbacks
    # ------------------------------------------------------------------
    def _pick_client_region(self) -> str:
        chooser = self._client_region_chooser
        if chooser is None:
            shares = self.topology.capacity_share(self.params.namespace)
            regions = sorted(shares)
            chooser = self.sim.rng.stream("client-region").weighted_chooser(
                regions, [max(shares[r], 1e-9) for r in regions])
            self._client_region_chooser = chooser
        return chooser()

    def _invoke_downstream(self, call: FunctionCall) -> CallOutcome:
        outcome = CallOutcome.OK
        for service_name, n in call.spec.downstream:
            service = self.services.maybe_get(service_name)
            if service is None:
                continue
            result = service.call(n, caller=call.function_name)
            if result.exceptions and self.params.aimd:
                self.congestion.on_backpressure(
                    call.function_name, service_name, result.exceptions)
            if result.exceptions:
                ctr = self._backpressure_counters.get(service_name)
                if ctr is None:
                    ctr = self._backpressure_counters[service_name] = \
                        self.metrics.counter(  # simlint: disable=SL007 -- memo miss
                            f"backpressure.{service_name}")
                ctr.add(self.sim.now, result.exceptions)
            if result.failures:
                outcome = CallOutcome.ERROR
        return outcome

    def _on_done(self, call: FunctionCall, outcome: CallOutcome) -> None:
        now = self.sim.now
        if call.args_spilled:
            # The call finished: its spilled arguments are garbage.
            self.kvstore.delete(f"args/{call.call_id}")
        if outcome is CallOutcome.OK and call.dispatch_time is not None:
            self._calls_executed.add(call.dispatch_time)
            if call.resources is not None:
                cpu = call.resources[0]
                ctr = (self._cpu_reserved
                       if call.spec.quota_type is QuotaType.RESERVED
                       else self._cpu_opportunistic)
                ctr.add(call.dispatch_time, cpu)
            eligible = max(call.submit_time, call.start_time)
            self._queueing_latency.add(
                max(0.0, call.dispatch_time - eligible))
            self._completion_latency.add(now - call.submit_time)
        if self.params.collect_traces:
            self.traces.add_call(
                call, outcome.value if outcome else "unknown")
        for listener in self._completion_listeners:
            listener(call, outcome)
        # Terminalized: recycle the arena slot (no-op for pinned rows).
        # Nothing may touch ``call`` past this line — the trace log
        # snapshotted above, and listeners retain call ids, not views.
        call.arena.release(call.slot, call.gen)

    def _on_throttle(self, call: FunctionCall) -> None:
        self.throttled_count += 1
        self._calls_throttled.add(self.sim.now)
        if self.params.collect_traces:
            self.traces.add_call(call, "throttled")
        call.arena.release(call.slot, call.gen)

    # ------------------------------------------------------------------
    # Periodic samplers
    # ------------------------------------------------------------------
    def _sample_distinct_functions(self) -> None:
        dist = self.metrics.distribution("worker.distinct_functions_per_window")
        # Legitimate: draining each worker's distinct-function window
        # mutates the view; no column aggregate can replace it.
        for worker in self.all_workers:  # simlint: disable=SL008 -- windows
            count = worker.take_distinct_functions_window()
            if worker.calls_started > 0:
                dist.add(count)

    def _sample_memory(self) -> None:
        now = self.sim.now
        dist = self.metrics.distribution("worker.memory_mb")
        # Legitimate: the Fig 10 distribution needs every worker's value,
        # not an aggregate (interval is minutes, not per-event).
        for worker in self.all_workers:  # simlint: disable=SL008 -- Fig 10
            dist.add(worker.memory_in_use_mb)
        # One representative per-worker gauge (Fig 10-style series).
        first_region = self.topology.region_names[0]
        workers = self.workers_by_region[first_region]
        if workers:
            # Legitimate: the serial platform owns every region; the
            # canonical first-region sample never runs under parsim
            # (ShardPlatform guards on owned regions instead).
            mem = workers[0].memory_in_use_mb  # simlint: disable=SL010
            self.metrics.gauge("worker.sample.memory_mb").set(now, mem)
