"""Proactive code distribution and staged rollout (§4.5, §4.5.1).

XFaaS bundles all new/changed function code every three hours and pushes
it to every worker's local SSD through peer-to-peer distribution, so any
worker can load any function without fetching code at call time (a key
piece of the universal-worker approximation).

Workers adopt a new bundle in three phases:

1. a small canary set runs the new code (catches obvious bugs);
2. 2% of workers run it, and designated *seeder* workers collect the
   profiling data JIT compilation needs;
3. seeders' profiling data is distributed to every worker in their
   locality group, letting all workers pre-compile hot functions before
   any call for the new code arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .jit import JitParams


@dataclass(frozen=True)
class RolloutParams:
    """Staged-rollout timing (§4.5.1)."""

    push_interval_s: float = 3 * 3600.0
    canary_workers: int = 2
    phase2_fraction: float = 0.02
    phase1_duration_s: float = 300.0
    phase2_duration_s: float = 900.0
    #: P2P distribution delay of a code bundle to the whole fleet.
    distribution_delay_s: float = 120.0

    def __post_init__(self) -> None:
        if self.push_interval_s <= 0:
            raise ValueError("push_interval_s must be positive")
        if not 0 < self.phase2_fraction <= 1:
            raise ValueError("phase2_fraction must be in (0, 1]")


@dataclass
class CodeVersion:
    """One three-hourly code bundle."""

    version: int
    released_at: float
    size_mb: float = 500.0


class CodeDeployer:
    """Drives periodic bundle pushes and the three-phase rollout.

    The deployer is generic over workers: it needs each worker to expose
    ``adopt_version(version, now, with_profile_data)`` and a
    ``locality_group`` attribute (seeder data is distributed per group).
    """

    def __init__(self, sim: Simulator, params: RolloutParams = RolloutParams(),
                 jit_params: JitParams = JitParams(),
                 cooperative_jit: bool = True,
                 timers: Optional[SamplerHub] = None) -> None:
        self.sim = sim
        self._timers = timers
        self.params = params
        self.jit_params = jit_params
        self.cooperative_jit = cooperative_jit
        self._workers: List = []
        self.current_version = CodeVersion(version=1, released_at=0.0)
        self.rollouts_completed = 0
        self._task = None

    def register_worker(self, worker) -> None:
        self._workers.append(worker)

    def start(self) -> None:
        """Begin periodic pushes (first push after one interval)."""
        if self._task is not None:
            raise RuntimeError("deployer already started")
        timers = self._timers if self._timers is not None else self.sim
        self._task = timers.every(
            self.params.push_interval_s, self.push_new_version,
            start=self.sim.now + self.params.push_interval_s)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    def push_new_version(self) -> None:
        """Release a new bundle and run the three-phase rollout."""
        now = self.sim.now
        version = CodeVersion(version=self.current_version.version + 1,
                              released_at=now)
        self.current_version = version
        rng = self.sim.rng.stream("codedeploy")
        workers = list(self._workers)
        if not workers:
            return
        rng.shuffle(workers)
        p = self.params

        n_canary = min(p.canary_workers, len(workers))
        canaries = workers[:n_canary]
        n_phase2 = max(1, int(len(workers) * p.phase2_fraction))
        phase2 = workers[n_canary:n_canary + n_phase2]
        rest = workers[n_canary + n_phase2:]

        t_code_ready = now + p.distribution_delay_s
        t_phase2 = t_code_ready + p.phase1_duration_s
        t_phase3 = t_phase2 + p.phase2_duration_s

        # Phase 1: canaries adopt the new code unseeded (they generate
        # the first profiling signal and catch bugs).
        for w in canaries:
            self.sim.call_at(t_code_ready, _adopter(w, version, False))
        # Phase 2: 2% adopt; they act as seeders, profiling the new code.
        for w in phase2:
            self.sim.call_at(t_phase2, _adopter(w, version, False))
        # Phase 3: everyone else adopts; with cooperative JIT they start
        # *with* the seeders' profiling data and pre-compile immediately.
        seeded = self.cooperative_jit
        for w in rest:
            self.sim.call_at(t_phase3, _adopter(w, version, seeded))
        # Seeder data also reaches the phase-1/2 workers, shortening any
        # ramp they still have.
        if self.cooperative_jit:
            t_profile = t_phase2 + self.jit_params.seeder_profile_s
            for w in canaries + phase2:
                self.sim.call_at(t_profile, _profile_receiver(w))
        self.sim.call_at(t_phase3, self._count_rollout)

    def _count_rollout(self) -> None:
        self.rollouts_completed += 1


def _adopter(worker, version: CodeVersion, seeded: bool) -> Callable[[], None]:
    def adopt() -> None:
        worker.adopt_version(version, seeded)
    return adopt


def _profile_receiver(worker) -> Callable[[], None]:
    def receive() -> None:
        worker.receive_profile_data()
    return receive
