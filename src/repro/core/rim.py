"""RIM: global Resource Isolation and Management metrics (§1.2, §4.6.3).

Rather than letting each component decide from local signals, XFaaS
collects global metrics across systems — worker utilization per region,
queue backlog per region, free capacity — and makes them available to
the central controllers (Global Traffic Conductor, Utilization
Controller) and benchmarks.

RIM is the *single consumer* of the workers' rolling utilization
windows: it samples every worker each interval and publishes per-region
and fleet-wide utilization, which is exactly the quantity in Figures 7
and 8.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..metrics.recorder import MetricsRegistry
from ..metrics.timeseries import Gauge
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .durableq import DurableQ
from .scheduler import Scheduler
from .worker import Worker
from .workerarrays import WorkerArrays


class Rim:
    """Fleet-wide metric collection."""

    def __init__(self, sim: Simulator, metrics: MetricsRegistry,
                 sample_interval_s: float = 60.0,
                 timers: Optional[SamplerHub] = None) -> None:
        self.sim = sim
        self.metrics = metrics
        self.sample_interval_s = sample_interval_s
        self._timers = timers
        self._workers_by_region: Dict[str, List[Worker]] = {}
        #: region -> the distinct SoA stores its workers live in, or None
        #: when stores and registered workers disagree (stale rows from
        #: partial registration) and aggregates must fall back to views.
        self._arrays_by_region: Dict[str, Optional[List[WorkerArrays]]] = {}
        self._capacity_by_region: Dict[str, int] = {}
        self._durableqs_by_region: Dict[str, List[DurableQ]] = {}
        self._schedulers_by_region: Dict[str, Scheduler] = {}
        self._region_util: Dict[str, float] = {}
        self._fleet_util: float = 0.0
        self._task = None
        self._fleet_gauge = metrics.bind_gauge("fleet.utilization")
        #: region -> bound utilization gauge (simlint SL007: no f-string
        #: gauge lookup inside the sampling loop).
        self._region_gauges: Dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    def register_workers(self, region: str, workers: List[Worker]) -> None:
        registered = self._workers_by_region.setdefault(region, [])
        registered.extend(workers)
        if region not in self._region_gauges:
            self._region_gauges[region] = self.metrics.bind_gauge(
                f"region.{region}.utilization")
        # Registration-time (structural) scans so the periodic capacity
        # and free-thread reads are O(#stores), not O(#workers).
        stores: List[WorkerArrays] = []
        for w in registered:
            if not any(w._arrays is s for s in stores):
                stores.append(w._arrays)
        n_rows = sum(len(s) for s in stores)
        self._arrays_by_region[region] = (
            stores if n_rows == len(registered) else None)
        self._capacity_by_region[region] = sum(
            w.machine.threads for w in registered)

    def register_durableqs(self, region: str, shards: List[DurableQ]) -> None:
        self._durableqs_by_region.setdefault(region, []).extend(shards)

    def register_scheduler(self, region: str, scheduler: Scheduler) -> None:
        self._schedulers_by_region[region] = scheduler

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("RIM already started")
        timers = self._timers if self._timers is not None else self.sim
        self._task = timers.every(self.sample_interval_s, self.sample,
                                  start=self.sim.now + self.sample_interval_s)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one utilization window across the fleet."""
        now = self.sim.now
        total_busy_fraction = 0.0
        total_workers = 0
        regions = sorted(self._workers_by_region.items())
        for region, workers in regions:
            if not workers:
                continue
            # Legitimate per-worker pass: taking the rolling utilization
            # window *mutates* each worker's CpuAccount, so there is no
            # column aggregate to read instead.
            utils = [w.take_utilization_window()  # simlint: disable=SL008 -- windows
                     for w in workers]
            region_util = sum(utils) / len(utils)
            self._region_util[region] = region_util
            self._region_gauges[region].set(now, region_util)
            total_busy_fraction += sum(utils)
            total_workers += len(utils)
        if total_workers:
            self._fleet_util = total_busy_fraction / total_workers
            self._fleet_gauge.set(now, self._fleet_util)

    # ------------------------------------------------------------------
    # Views consumed by controllers
    # ------------------------------------------------------------------
    def fleet_utilization(self) -> float:
        return self._fleet_util

    def region_utilization(self, region: str) -> float:
        return self._region_util.get(region, 0.0)

    def region_backlog(self, region: str) -> int:
        """Ready calls in the region's DurableQs + scheduler buffers."""
        backlog = sum(q.ready_count() for q
                      in self._durableqs_by_region.get(region, ()))
        sched = self._schedulers_by_region.get(region)
        if sched is not None:
            backlog += sched.pending_demand
        return backlog

    def region_capacity(self, region: str) -> float:
        """Aggregate worker thread capacity (supply proxy for the GTC)."""
        return float(self._capacity_by_region.get(region, 0))

    def region_free_threads(self, region: str) -> int:
        # Admission caps running <= threads per worker, so capacity minus
        # the stores' O(1) running totals equals the old per-worker sum.
        stores = self._arrays_by_region.get(region)
        if stores is not None:
            running = 0
            for s in stores:
                running += s.total_running
            return self._capacity_by_region.get(region, 0) - running
        workers = self._workers_by_region.get(region, ())
        total = 0
        for w in workers:  # simlint: disable=SL008 -- store mismatch fallback
            total += max(0, w.machine.threads - w.running_count)
        return total

    def regions(self) -> List[str]:
        return sorted(set(self._workers_by_region)
                      | set(self._durableqs_by_region))
