"""Utilization Controller: the S multiplier for opportunistic quota (§4.6.2).

Opportunistic functions run at an elastic RPS limit ``r = r0 × S``.
This controller monitors fleet-wide worker utilization (via RIM) and
steers S toward a target utilization: underutilized workers raise S
(pulling deferred opportunistic work forward), overloaded workers lower
it — all the way to zero, which stops opportunistic scheduling entirely.

The result is Figure 11's complementarity: opportunistic CPU fills the
troughs that reserved (diurnal) CPU leaves behind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .config import ConfigStore
from .rim import Rim
from .scheduler import S_MULTIPLIER_KEY


@dataclass(frozen=True)
class UtilizationParams:
    """Target utilization and the S-multiplier control law (§4.6.2)."""

    #: Target daily utilization (the paper achieves 66% average; the
    #: controller aims a bit above so the average lands near it).
    target_utilization: float = 0.70
    update_interval_s: float = 60.0
    #: Proportional gain: ΔS per unit utilization error per update.
    #: Asymmetric by design: S falls multiplicatively under overload but
    #: rises gently, avoiding bang-bang oscillation around the target.
    gain: float = 0.75
    s_min: float = 0.0
    s_max: float = 10.0
    s_initial: float = 1.0
    #: Above this utilization, S is cut multiplicatively (fast backoff).
    overload_utilization: float = 0.90
    overload_backoff: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization < 1:
            raise ValueError("target_utilization must be in (0, 1)")
        if self.s_min < 0 or self.s_max < self.s_min:
            raise ValueError("need 0 <= s_min <= s_max")


class UtilizationController:
    """Feedback controller publishing S through the config system."""

    def __init__(self, sim: Simulator, rim: Rim, config: ConfigStore,
                 params: UtilizationParams = UtilizationParams(),
                 timers: Optional[SamplerHub] = None) -> None:
        self.sim = sim
        self._timers = timers
        self.rim = rim
        self.config = config
        self.params = params
        self.s = params.s_initial
        self.update_count = 0
        self._task = None
        config.publish(S_MULTIPLIER_KEY, self.s)

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("controller already started")
        timers = self._timers if self._timers is not None else self.sim
        self._task = timers.every(
            self.params.update_interval_s, self.update,
            start=self.sim.now + self.params.update_interval_s)

    def stop(self) -> None:
        """Central-controller failure: schedulers keep the cached S (§4.1)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def update(self) -> None:
        p = self.params
        util = self.rim.fleet_utilization()
        if util >= p.overload_utilization:
            # Fast multiplicative backoff under overload; S may hit 0.
            self.s = max(p.s_min, self.s * p.overload_backoff
                         - 0.01)
        else:
            error = p.target_utilization - util
            self.s = min(p.s_max, max(p.s_min, self.s + p.gain * error))
        self.config.publish(S_MULTIPLIER_KEY, self.s)
        self.update_count += 1
