"""Configuration management system (the paper's Configerator, §4.1/§4.3).

Central controllers publish key→value configurations (traffic matrix,
utilization multiplier S, locality assignments, routing policies).
Critical-path components *cache* the last value they saw, so they keep
operating on stale configuration when controllers are down — the
fault-tolerance property §4.1 calls out ("can withstand central
controller downtime for tens of minutes").

Propagation is modelled with a delay: a published value becomes visible
to consumers ``propagation_delay_s`` later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..sim.kernel import Simulator


@dataclass
class _Entry:
    value: Any
    version: int
    visible_at: float


class ConfigStore:
    """Versioned config store with propagation delay and subscriptions."""

    def __init__(self, sim: Simulator, propagation_delay_s: float = 5.0) -> None:
        if propagation_delay_s < 0:
            raise ValueError("propagation_delay_s must be >= 0")
        self.sim = sim
        self.propagation_delay_s = propagation_delay_s
        self._entries: Dict[str, List[_Entry]] = {}
        self._subscribers: Dict[str, List[Callable[[str, Any], None]]] = {}
        self.publish_count = 0

    def publish(self, key: str, value: Any) -> int:
        """Publish a new value; returns its version number."""
        history = self._entries.setdefault(key, [])
        version = len(history) + 1
        visible_at = self.sim.now + self.propagation_delay_s
        history.append(_Entry(value=value, version=version,
                              visible_at=visible_at))
        self.publish_count += 1
        self.sim.call_at(visible_at, lambda: self._notify(key, value))
        return version

    def get(self, key: str, default: Any = None) -> Any:
        """Latest value *visible* at the current time (or ``default``)."""
        entry = self._visible_entry(key)
        return entry.value if entry is not None else default

    def version(self, key: str) -> int:
        """Version of the currently visible value (0 when none)."""
        entry = self._visible_entry(key)
        return entry.version if entry is not None else 0

    def subscribe(self, key: str, callback: Callable[[str, Any], None]) -> None:
        """Call ``callback(key, value)`` whenever a new value becomes visible."""
        self._subscribers.setdefault(key, []).append(callback)

    def _visible_entry(self, key: str) -> Optional[_Entry]:
        now = self.sim.now
        best = None
        for entry in self._entries.get(key, ()):
            if entry.visible_at <= now:
                best = entry
        return best

    def _notify(self, key: str, value: Any) -> None:
        for callback in self._subscribers.get(key, ()):
            callback(key, value)


class CachedConfig:
    """A consumer-side cache of one config key.

    Reads never block and never fail: the consumer sees the last value
    it successfully refreshed, even if the store (controller side) has
    since stopped publishing.  ``refresh_interval_s`` models consumers
    polling Configerator.
    """

    def __init__(self, sim: Simulator, store: ConfigStore, key: str,
                 default: Any, refresh_interval_s: float = 10.0,
                 jitter_stream: Optional[str] = None) -> None:
        self.sim = sim
        self.store = store
        self.key = key
        self._value = store.get(key, default)
        self._version = store.version(key)
        self.refresh_interval_s = refresh_interval_s
        # ``jitter_stream`` names the RNG stream for the refresh jitter.
        # The default shares the kernel-wide "periodic-jitter" stream;
        # repro.parsim passes an owner-qualified name instead, so a
        # cache's draw sequence never depends on which other components
        # happen to share its shard's kernel.
        self._task = sim.every(
            refresh_interval_s, self._refresh,
            jitter=refresh_interval_s * 0.05,
            **({"rng_stream": jitter_stream} if jitter_stream else {}))
        self.refresh_count = 0

    @property
    def value(self) -> Any:
        return self._value

    @property
    def version(self) -> int:
        return self._version

    def _refresh(self) -> None:
        self.refresh_count += 1
        version = self.store.version(self.key)
        if version > self._version:
            self._value = self.store.get(self.key)
            self._version = version

    def stop(self) -> None:
        self._task.cancel()
