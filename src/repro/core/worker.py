"""Worker: an always-on runtime executing many functions per process (§4.5).

The universal-worker approximation rests on four properties this class
implements:

1. **No cold start** — the code of every function in the namespace is
   already on the worker's SSD (pushed by :class:`CodeDeployer`), and
   the runtime process is always up.  The first call for a function on a
   worker pays only a small SSD code-load latency.
2. **Many functions per Linux process** — concurrent calls of different
   functions share the runtime, bounded by thread and memory capacity.
3. **JIT warm-up** — a (re)started runtime ramps to full speed per
   :class:`RuntimeJit`; cooperative JIT collapses the ramp.
4. **Bounded resident set** — each function executed on the worker keeps
   JIT code + caches resident; an LRU budget models the limited memory
   that motivates locality groups (§4.5.2).

Memory accounting (Fig 10 / §5.2 A/B): worker memory = runtime baseline
+ resident per-function code/JIT + live per-call memory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from ..cluster.machine import CpuAccount, MachineSpec
from ..sim.kernel import Simulator
from ..sim.rng import RngStream
from ..workloads.spec import Criticality, QuotaType
from .call import CallOutcome, FunctionCall
from .codedeploy import CodeVersion
from .isolation import flow_allowed
from .jit import JitParams, RuntimeJit
from .workerarrays import WorkerArrays

FinishCallback = Callable[[FunctionCall, CallOutcome], None]
#: Invoked at call completion with the finishing call; returns the
#: outcome after downstream effects (OK, or ERROR on downstream failure).
DownstreamGateway = Callable[[FunctionCall], CallOutcome]


@dataclass(frozen=True)
class WorkerParams:
    """Worker-level tunables."""

    #: Latency to load a not-yet-resident function's code from local SSD
    #: (the residual "cold" cost of the universal worker; milliseconds,
    #: not the seconds of a container cold start).
    code_load_s: float = 0.100
    #: Runtime baseline memory (process, shared libs, code cache floor).
    runtime_baseline_mb: float = 4096.0
    #: Budget for resident function code + JIT code + per-function
    #: caches, enforced by LRU eviction.
    resident_budget_mb: float = 24 * 1024.0
    #: Resident memory per function ≈ code + JIT code + warm caches.
    resident_multiplier: float = 3.0
    #: Refuse admission if projected memory exceeds this fraction of
    #: physical memory (protection against OOM).
    memory_headroom: float = 0.92
    #: Refuse admission if projected CPU load exceeds cores × factor.
    #: Slightly above 1.0 models OS timesharing: a core-bound call and a
    #: trickle of light calls coexist with marginal slowdown instead of
    #: hard bin-packing refusals (which strand ~20% of capacity when
    #: full-core calls can only land on perfectly idle machines).
    cpu_admission_factor: float = 1.15
    #: Optional static CPU headroom kept free of opportunistic and
    #: low-criticality calls (< 1.0 reserves the top slice for reserved
    #: work).  Default 1.0: reserved SLOs are protected by scheduling
    #: priority and the utilization controller instead — a static slice
    #: quantizes badly on few-core machines and strands capacity.
    background_admission_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.code_load_s < 0:
            raise ValueError("code_load_s must be >= 0")
        if not 0 < self.memory_headroom <= 1:
            raise ValueError("memory_headroom must be in (0, 1]")


@dataclass
class _RunningCall:
    __slots__ = ("call", "cpu_load", "memory_mb", "finish_handle")

    call: FunctionCall
    cpu_load: float
    memory_mb: float
    finish_handle: object


class Worker:
    """One worker machine executing function calls.

    Hot scalar state (running-call count, CPU load, memory-in-use,
    online flag, locality group) lives in a :class:`WorkerArrays` row —
    ``self._arrays`` / ``self._index`` — shared per region so admission
    probes and two-choices draws read flat columns instead of chasing
    this object.  A worker constructed without an explicit store gets a
    private single-row one; pools re-home such workers via
    :meth:`WorkerArrays.adopt`.
    """

    __slots__ = (
        "sim", "name", "region", "namespace", "machine", "params", "jit",
        "on_finish", "downstream_gateway", "code_version",
        "cpu", "_arrays", "_index",
        "_baseline_mb", "_mem_limit_mb", "_cpu_budget",
        "_bg_cpu_budget", "_resident_multiplier", "_resource_streams",
        "_admit_cache", "_jit_speed_at", "_jit_speed", "_budget_by_name",
        "_running", "_live_memory_mb", "_resident", "_resident_mb",
        "_window_functions", "calls_started", "calls_completed",
        "admission_rejections", "isolation_rejections", "evictions")

    def __init__(self, sim: Simulator, name: str, region: str,
                 namespace: str = "default",
                 machine: MachineSpec = MachineSpec(),
                 params: WorkerParams = WorkerParams(),
                 jit_params: JitParams = JitParams(),
                 on_finish: Optional[FinishCallback] = None,
                 downstream_gateway: Optional[DownstreamGateway] = None,
                 arrays: Optional[WorkerArrays] = None) -> None:
        self.sim = sim
        self.name = name
        self.region = region
        self.namespace = namespace
        self.machine = machine
        self.params = params
        self.jit = RuntimeJit(jit_params)
        self.on_finish = on_finish
        self.downstream_gateway = downstream_gateway
        self.code_version = CodeVersion(version=1, released_at=0.0)

        self.cpu = CpuAccount(cores=machine.cores)
        # Admission-path constants, folded once: every product below is
        # computed exactly as the original per-call expressions did, so
        # the floats (and thus admission decisions) are bit-identical.
        self._baseline_mb = params.runtime_baseline_mb
        self._mem_limit_mb = machine.memory_mb * params.memory_headroom
        self._cpu_budget = machine.cores * params.cpu_admission_factor
        self._bg_cpu_budget = (self._cpu_budget *
                               params.background_admission_fraction)
        self._resident_multiplier = params.resident_multiplier
        # SoA row: hot scalars live in the store; this object is the
        # view.  mem starts at the exact old float expression
        # baseline + resident + live with the latter two at 0.0.
        store = arrays if arrays is not None else WorkerArrays()
        self._arrays = store
        self._index = store.add(
            self, machine.threads, machine.cores, machine.memory_mb,
            self._baseline_mb + 0.0 + 0.0)
        #: function name → its shared resource-sampling stream; avoids
        #: rebuilding the f-string stream name per call (simlint SL007).
        self._resource_streams: Dict[str, RngStream] = {}
        #: Admission scratch: (call_id, cpu_minstr, mem_mb, duration,
        #: cpu_load) computed by the last ``can_admit`` so ``execute``
        #: does not recompute it on the accept path.
        self._admit_cache: Optional[Tuple[int, float, float, float, float]] = None
        #: JIT speed memo for the current timestamp (admission probes a
        #: worker many times within one scheduling sweep).
        self._jit_speed_at = -1.0
        self._jit_speed = 1.0
        #: function name → admission CPU budget.  Both budgets and the
        #: spec's quota class are fixed after construction, so the
        #: opportunistic/LOW classification collapses to one dict get.
        self._budget_by_name: Dict[str, float] = {}
        self._running: Dict[int, _RunningCall] = {}
        self._live_memory_mb = 0.0
        #: LRU of resident functions: name → resident MB.
        self._resident: "OrderedDict[str, float]" = OrderedDict()
        self._resident_mb = 0.0
        #: Functions executed in the current accounting window (Fig 9).
        self._window_functions: Set[str] = set()

        self.calls_started = 0
        self.calls_completed = 0
        self.admission_rejections = 0
        self.isolation_rejections = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # SoA-backed attributes (hot columns; the view stays assignable)
    # ------------------------------------------------------------------
    @property
    def online(self) -> bool:
        """False while the machine is down (site outage injection)."""
        return bool(self._arrays.online[self._index])

    @online.setter
    def online(self, value: bool) -> None:
        self._arrays.online[self._index] = 1 if value else 0

    @property
    def locality_group(self) -> int:
        return self._arrays.group[self._index]

    @locality_group.setter
    def locality_group(self, value: int) -> None:
        self._arrays.group[self._index] = value

    def _sync_mem(self) -> None:
        """Recompute (never accumulate) the memory column.

        The fresh left-associated sum is the exact float the old
        ``load_score`` computed per probe; accumulating deltas into the
        column instead would drift bitwise and change admission ties.
        """
        self._arrays.mem_mb[self._index] = (
            self._baseline_mb + self._resident_mb + self._live_memory_mb)

    # ------------------------------------------------------------------
    # Capacity views (used by the WorkerLB's power-of-two choice)
    # ------------------------------------------------------------------
    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def memory_in_use_mb(self) -> float:
        return (self.params.runtime_baseline_mb + self._resident_mb +
                self._live_memory_mb)

    @property
    def cpu_load(self) -> float:
        return self.cpu.load

    def load_score(self) -> float:
        """Scalar load for load balancing: max of thread/CPU/memory use."""
        arr = self._arrays
        i = self._index
        a = arr.running[i] / arr.threads[i]
        b = arr.cpu_load[i] / arr.cores[i]
        c = arr.mem_mb[i] / arr.memory_mb[i]
        if b > a:
            a = b
        return c if c > a else a

    # ------------------------------------------------------------------
    # Admission and execution
    # ------------------------------------------------------------------
    def can_admit(self, call: FunctionCall) -> bool:
        arr = self._arrays
        i = self._index
        if not arr.online[i]:
            return False
        resources = call.resources
        if resources is None:
            resources = self._resources(call)
        cpu_minstr, mem_mb, exec_s = resources
        if arr.running[i] >= arr.threads[i]:
            return False
        spec = call.spec
        name = spec.name
        resident_cost = 0.0
        if name not in self._resident:
            resident_cost = spec.code_size_mb * self._resident_multiplier
        projected_mem = arr.mem_mb[i] + mem_mb + resident_cost
        if projected_mem > self._mem_limit_mb:
            return False
        # CPU admission: keep projected steady load within the core budget.
        now = self.sim._now
        if now != self._jit_speed_at:
            self._jit_speed_at = now
            self._jit_speed = self.jit.speed(now)
        speed = self._jit_speed
        cpu_s = cpu_minstr / (self.machine.core_mips * (speed if speed > 1e-6
                                                        else 1e-6))
        duration = exec_s if exec_s > cpu_s else cpu_s
        cpu_load = cpu_s / duration
        budget = self._budget_by_name.get(name)
        if budget is None:
            budget = (self._bg_cpu_budget
                      if (spec.quota_type is QuotaType.OPPORTUNISTIC
                          or spec.criticality <= Criticality.LOW)
                      else self._cpu_budget)
            self._budget_by_name[name] = budget
        if arr.cpu_load[i] + cpu_load > budget:
            return False
        self._admit_cache = (call.call_id, cpu_minstr, mem_mb, duration,
                             cpu_load)
        return True

    @staticmethod
    def _is_background(call: FunctionCall) -> bool:
        return (call.spec.quota_type is QuotaType.OPPORTUNISTIC
                or call.spec.criticality <= Criticality.LOW)

    def execute(self, call: FunctionCall) -> bool:
        """Admit and run ``call``; returns False if the worker refused it.

        The worker independently re-checks the Bell–LaPadula flow (§4.7:
        "workers also ensure that a function running in a zone follows
        these properties").
        """
        # Inlined flow_allowed() — this runs once per admission probe.
        if call.source_level > call.spec.isolation_level:
            self.isolation_rejections += 1
            self._finish_now(call, CallOutcome.ISOLATION_DENIED)
            return True  # terminal: do not retry elsewhere
        if type(self) is Worker:
            # Fused base-class admission: the WorkerLB probes ~20×
            # more calls than it places, so the can_admit body is
            # inlined here — same checks, same arithmetic, same RNG
            # draw order (resources first), minus the method call and
            # the _admit_cache round-trip.  Subclasses that override
            # can_admit (e.g. ElasticWorker) take the virtual path in
            # the else branch.
            arr = self._arrays
            i = self._index
            if not arr.online[i]:
                self.admission_rejections += 1
                return False
            resources = call.resources
            if resources is None:
                resources = self._resources(call)
            cpu_minstr, mem_mb, exec_s = resources
            if arr.running[i] >= arr.threads[i]:
                self.admission_rejections += 1
                return False
            spec = call.spec
            name = spec.name
            resident_cost = 0.0
            if name not in self._resident:
                resident_cost = spec.code_size_mb * self._resident_multiplier
            if arr.mem_mb[i] + mem_mb + resident_cost > self._mem_limit_mb:
                self.admission_rejections += 1
                return False
            now = self.sim._now
            if now != self._jit_speed_at:
                self._jit_speed_at = now
                self._jit_speed = self.jit.speed(now)
            speed = self._jit_speed
            cpu_s = cpu_minstr / (self.machine.core_mips *
                                  (speed if speed > 1e-6 else 1e-6))
            duration = exec_s if exec_s > cpu_s else cpu_s
            cpu_load = cpu_s / duration
            budget = self._budget_by_name.get(name)
            if budget is None:
                budget = (self._bg_cpu_budget
                          if (spec.quota_type is QuotaType.OPPORTUNISTIC
                              or spec.criticality <= Criticality.LOW)
                          else self._cpu_budget)
                self._budget_by_name[name] = budget
            if arr.cpu_load[i] + cpu_load > budget:
                self.admission_rejections += 1
                return False
        else:
            self._admit_cache = None
            if not self.can_admit(call):
                self.admission_rejections += 1
                return False

            now = self.sim._now
            cache = self._admit_cache
            if cache is not None and cache[0] == call.call_id:
                _, cpu_minstr, mem_mb, duration, cpu_load = cache
            else:
                # A can_admit override skipped the base computation.
                cpu_minstr, mem_mb, _ = self._resources(call)
                speed = self.jit.speed(now)
                duration = self._duration(call, speed)
                cpu_load = self._cpu_seconds(cpu_minstr, speed) / duration
            name = call.spec.name
        # Residual universal-worker cost: first call of a function loads
        # its (pre-pushed) code from local SSD.
        if name not in self._resident:
            duration += self.params.code_load_s
            self._make_resident(name, call.spec.code_size_mb)
        else:
            self._resident.move_to_end(name)

        self.cpu.on_start(now, cpu_load)
        self._live_memory_mb += mem_mb
        self._window_functions.add(name)
        call.mark_dispatched(self.name, now)
        self.calls_started += 1
        handle = self.sim.call_after(
            duration, lambda: self._complete(call.call_id))
        self._running[call.call_id] = _RunningCall(
            call=call, cpu_load=cpu_load, memory_mb=mem_mb,
            finish_handle=handle)
        arr = self._arrays
        i = self._index
        arr.running[i] = len(self._running)
        arr.cpu_load[i] = self.cpu.load
        arr.mem_mb[i] = (self._baseline_mb + self._resident_mb +
                         self._live_memory_mb)
        arr.total_running += 1
        return True

    def _complete(self, call_id: int) -> None:
        rc = self._running.pop(call_id, None)
        if rc is None:
            return
        now = self.sim._now
        self.cpu.on_finish(now, rc.cpu_load)
        self._live_memory_mb -= rc.memory_mb
        arr = self._arrays
        i = self._index
        arr.running[i] = len(self._running)
        arr.cpu_load[i] = self.cpu.load
        arr.mem_mb[i] = (self._baseline_mb + self._resident_mb +
                         self._live_memory_mb)
        arr.total_running -= 1
        self.calls_completed += 1
        rc.call.finish_time = now
        outcome = CallOutcome.OK
        if self.downstream_gateway is not None and rc.call.spec.downstream:
            outcome = self.downstream_gateway(rc.call)
        if self.on_finish is not None:
            self.on_finish(rc.call, outcome)

    def _finish_now(self, call: FunctionCall, outcome: CallOutcome) -> None:
        call.finish_time = self.sim.now
        if self.on_finish is not None:
            self.on_finish(call, outcome)

    # ------------------------------------------------------------------
    # Resource helpers
    # ------------------------------------------------------------------
    def _resources(self, call: FunctionCall) -> Tuple[float, float, float]:
        if call.resources is None:
            name = call.spec.name
            rng = self._resource_streams.get(name)
            if rng is None:
                rng = self._resource_streams[name] = \
                    self.sim.rng.stream(  # simlint: disable=SL007 -- memo miss
                        f"resources/{name}")
            call.resources = call.spec.profile.sample(
                rng, self.machine.core_mips)
        return call.resources

    def _cpu_seconds(self, cpu_minstr: float, speed: float) -> float:
        return cpu_minstr / (self.machine.core_mips * max(speed, 1e-6))

    def _duration(self, call: FunctionCall, speed: float) -> float:
        cpu_minstr, _, exec_s = self._resources(call)
        # A call cannot finish before its (JIT-slowed) single-thread CPU
        # time; IO-bound calls keep their nominal wall time.
        return max(exec_s, self._cpu_seconds(cpu_minstr, speed))

    def _make_resident(self, function_name: str, code_size_mb: float) -> None:
        resident_mb = code_size_mb * self.params.resident_multiplier
        while (self._resident_mb + resident_mb > self.params.resident_budget_mb
               and self._resident):
            _, evicted_mb = self._resident.popitem(last=False)
            self._resident_mb -= evicted_mb
            self.evictions += 1
        self._resident[function_name] = resident_mb
        self._resident_mb += resident_mb

    # ------------------------------------------------------------------
    # Failure injection (site outages, §4.4's capacity-crunch scenario)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Take the machine down: refuse admission, abort running calls.

        Aborted calls are reported as :data:`CallOutcome.WORKER_FULL`
        so the at-least-once machinery NACKs and retries them elsewhere.
        """
        if not self.online:
            return
        self.online = False
        self._interrupt_all()

    def recover(self) -> None:
        """Bring the machine back; the runtime restarts unseeded
        (its JIT must re-warm, §4.5.1)."""
        if self.online:
            return
        self.online = True
        self._jit_speed_at = -1.0
        self.jit.restart(self.sim.now, with_profile_data=False)
        self._resident.clear()
        self._resident_mb = 0.0
        self._sync_mem()

    def _interrupt_all(self) -> None:
        interrupted = list(self._running.values())
        self._running.clear()
        now = self.sim.now
        arr = self._arrays
        i = self._index
        for rc in interrupted:
            rc.finish_handle.cancel()
            self.cpu.on_finish(now, rc.cpu_load)
            self._live_memory_mb -= rc.memory_mb
            # Columns must be consistent before each on_finish callback:
            # the NACK path it triggers may probe admission state.
            arr.running[i] = len(self._running)
            arr.cpu_load[i] = self.cpu.load
            arr.mem_mb[i] = (self._baseline_mb + self._resident_mb +
                             self._live_memory_mb)
            arr.total_running -= 1
            rc.call.finish_time = None
            if self.on_finish is not None:
                self.on_finish(rc.call, CallOutcome.WORKER_FULL)

    # ------------------------------------------------------------------
    # Code rollout hooks (called by CodeDeployer)
    # ------------------------------------------------------------------
    def adopt_version(self, version: CodeVersion, seeded: bool) -> None:
        """Switch to a new code bundle; restarts the JIT ramp."""
        if version.version <= self.code_version.version:
            return
        self.code_version = version
        self._jit_speed_at = -1.0
        self.jit.restart(self.sim.now, with_profile_data=seeded)

    def receive_profile_data(self) -> None:
        self._jit_speed_at = -1.0
        self.jit.receive_profile_data(self.sim.now)

    # ------------------------------------------------------------------
    # Accounting windows
    # ------------------------------------------------------------------
    def take_utilization_window(self) -> float:
        """CPU utilization since the last call (drives Figures 7/8)."""
        return self.cpu.take_window(self.sim.now)

    def take_distinct_functions_window(self) -> int:
        """Distinct functions executed since last call (drives Figure 9)."""
        count = len(self._window_functions)
        self._window_functions = set()
        return count

    @property
    def resident_functions(self) -> int:
        return len(self._resident)
