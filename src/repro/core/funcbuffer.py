"""FuncBuffer: the scheduler's per-function in-memory buffer (§4.4).

Calls retrieved from DurableQs are merged into one buffer per function,
ordered **first by criticality, then by execution deadline** — under a
capacity crunch the important calls run first, and among equals the most
urgent deadline wins.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .call import FunctionCall


class FuncBuffer:
    """Priority buffer of pending calls for a single function."""

    def __init__(self, function_name: str) -> None:
        self.function_name = function_name
        self._heap: List[Tuple[Tuple[float, float, int], FunctionCall]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, call: FunctionCall) -> None:
        if call.function_name != self.function_name:
            raise ValueError(
                f"call for {call.function_name!r} pushed into buffer of "
                f"{self.function_name!r}")
        heapq.heappush(self._heap, (call.sort_key(), call))

    def peek(self) -> Optional[FunctionCall]:
        return self._heap[0][1] if self._heap else None

    def pop(self) -> FunctionCall:
        if not self._heap:
            raise IndexError(f"FuncBuffer {self.function_name!r} is empty")
        return heapq.heappop(self._heap)[1]

    def head_key(self) -> Optional[Tuple[float, float, int]]:
        """Priority key of the head call (None when empty)."""
        return self._heap[0][0] if self._heap else None
