"""Submitter: the write path into XFaaS (§4.2).

Submitters improve efficiency by *batching* calls into single DurableQ
writes, spill oversized arguments into a distributed key-value store,
and enforce rate-limiting policies by consulting the Central Rate
Limiter.  Each region runs **two submitter pools** — one for normal
clients and one for very spiky clients — so a Figure 4-style client
cannot degrade everyone else's submission latency.  Clients that turn
spiky while on the normal pool are throttled by default and flagged for
operators (moving them is an explicit SLO change, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..sim.kernel import Simulator
from .call import CallState, FunctionCall
from .kvstore import DistributedKVStore
from .queuelb import QueueLB
from .ratelimiter import ClientRateLimiter


@dataclass(frozen=True)
class SubmitterParams:
    """Batching, argument-spill, and spiky-client detection tunables."""

    batch_flush_interval_s: float = 0.100
    batch_max_size: int = 100
    #: Arguments above this size go to the KV store, not the DurableQ.
    args_spill_threshold_kb: float = 64.0
    kv_store_write_latency_s: float = 0.010
    #: Sustained submissions/s above which a normal-pool client is
    #: classified spiky (EMA-based).
    spiky_rate_threshold: float = 200.0
    spiky_ema_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.batch_flush_interval_s <= 0:
            raise ValueError("batch_flush_interval_s must be positive")
        if self.batch_max_size < 1:
            raise ValueError("batch_max_size must be >= 1")


@dataclass
class _ClientStats:
    """Lazy per-client submission-rate EMA (rolled at submit time)."""

    ema_rate: float = 0.0
    window_count: int = 0
    window_start: float = 0.0

    def observe(self, now: float, alpha: float) -> None:
        """Count one submission, folding completed 1 s windows into the EMA."""
        elapsed = now - self.window_start
        if elapsed >= 1.0:
            rate = self.window_count / elapsed
            self.ema_rate = (1 - alpha) * self.ema_rate + alpha * rate
            # Long idle gaps decay the EMA like explicit zero windows.
            idle_windows = min(int(elapsed) - 1, 60)
            if idle_windows > 0:
                self.ema_rate *= (1 - alpha) ** idle_windows
            self.window_start = now
            self.window_count = 0
        self.window_count += 1


class Submitter:
    """One submitter pool (normal or spiky) in one region."""

    def __init__(self, sim: Simulator, region: str, queuelb: QueueLB,
                 client_limiter: ClientRateLimiter,
                 params: SubmitterParams = SubmitterParams(),
                 pool: str = "normal",
                 on_throttle: Optional[Callable[[FunctionCall], None]] = None,
                 throttle_spiky_clients: bool = True,
                 kvstore: Optional[DistributedKVStore] = None) -> None:
        self.sim = sim
        self.region = region
        self.queuelb = queuelb
        self.client_limiter = client_limiter
        self.params = params
        self.pool = pool
        self.on_throttle = on_throttle
        self.throttle_spiky_clients = throttle_spiky_clients
        self.kvstore = kvstore
        self._batch: List[FunctionCall] = []
        self._flush_scheduled = False
        self._flush_handle = None
        self._clients: Dict[str, _ClientStats] = {}
        self.accepted_count = 0
        self.throttled_count = 0
        self.spill_count = 0
        self.flush_count = 0
        self.spiky_alerts: Set[str] = set()

    # ------------------------------------------------------------------
    def submit(self, call: FunctionCall) -> bool:
        """Accept or throttle one call; accepted calls batch to QueueLB."""
        now = self.sim._now
        client = call.spec.team
        stats = self._clients.setdefault(
            client, _ClientStats(window_start=now))
        stats.observe(now, self.params.spiky_ema_alpha)

        if not self.client_limiter.try_acquire(client, now):
            return self._throttle(call)
        if (self.throttle_spiky_clients and self.pool == "normal"
                and stats.ema_rate > self.params.spiky_rate_threshold):
            # Spiky client on the normal pool: throttle by default and
            # alert operators to negotiate a move to the spiky pool.
            self.spiky_alerts.add(client)
            return self._throttle(call)

        if call.args_size_kb > self.params.args_spill_threshold_kb:
            # §4.2: oversized arguments go to the distributed KV store;
            # a full store rejects the submission outright.
            if self.kvstore is not None and not self.kvstore.put(
                    f"args/{call.call_id}", call.args_size_kb):
                return self._throttle(call)
            call.args_spilled = True
            self.spill_count += 1
        self._batch.append(call)
        self.accepted_count += 1
        if len(self._batch) >= self.params.batch_max_size:
            self._flush()
        elif not self._flush_scheduled:
            # Event-driven flush: armed only while a batch is pending.
            self._flush_scheduled = True
            self._flush_handle = self.sim.call_after(
                self.params.batch_flush_interval_s, self._flush)
        return True

    def _throttle(self, call: FunctionCall) -> bool:
        call.state = CallState.THROTTLED
        self.throttled_count += 1
        if self.on_throttle is not None:
            self.on_throttle(call)
        return False

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        # A full-batch flush disarms a pending timer instead of letting
        # it fire into the next batch early (and waste a queue event).
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._flush_scheduled = False
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        self.flush_count += 1
        # One batched write; spilled args add a KV round trip first.
        delay = self.params.kv_store_write_latency_s if any(
            c.args_spilled for c in batch) else 0.0

        def write() -> None:
            for call in batch:
                self.queuelb.route(call)
        if delay > 0:
            self.sim.call_after(delay, write)
        else:
            write()

    def client_rate(self, client: str) -> float:
        stats = self._clients.get(client)
        return stats.ema_rate if stats else 0.0

    def stop(self) -> None:
        self._flush()


class SubmitterFrontend:
    """Per-region entry point routing clients to the right pool (§4.2)."""

    def __init__(self, normal: Submitter, spiky: Submitter) -> None:
        if normal.region != spiky.region:
            raise ValueError("pools must live in the same region")
        self.normal = normal
        self.spiky = spiky
        self._spiky_clients: Set[str] = set()

    @property
    def region(self) -> str:
        return self.normal.region

    def register_spiky_client(self, client: str) -> None:
        """Operator action after negotiating the SLO change (§4.2)."""
        self._spiky_clients.add(client)

    def submit(self, call: FunctionCall) -> bool:
        pool = (self.spiky if call.spec.team in self._spiky_clients
                else self.normal)
        return pool.submit(call)

    @property
    def spiky_alerts(self) -> Set[str]:
        return self.normal.spiky_alerts
