"""Function-call records and lifecycle state.

A :class:`FunctionCall` is created at submission and carries its
lifecycle timestamps through the pipeline of Figure 6: submitter →
QueueLB → DurableQ → scheduler (FuncBuffer → RunQ) → WorkerLB → worker.

Since the call-arena round (DESIGN.md §7), a ``FunctionCall`` is not a
dataclass but a thin **view** over one row of a
:class:`~repro.core.callarena.CallArena`: the hot numeric/state fields
live in flat C-typed columns, and the view holds only the row index,
the row's generation, and the handful of fields that are hottest on the
dispatch path (``spec``, ``call_id``, ``source_level``, ``resources``,
the memoized sort key).  Every property reads/writes its column
bit-identically to the old dataclass field, and checks the row
generation first so a view held past its call's release raises
:class:`~repro.core.callarena.StaleCallError` instead of aliasing a
recycled slot.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from ..workloads.spec import FunctionSpec
from .callarena import NO_OUTCOME, NO_REGION, CallArena, StaleCallError

__all__ = ["CallIdAllocator", "CallState", "CallOutcome", "FunctionCall",
           "CallArena", "StaleCallError"]


class CallIdAllocator:
    """Deterministic per-owner source of call ids (1, 2, 3, ...).

    Ids must depend only on the run that allocates them, never on how
    many simulations the process ran before (simlint SL001 — the PR 2
    ``core/platform.py`` bug), so the counter lives on the owning
    object (platform, pool, test harness), not at module level.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def allocate(self) -> int:
        n = self._next
        self._next += 1
        return n


class CallState(enum.Enum):
    """Where a call currently is in the Figure 6 pipeline."""

    SUBMITTED = "submitted"
    QUEUED = "queued"          # persisted in a DurableQ
    BUFFERED = "buffered"      # leased into a scheduler FuncBuffer
    RUNNABLE = "runnable"      # in the RunQ
    RUNNING = "running"        # executing on a worker
    COMPLETED = "completed"
    FAILED = "failed"
    THROTTLED = "throttled"    # rejected at submission by rate limiting
    EXPIRED = "expired"


class CallOutcome(enum.Enum):
    """Terminal result of one execution attempt."""

    OK = "ok"
    ERROR = "error"
    BACKPRESSURE = "backpressure"
    WORKER_FULL = "worker_full"
    ISOLATION_DENIED = "isolation_denied"


# Arena columns store enum members as small int codes.  The code is
# attached to each member (``.code``) and the tuples below map codes
# back, so ``call.state is CallState.RUNNING`` identity checks keep
# working — the column round-trip always yields the singleton member.
_STATE_BY_CODE: Tuple[CallState, ...] = tuple(CallState)
_OUTCOME_BY_CODE: Tuple[CallOutcome, ...] = tuple(CallOutcome)
for _i, _member in enumerate(_STATE_BY_CODE):
    _member.code = _i
for _i, _member in enumerate(_OUTCOME_BY_CODE):
    _member.code = _i
del _i, _member

#: Arena for standalone constructions (tests, baselines, benchmarks)
#: that never pass ``arena=``.  Rows here are pinned and thus never
#: recycled — behaviorally identical to the old dataclass, just
#: columnar.  Platform-owned calls use the platform's own arena.
_DEFAULT_ARENA = CallArena()


_NAN = float("nan")
_SUBMITTED_CODE = CallState.SUBMITTED.code
_QUEUED_CODE = CallState.QUEUED.code
_BUFFERED_CODE = CallState.BUFFERED.code
_RUNNABLE_CODE = CallState.RUNNABLE.code
_RUNNING_CODE = CallState.RUNNING.code


def _col_property(name: str, get_expr: str, set_expr: str):
    """Compile a generation-checked property over one arena column.

    The accessor bodies are *generated source*, not closures: a closure
    would pay a ``getattr(arena, name)`` string lookup per access, while
    the compiled form reads ``arena.<name>`` with a direct (adaptive)
    attribute load.  These properties are the single hottest code in the
    simulator — every component touches call fields on every event — so
    the property layer must cost as close to a slot read as Python
    allows.  ``get_expr``/``set_expr`` are expressions over ``col``
    (the indexed raw column value for get; the incoming ``value`` for
    set) so optional/interned columns can decode/encode inline.
    """
    src = (
        f"def fget(self):\n"
        f"    arena = self.arena\n"
        f"    i = self.slot\n"
        f"    if arena.generation[i] != self.gen:\n"
        f"        raise StaleCallError(\n"
        f"            f'call {{self.call_id}}: stale view of released "
        f"slot {{i}} (reading {name})')\n"
        f"    col = arena.{name}[i]\n"
        f"    return {get_expr}\n"
        f"def fset(self, value):\n"
        f"    arena = self.arena\n"
        f"    i = self.slot\n"
        f"    if arena.generation[i] != self.gen:\n"
        f"        raise StaleCallError(\n"
        f"            f'call {{self.call_id}}: stale view of released "
        f"slot {{i}} (writing {name})')\n"
        f"    arena.{name}[i] = {set_expr}\n"
    )
    ns = {"StaleCallError": StaleCallError, "NO_REGION": NO_REGION,
          "NO_OUTCOME": NO_OUTCOME, "_NAN": _NAN,
          "_STATE_BY_CODE": _STATE_BY_CODE,
          "_OUTCOME_BY_CODE": _OUTCOME_BY_CODE}
    exec(src, ns)  # noqa: S102 — template above, constants only
    return property(ns["fget"], ns["fset"])


def _float_col(name: str):
    """Property over a plain float column (bit-exact C-double storage)."""
    return _col_property(name, "col", "value")


def _opt_float_col(name: str):
    """Property over an optional float column (NaN = None)."""
    return _col_property(name, "None if col != col else col",
                         "_NAN if value is None else value")


def _opt_region_col(name: str):
    """Property over an interned-region column (-1 = None)."""
    return _col_property(
        name, "None if col == NO_REGION else arena.regions[col]",
        "NO_REGION if value is None else arena.intern_region(value)")


class FunctionCall:
    """One invocation travelling through the platform (arena row view).

    Construction allocates an arena row (the module-level default arena
    when ``arena=`` is omitted) and accepts exactly the old dataclass
    signature, so every existing call site and test works unchanged.
    ``pinned=True`` (the default) exempts the row from recycling; the
    bulk submission paths pass ``pinned=False`` and release the row when
    the call terminalizes.
    """

    __slots__ = ("arena", "slot", "gen", "spec", "call_id",
                 "source_level", "resources", "_sort_key")

    def __init__(self, spec: FunctionSpec, submit_time: float,
                 start_time: float, region_submitted: str,
                 source_level: int = 0, args_size_kb: float = 4.0,
                 call_id: int = 0, state: CallState = CallState.SUBMITTED,
                 attempts: int = 0,
                 durableq_region: Optional[str] = None,
                 scheduler_region: Optional[str] = None,
                 dispatch_time: Optional[float] = None,
                 finish_time: Optional[float] = None,
                 worker_name: Optional[str] = None,
                 outcome: Optional[CallOutcome] = None,
                 resources: Optional[Tuple[float, float, float]] = None,
                 args_spilled: bool = False,
                 arena: Optional[CallArena] = None,
                 pinned: bool = True) -> None:
        if start_time < submit_time:
            raise ValueError(
                f"start_time {start_time} precedes submit_time "
                f"{submit_time}")
        if args_size_kb < 0:
            raise ValueError("args_size_kb must be >= 0")
        if arena is None:
            arena = _DEFAULT_ARENA
        self.arena = arena
        self.spec = spec
        self.call_id = call_id
        self.source_level = source_level
        self.resources = resources
        self._sort_key = None
        i = arena.allocate(
            arena.intern_spec(spec), submit_time, start_time,
            arena.intern_region(region_submitted), args_size_kb,
            state.code, attempts, pinned)
        self.slot = i
        self.gen = arena.generation[i]
        # Rarely-supplied progress fields (rehydration, tests).
        if durableq_region is not None:
            arena.durableq_region[i] = arena.intern_region(durableq_region)
        if scheduler_region is not None:
            arena.scheduler_region[i] = arena.intern_region(scheduler_region)
        if dispatch_time is not None:
            arena.dispatch_time[i] = dispatch_time
        if finish_time is not None:
            arena.finish_time[i] = finish_time
        if worker_name is not None:
            arena.worker_name[i] = worker_name
        if outcome is not None:
            arena.outcome[i] = outcome.code
        if args_spilled:
            arena.args_spilled[i] = 1

    @classmethod
    def new_streamed(cls, spec: FunctionSpec, submit_time: float,
                     start_time: float, region: str, call_id: int,
                     arena: CallArena) -> "FunctionCall":
        """Kwarg-free bulk-arrival constructor (the submit_stream path).

        Field-for-field identical to ``cls(spec=..., submit_time=...,
        start_time=..., region_submitted=..., call_id=..., arena=...,
        pinned=False)`` with every other argument defaulted, minus the
        15-keyword binding, the range validation (the arrival generator
        only produces ``start_time >= submit_time`` and the default
        args size), and the rare-field branches.
        """
        self = object.__new__(cls)
        self.arena = arena
        self.spec = spec
        self.call_id = call_id
        self.source_level = 0
        self.resources = None
        self._sort_key = None
        i = arena.allocate(
            arena.intern_spec(spec), submit_time, start_time,
            arena.intern_region(region), 4.0, _SUBMITTED_CODE, 0, False)
        self.slot = i
        self.gen = arena.generation[i]
        return self

    # -- column-backed fields ------------------------------------------
    submit_time = _float_col("submit_time")
    #: Caller-requested execution start time (§4.6: may be the future).
    start_time = _float_col("start_time")
    args_size_kb = _float_col("args_size_kb")
    dispatch_time = _opt_float_col("dispatch_time")
    finish_time = _opt_float_col("finish_time")
    region_submitted = _opt_region_col("region_submitted")
    durableq_region = _opt_region_col("durableq_region")
    scheduler_region = _opt_region_col("scheduler_region")

    @property
    def state(self) -> CallState:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(reading state)")
        return _STATE_BY_CODE[arena.state[i]]

    @state.setter
    def state(self, value: CallState) -> None:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(writing state)")
        arena.state[i] = value.code

    @property
    def outcome(self) -> Optional[CallOutcome]:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(reading outcome)")
        code = arena.outcome[i]
        return None if code == NO_OUTCOME else _OUTCOME_BY_CODE[code]

    @outcome.setter
    def outcome(self, value: Optional[CallOutcome]) -> None:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(writing outcome)")
        arena.outcome[i] = NO_OUTCOME if value is None else value.code

    @property
    def attempts(self) -> int:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(reading attempts)")
        return arena.attempts[i]

    @attempts.setter
    def attempts(self, value: int) -> None:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(writing attempts)")
        arena.attempts[i] = value

    @property
    def worker_name(self) -> Optional[str]:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(reading worker_name)")
        return arena.worker_name[i]

    @worker_name.setter
    def worker_name(self, value: Optional[str]) -> None:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(writing worker_name)")
        arena.worker_name[i] = value

    @property
    def args_spilled(self) -> bool:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(reading args_spilled)")
        return bool(arena.args_spilled[i])

    @args_spilled.setter
    def args_spilled(self, value: bool) -> None:
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(writing args_spilled)")
        arena.args_spilled[i] = 1 if value else 0

    # -- derived -------------------------------------------------------
    @property
    def function_name(self) -> str:
        return self.spec.name

    @property
    def deadline_time(self) -> float:
        """Absolute completion deadline (§2.4): start time + deadline."""
        return self.start_time + self.spec.deadline_s

    @property
    def criticality(self) -> int:
        return int(self.spec.criticality)

    def is_ready(self, now: float) -> bool:
        """Past its requested execution start time."""
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(is_ready)")
        return now >= arena.start_time[i]

    def sort_key(self) -> Tuple[float, float, int]:
        """FuncBuffer order (§4.4): criticality first, then deadline.

        Returns a tuple for a *min*-heap: higher criticality and earlier
        deadline come first; call id breaks ties deterministically.
        """
        key = self._sort_key
        if key is None:
            spec = self.spec
            key = (-int(spec.criticality),
                   self.start_time + spec.deadline_s, self.call_id)
            if self.call_id:
                # Only memoize once the allocator has assigned an id.
                self._sort_key = key
        return key

    # -- fused hot-path transitions ------------------------------------
    # Each multi-column lifecycle transition on the dispatch/completion
    # path pays exactly one generation check instead of one per property
    # access.  Semantics are identical to the unfused property writes.
    # The zero-argument single-state marks exist for the same reason:
    # a bound-method call specializes better than a property descriptor
    # set and skips the enum ``.code`` lookup — the pipeline performs
    # millions of these per day-run.

    def mark_buffered(self) -> None:
        """State := BUFFERED (leased into a scheduler FuncBuffer)."""
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(mark_buffered)")
        arena.state[i] = _BUFFERED_CODE

    def mark_runnable(self) -> None:
        """State := RUNNABLE (parked in the RunQ)."""
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(mark_runnable)")
        arena.state[i] = _RUNNABLE_CODE

    def mark_running(self) -> None:
        """State := RUNNING (handed to the WorkerLB for placement)."""
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(mark_running)")
        arena.state[i] = _RUNNING_CODE

    def mark_dispatched(self, worker_name: str, now: float) -> None:
        """Worker pickup: record the worker and the *first* dispatch time.

        Retries keep the original dispatch time (queueing delay is
        measured to first pickup, matching the unfused
        ``dispatch_time = now if ... is None else ...`` idiom).
        """
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(mark_dispatched)")
        arena.worker_name[i] = worker_name
        col = arena.dispatch_time
        if col[i] != col[i]:  # NaN sentinel: not yet dispatched
            col[i] = now

    def mark_queued(self, region: str) -> None:
        """DurableQ persist: QUEUED state plus the owning queue region."""
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(mark_queued)")
        arena.state[i] = _QUEUED_CODE
        arena.durableq_region[i] = arena.intern_region(region)

    def terminalize(self, outcome: CallOutcome, state: CallState,
                    now: float) -> None:
        """Terminal transition: outcome, final state, finish time.

        The finish time is only stamped when still unset — workers
        record completion times themselves; this backfills expiries and
        failures that never reached a worker.
        """
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(terminalize)")
        arena.outcome[i] = outcome.code
        arena.state[i] = state.code
        col = arena.finish_time
        if col[i] != col[i]:
            col[i] = now

    def trace_snapshot(self, outcome_name: str) -> tuple:
        """The 17-field ``CallTrace`` constructor tuple, read columnar.

        ``TraceLog.add_call`` snapshots finished calls through this
        (single generation check, direct column reads) so trace capture
        never retains the view past the platform's release point.
        """
        arena = self.arena
        i = self.slot
        if arena.generation[i] != self.gen:
            raise StaleCallError(
                f"call {self.call_id}: stale view of released slot {i} "
                f"(trace_snapshot)")
        spec = self.spec
        resources = self.resources or (0.0, 0.0, 0.0)
        dispatch = arena.dispatch_time[i]
        finish = arena.finish_time[i]
        sched_idx = arena.scheduler_region[i]
        worker = arena.worker_name[i]
        return (self.call_id, spec.name, spec.trigger.value,
                int(spec.criticality), spec.quota_type.value,
                arena.submit_time[i], arena.start_time[i],
                -1.0 if dispatch != dispatch else dispatch,
                -1.0 if finish != finish else finish,
                arena.regions[arena.region_submitted[i]],
                "" if sched_idx == NO_REGION else arena.regions[sched_idx],
                "" if worker is None else worker,
                outcome_name, resources[0], resources[1], resources[2],
                arena.attempts[i] + 1)

    def __repr__(self) -> str:
        return (f"FunctionCall(id={self.call_id}, "
                f"function={self.spec.name!r}, slot={self.slot}, "
                f"gen={self.gen})")
