"""Function-call records and lifecycle state.

A :class:`FunctionCall` is created at submission and carries its
lifecycle timestamps through the pipeline of Figure 6: submitter →
QueueLB → DurableQ → scheduler (FuncBuffer → RunQ) → WorkerLB → worker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..util import add_slots
from ..workloads.spec import FunctionSpec


class CallIdAllocator:
    """Deterministic per-owner source of call ids (1, 2, 3, ...).

    Ids must depend only on the run that allocates them, never on how
    many simulations the process ran before (simlint SL001 — the PR 2
    ``core/platform.py`` bug), so the counter lives on the owning
    object (platform, pool, test harness), not at module level.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def allocate(self) -> int:
        n = self._next
        self._next += 1
        return n


class CallState(enum.Enum):
    """Where a call currently is in the Figure 6 pipeline."""

    SUBMITTED = "submitted"
    QUEUED = "queued"          # persisted in a DurableQ
    BUFFERED = "buffered"      # leased into a scheduler FuncBuffer
    RUNNABLE = "runnable"      # in the RunQ
    RUNNING = "running"        # executing on a worker
    COMPLETED = "completed"
    FAILED = "failed"
    THROTTLED = "throttled"    # rejected at submission by rate limiting
    EXPIRED = "expired"


class CallOutcome(enum.Enum):
    """Terminal result of one execution attempt."""

    OK = "ok"
    ERROR = "error"
    BACKPRESSURE = "backpressure"
    WORKER_FULL = "worker_full"
    ISOLATION_DENIED = "isolation_denied"


@add_slots
@dataclass
class FunctionCall:
    """One invocation travelling through the platform."""

    spec: FunctionSpec
    submit_time: float
    #: Caller-requested execution start time (§4.6: may be the future).
    start_time: float
    region_submitted: str
    #: Bell–LaPadula classification level of the call's arguments (§4.7).
    source_level: int = 0
    args_size_kb: float = 4.0
    #: Assigned by the owner's :class:`CallIdAllocator`; 0 = unassigned.
    call_id: int = 0
    state: CallState = CallState.SUBMITTED
    attempts: int = 0

    # Filled in as the call progresses.
    durableq_region: Optional[str] = None
    scheduler_region: Optional[str] = None
    dispatch_time: Optional[float] = None
    finish_time: Optional[float] = None
    worker_name: Optional[str] = None
    outcome: Optional[CallOutcome] = None
    #: Sampled per-invocation resources (cpu_minstr, memory_mb, exec_s);
    #: sampled once at first dispatch so retries replay the same demand.
    resources: Optional[Tuple[float, float, float]] = None
    #: True when the submitter spilled oversized args to the KV store.
    args_spilled: bool = False
    #: Memoized :meth:`sort_key` — every buffer/RunQ (re)insertion keys
    #: on it, and all of its inputs are fixed at submission.
    _sort_key: Optional[Tuple[float, float, int]] = None

    def __post_init__(self) -> None:
        if self.start_time < self.submit_time:
            raise ValueError(
                f"start_time {self.start_time} precedes submit_time "
                f"{self.submit_time}")
        if self.args_size_kb < 0:
            raise ValueError("args_size_kb must be >= 0")

    @property
    def function_name(self) -> str:
        return self.spec.name

    @property
    def deadline_time(self) -> float:
        """Absolute completion deadline (§2.4): start time + deadline."""
        return self.start_time + self.spec.deadline_s

    @property
    def criticality(self) -> int:
        return int(self.spec.criticality)

    def is_ready(self, now: float) -> bool:
        """Past its requested execution start time."""
        return now >= self.start_time

    def sort_key(self) -> Tuple[float, float, int]:
        """FuncBuffer order (§4.4): criticality first, then deadline.

        Returns a tuple for a *min*-heap: higher criticality and earlier
        deadline come first; call id breaks ties deterministically.
        """
        key = self._sort_key
        if key is None:
            key = (-int(self.spec.criticality),
                   self.start_time + self.spec.deadline_s, self.call_id)
            if self.call_id:
                # Only memoize once the allocator has assigned an id.
                self._sort_key = key
        return key
