"""XFaaS core: every component of the paper's Figure 6."""

from .call import CallOutcome, CallState, FunctionCall
from .codedeploy import CodeDeployer, CodeVersion, RolloutParams
from .config import CachedConfig, ConfigStore
from .congestion import CongestionController, CongestionParams
from .durableq import DurableQ
from .funcbuffer import FuncBuffer
from .gtc import (
    GlobalTrafficConductor,
    GtcParams,
    TrafficMatrix,
    compute_traffic_matrix,
)
from .isolation import (
    IsolationViolation,
    Namespace,
    NamespaceRegistry,
    check_flow,
    flow_allowed,
)
from .jit import JitParams, RuntimeJit
from .kvstore import DistributedKVStore, KVStoreParams
from .locality import LocalityOptimizer, LocalityParams
from .platform import PlatformParams, XFaaS
from .queuelb import (
    ROUTING_KEY,
    QueueLB,
    capacity_proportional_routing,
    local_only_routing,
)
from .ratelimiter import CentralRateLimiter, ClientRateLimiter, TokenBucket
from .rim import Rim
from .runq import RunQ
from .scheduler import S_MULTIPLIER_KEY, TRAFFIC_MATRIX_KEY, Scheduler, SchedulerParams
from .submitter import Submitter, SubmitterFrontend, SubmitterParams
from .utilization import UtilizationController, UtilizationParams
from .worker import Worker, WorkerParams
from .workerarrays import WorkerArrays
from .workerlb import WorkerLB

__all__ = [
    "CachedConfig",
    "CallOutcome",
    "CallState",
    "CentralRateLimiter",
    "ClientRateLimiter",
    "CodeDeployer",
    "CodeVersion",
    "ConfigStore",
    "CongestionController",
    "CongestionParams",
    "DurableQ",
    "FuncBuffer",
    "FunctionCall",
    "GlobalTrafficConductor",
    "GtcParams",
    "IsolationViolation",
    "DistributedKVStore",
    "JitParams",
    "KVStoreParams",
    "LocalityOptimizer",
    "LocalityParams",
    "Namespace",
    "NamespaceRegistry",
    "PlatformParams",
    "QueueLB",
    "ROUTING_KEY",
    "Rim",
    "RolloutParams",
    "RunQ",
    "RuntimeJit",
    "S_MULTIPLIER_KEY",
    "Scheduler",
    "SchedulerParams",
    "Submitter",
    "SubmitterFrontend",
    "SubmitterParams",
    "TRAFFIC_MATRIX_KEY",
    "TokenBucket",
    "TrafficMatrix",
    "UtilizationController",
    "UtilizationParams",
    "Worker",
    "WorkerArrays",
    "WorkerLB",
    "WorkerParams",
    "XFaaS",
    "capacity_proportional_routing",
    "check_flow",
    "compute_traffic_matrix",
    "flow_allowed",
    "local_only_routing",
]
