"""Elastic (harvest) capacity for opportunistic functions.

§5.3: "Using opportunistic quota would allow XFaaS to further reduce its
peak capacity needs, as well as run these functions with low-cost
elastic capacity, which is similar to AWS' Spot Instances."  The paper
lists this as ongoing work; this module implements it as an extension.

An :class:`ElasticPool` adds workers that appear and disappear on a
schedule (capacity harvested from other services' troughs).  Elastic
workers only accept opportunistic / low-criticality calls — reserved
SLOs must never depend on capacity that can vanish.  On reclaim,
running calls are killed and NACKed back to their DurableQs; XFaaS's
at-least-once semantics re-runs them elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..cluster.machine import MachineSpec
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .call import FunctionCall
from .worker import Worker, WorkerParams


class ElasticWorker(Worker):
    """A worker that only accepts background (opportunistic/LOW) calls
    and can be reclaimed at any moment."""

    __slots__ = ("available", "reclaim_count")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.available = False
        self.reclaim_count = 0

    def can_admit(self, call: FunctionCall) -> bool:
        if not self.available:
            return False
        if not self._is_background(call):
            return False
        return super().can_admit(call)

    def reclaim(self) -> None:
        """The capacity owner takes the machine back mid-execution.

        Interrupted calls NACK back through the at-least-once path,
        exactly like a machine failure."""
        self.available = False
        self.reclaim_count += 1
        self._interrupt_all()

    def grant(self) -> None:
        self.available = True


@dataclass(frozen=True)
class ElasticSchedule:
    """When harvested capacity is available, as fractions of the day.

    Default: elastic workers exist during the donor services' trough —
    roughly the hours when XFaaS itself is at its reserved-load peak's
    mirror (night hours of the donor)."""

    available_windows: tuple = ((0.0, 6 * 3600.0), (20 * 3600.0, 86_400.0))

    def is_available(self, t: float) -> bool:
        tod = t % 86_400.0
        return any(lo <= tod < hi for lo, hi in self.available_windows)


class ElasticPool:
    """Manages a region's elastic workers against a schedule."""

    def __init__(self, sim: Simulator, region: str, n_workers: int,
                 machine: MachineSpec = MachineSpec(),
                 params: WorkerParams = WorkerParams(),
                 schedule: ElasticSchedule = ElasticSchedule(),
                 check_interval_s: float = 60.0,
                 on_finish: Optional[Callable] = None,
                 timers: Optional[SamplerHub] = None) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.sim = sim
        self.region = region
        self.schedule = schedule
        self.workers: List[ElasticWorker] = [
            ElasticWorker(sim, f"{region}/elastic{w:02d}", region,
                          machine=machine, params=params,
                          on_finish=on_finish)
            for w in range(n_workers)]
        self.grants = 0
        self.reclaims = 0
        self._task = (timers if timers is not None else sim).every(
            check_interval_s, self._check)
        self._check()

    def _check(self) -> None:
        available = self.schedule.is_available(self.sim.now)
        # Legitimate: grant/reclaim must touch every elastic view; pools
        # are small and the sweep runs once a minute.
        for worker in self.workers:  # simlint: disable=SL008 -- reclaim
            if available and not worker.available:
                worker.grant()
                self.grants += 1
            elif not available and worker.available:
                worker.reclaim()
                self.reclaims += 1

    @property
    def available_workers(self) -> List[ElasticWorker]:
        return [w for w in self.workers  # simlint: disable=SL008 -- view
                if w.available]

    def stop(self) -> None:
        self._task.cancel()
