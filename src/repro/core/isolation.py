"""Namespaces and Bell–LaPadula data isolation (§2.4, §4.7).

* A **namespace** is a strongly isolated environment: one runtime, a
  dedicated worker pool, and a set of functions.  Functions needing
  strong security/performance isolation go to different namespaces
  (physical isolation).
* Within a namespace, multiple functions share a Linux process; data
  isolation follows **Bell–LaPadula**: data may only flow from lower to
  higher classification levels.  A call whose arguments come from
  isolation zone ``source_level`` may execute in a function whose zone
  is ``execution_level`` iff ``source_level <= execution_level``.
  Both the scheduler and the worker enforce the check (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..workloads.spec import FunctionSpec


class IsolationViolation(Exception):
    """A call's argument flow would violate the Bell–LaPadula policy."""


@dataclass(frozen=True)
class Namespace:
    """A strongly isolated environment: runtime + dedicated worker pool."""

    name: str
    runtime: str = "php"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("namespace name must be non-empty")


def flow_allowed(source_level: int, execution_level: int) -> bool:
    """Bell–LaPadula: data flows only from lower to higher levels."""
    return source_level <= execution_level


def check_flow(source_level: int, execution_level: int,
               function_name: str = "?") -> None:
    """Raise :class:`IsolationViolation` when the flow is not allowed."""
    if not flow_allowed(source_level, execution_level):
        raise IsolationViolation(
            f"arguments at level {source_level} may not flow into function "
            f"{function_name!r} executing at level {execution_level}")


class NamespaceRegistry:
    """Tracks namespaces and the functions assigned to them.

    Enforces the §2.4 invariants: a function belongs to exactly one
    namespace; each namespace supports exactly one runtime.
    """

    def __init__(self) -> None:
        self._namespaces: Dict[str, Namespace] = {}
        self._functions: Dict[str, str] = {}  # function name → namespace

    def create(self, name: str, runtime: str = "php") -> Namespace:
        if name in self._namespaces:
            existing = self._namespaces[name]
            if existing.runtime != runtime:
                raise ValueError(
                    f"namespace {name!r} already exists with runtime "
                    f"{existing.runtime!r}")
            return existing
        ns = Namespace(name=name, runtime=runtime)
        self._namespaces[name] = ns
        return ns

    def assign(self, spec: FunctionSpec) -> Namespace:
        """Assign a function to its namespace (creating a default one)."""
        ns = self._namespaces.get(spec.namespace)
        if ns is None:
            ns = self.create(spec.namespace)
        existing = self._functions.get(spec.name)
        if existing is not None and existing != spec.namespace:
            raise ValueError(
                f"function {spec.name!r} already belongs to namespace "
                f"{existing!r}; cannot also join {spec.namespace!r}")
        self._functions[spec.name] = spec.namespace
        return ns

    def namespace_of(self, function_name: str) -> str:
        ns = self._functions.get(function_name)
        if ns is None:
            raise KeyError(f"function {function_name!r} not assigned")
        return ns

    def namespaces(self) -> List[Namespace]:
        return list(self._namespaces.values())

    def functions_in(self, namespace: str) -> List[str]:
        return sorted(f for f, ns in self._functions.items()
                      if ns == namespace)
