"""QueueLB: routes submitted calls to DurableQs (§4.3).

The Configuration Management System delivers a routing policy mapping
each (source-region, destination-region) pair to a traffic fraction, so
QueueLBs can balance the *storage* load across regions whose DurableQ
capacity varies as wildly as worker capacity does (Fig 5).  Within the
destination region, calls are sharded across DurableQs by a random UUID,
spreading each function's calls evenly over shards.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from .call import FunctionCall
from .config import CachedConfig, ConfigStore
from .durableq import DurableQ

ROUTING_KEY = "queuelb/routing"


def local_only_routing(regions: List[str]) -> Dict[str, Dict[str, float]]:
    """Default policy: every region stores its own submissions."""
    return {src: {src: 1.0} for src in regions}


def capacity_proportional_routing(
        regions: List[str], shards_per_region: Dict[str, int],
        locality_bias: float = 0.5) -> Dict[str, Dict[str, float]]:
    """Blend regional locality with DurableQ-capacity proportionality.

    ``locality_bias`` of the traffic stays local; the rest is spread
    proportionally to each region's DurableQ shard count.
    """
    if not 0 <= locality_bias <= 1:
        raise ValueError("locality_bias must be in [0, 1]")
    total = sum(shards_per_region.get(r, 0) for r in regions)
    if total == 0:
        return local_only_routing(regions)
    policy: Dict[str, Dict[str, float]] = {}
    for src in regions:
        row = {}
        for dst in regions:
            share = shards_per_region.get(dst, 0) / total
            row[dst] = (1.0 - locality_bias) * share
        row[src] = row.get(src, 0.0) + locality_bias
        policy[src] = row
    return policy


class QueueLB:
    """One region's queue load balancer (stateless, replicated)."""

    def __init__(self, sim: Simulator, region: str,
                 durableqs_by_region: Dict[str, List[DurableQ]],
                 config: ConfigStore,
                 rng_name: Optional[str] = None,
                 jitter_stream: Optional[str] = None) -> None:
        if region not in durableqs_by_region:
            raise ValueError(f"no DurableQs registered for region {region!r}")
        self.sim = sim
        self.region = region
        self.durableqs_by_region = durableqs_by_region
        self.rng = sim.rng.stream(rng_name or f"queuelb/{region}")
        default_policy = local_only_routing(list(durableqs_by_region))
        self._routing = CachedConfig(sim, config, ROUTING_KEY,
                                     default=default_policy,
                                     jitter_stream=jitter_stream)
        self.routed_count = 0
        # Chooser memo keyed on the active routing row's identity; the
        # row object only changes when a new policy propagates, so the
        # cumulative-weight table is rebuilt per policy update instead of
        # per routed call.
        self._row_chooser: Tuple[Optional[dict], Optional[Callable[[], str]]] \
            = (None, None)

    def route(self, call: FunctionCall) -> DurableQ:
        """Pick a DurableQ for the call and enqueue it there."""
        dst_region = self._pick_region()
        shards = self.durableqs_by_region.get(dst_region)
        if not shards:
            shards = self.durableqs_by_region[self.region]
            dst_region = self.region
        # UUID sharding → uniform random shard (§4.3).
        shard = self.rng.choice(shards)
        shard.enqueue(call)
        self.routed_count += 1
        return shard

    def _pick_region(self) -> str:
        policy = self._routing.value or {}
        row = policy.get(self.region)
        if not row:
            return self.region
        memo_row, chooser = self._row_chooser
        if row is not memo_row:
            regions = sorted(row)
            weights = [max(row[r], 0.0) for r in regions]
            if sum(weights) <= 0:
                chooser = None
            else:
                chooser = self.rng.weighted_chooser(regions, weights)
            self._row_chooser = (row, chooser)
        if chooser is None:
            return self.region
        return chooser()

    def stop(self) -> None:
        self._routing.stop()
