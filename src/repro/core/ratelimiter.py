"""Central Rate Limiter: global quotas and RPS limits (§4.6.1).

Every function has an owner-set quota in CPU cycles per second
(modelled as millions of instructions per second).  The quota is turned
into a requests-per-second limit by dividing by the function's average
cost per invocation, tracked as an exponential moving average of
observed executions.  Usage is aggregated *globally*: all submitters and
schedulers consult the same limiter, so a function cannot exceed its
limit by spreading calls across regions.

Opportunistic functions get an *elastic* limit ``r = r0 × S`` where S is
the Utilization Controller's multiplier (§4.6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..util import add_slots
from ..workloads.spec import FunctionSpec, QuotaType


@add_slots
@dataclass
class TokenBucket:
    """Token bucket whose rate can be re-evaluated at every refill.

    Capacity is floored at ``min_tokens`` (for positive rates) so that
    low-RPS functions — e.g. a 0.05 RPS limit from a small quota — can
    still accumulate a whole token and execute at their trickle rate
    instead of starving forever.
    """

    rate: float
    burst_s: float = 10.0
    min_tokens: float = 1.0
    tokens: float = 0.0
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if self.burst_s <= 0:
            raise ValueError(f"burst_s must be positive, got {self.burst_s}")
        self.tokens = self.capacity

    @property
    def capacity(self) -> float:
        if self.rate <= 0:
            return 0.0
        return max(self.rate * self.burst_s, self.min_tokens)

    def refill(self, now: float) -> None:
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
            self.last_refill = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        self.refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def set_rate(self, now: float, rate: float) -> None:
        """Change the bucket's rate, settling accrued tokens first."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.refill(now)
        self.rate = rate
        self.tokens = min(self.tokens, self.capacity)

    def set_rate_and_take(self, now: float, rate: float) -> bool:
        """Hot-path fusion of ``set_rate`` + ``try_take``.

        Equivalent to calling them back to back but with a single refill
        (the second refill is always a no-op at the same ``now``) and a
        single capacity evaluation per rate value.
        """
        tokens = self.tokens
        burst_s = self.burst_s
        min_tokens = self.min_tokens
        old_rate = self.rate
        elapsed = now - self.last_refill
        if elapsed > 0:
            # Settle accrued tokens at the *old* rate first.  Capacity
            # is inlined (same arithmetic as the property — this method
            # runs a quarter-million times per simulated hour).
            if old_rate <= 0:
                cap = 0.0
            else:
                cap = old_rate * burst_s
                if cap < min_tokens:
                    cap = min_tokens
            tokens += elapsed * old_rate
            if tokens > cap:
                tokens = cap
            self.last_refill = now
        self.rate = rate
        if rate <= 0:
            cap = 0.0
        else:
            cap = rate * burst_s
            if cap < min_tokens:
                cap = min_tokens
        if tokens > cap:
            tokens = cap
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            return True
        self.tokens = tokens
        return False


@add_slots
@dataclass
class _FunctionQuota:
    spec: FunctionSpec
    prior_cost_minstr: float
    #: Weight (in samples) given to the registration-time prior.
    prior_weight: float = 20.0
    observed_total: float = 0.0
    observed_count: int = 0
    bucket: TokenBucket = field(init=False)
    #: Memoized ``base_rps``; invalidated by :meth:`record`.
    _base_rps_cache: Optional[float] = field(default=None, repr=False)
    #: Folded ``spec.quota_type is OPPORTUNISTIC`` for the acquire path.
    opportunistic: bool = field(init=False)

    def __post_init__(self) -> None:
        self.bucket = TokenBucket(rate=self.base_rps)
        self.opportunistic = self.spec.quota_type is QuotaType.OPPORTUNISTIC

    @property
    def avg_cost_minstr(self) -> float:
        """Prior-weighted cumulative mean of per-call cost.

        Per-call costs are heavy-tailed (Table 3: P99 ≫ mean), so an
        exponential moving average whips around with every tail sample
        and — via the harmonic-mean effect on quota ÷ cost — silently
        strangles the function's RPS limit.  A cumulative mean converges
        to the true mean and stays stable.
        """
        total = self.prior_cost_minstr * self.prior_weight + \
            self.observed_total
        count = self.prior_weight + self.observed_count
        return max(total / count, 1e-9)

    def record(self, cpu_minstr: float) -> None:
        self.observed_total += max(cpu_minstr, 0.0)
        self.observed_count += 1
        self._base_rps_cache = None

    @property
    def base_rps(self) -> float:
        """RPS limit from quota ÷ average per-call cost (§4.6.1)."""
        cached = self._base_rps_cache
        if cached is None:
            cached = self.spec.quota_minstr_per_s / self.avg_cost_minstr
            self._base_rps_cache = cached
        return cached


class CentralRateLimiter:
    """Global per-function RPS limiting from CPU quotas."""

    def __init__(self, initial_cost_minstr: float = 100.0) -> None:
        if initial_cost_minstr <= 0:
            raise ValueError("initial_cost_minstr must be positive")
        self.initial_cost_minstr = initial_cost_minstr
        self._functions: Dict[str, _FunctionQuota] = {}
        self.throttle_count = 0
        self.allow_count = 0

    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec,
                 expected_cost_minstr: Optional[float] = None) -> None:
        """Register a function; idempotent."""
        if spec.name in self._functions:
            return
        cost = expected_cost_minstr if expected_cost_minstr is not None \
            else self.initial_cost_minstr
        self._functions[spec.name] = _FunctionQuota(
            spec=spec, prior_cost_minstr=max(cost, 1e-9))

    def is_registered(self, name: str) -> bool:
        return name in self._functions

    def record_cost(self, name: str, cpu_minstr: float) -> None:
        """Fold one observed execution cost into the per-call average."""
        fq = self._functions.get(name)
        if fq is None:
            return
        fq.record(cpu_minstr)

    # ------------------------------------------------------------------
    def rps_limit(self, name: str, s_multiplier: float = 1.0) -> float:
        """Current RPS limit; opportunistic quota scales by S (§4.6.2)."""
        fq = self._require(name)
        if fq.spec.quota_type is QuotaType.OPPORTUNISTIC:
            return fq.base_rps * max(s_multiplier, 0.0)
        return fq.base_rps

    def try_acquire(self, name: str, now: float,
                    s_multiplier: float = 1.0) -> bool:
        """Take one invocation token; False means throttle/defer."""
        fq = self._functions.get(name)
        if fq is None:
            raise KeyError(f"function {name!r} not registered with rate limiter")
        return self.try_acquire_quota(fq, now, s_multiplier)

    def quota_for(self, name: str) -> _FunctionQuota:
        """Resolve a function's quota state once (scheduler sweeps gate
        many calls of the same function back to back)."""
        return self._require(name)

    def try_acquire_quota(self, fq: _FunctionQuota, now: float,
                          s_multiplier: float = 1.0) -> bool:
        """:meth:`try_acquire` on a pre-resolved :meth:`quota_for`."""
        limit = fq._base_rps_cache
        if limit is None:
            limit = fq.base_rps
        if fq.opportunistic:
            limit *= s_multiplier if s_multiplier > 0.0 else 0.0
        if limit <= 0:
            # S = 0: opportunistic scheduling is fully stopped (§4.6.2).
            self.throttle_count += 1
            return False
        # TokenBucket.set_rate_and_take inlined (identical arithmetic):
        # the acquire gate runs for every dispatch attempt of every
        # sweep, and the call frame dominates the bucket update.
        bucket = fq.bucket
        tokens = bucket.tokens
        burst_s = bucket.burst_s
        min_tokens = bucket.min_tokens
        old_rate = bucket.rate
        elapsed = now - bucket.last_refill
        if elapsed > 0:
            if old_rate <= 0:
                cap = 0.0
            else:
                cap = old_rate * burst_s
                if cap < min_tokens:
                    cap = min_tokens
            tokens += elapsed * old_rate
            if tokens > cap:
                tokens = cap
            bucket.last_refill = now
        bucket.rate = limit
        if limit <= 0:
            cap = 0.0
        else:
            cap = limit * burst_s
            if cap < min_tokens:
                cap = min_tokens
        if tokens > cap:
            tokens = cap
        if tokens >= 1.0:
            bucket.tokens = tokens - 1.0
            self.allow_count += 1
            return True
        bucket.tokens = tokens
        self.throttle_count += 1
        return False

    def refund(self, name: str) -> None:
        """Return one token (the gated dispatch was cancelled)."""
        fq = self._require(name)
        fq.bucket.tokens = min(fq.bucket.tokens + 1.0,
                               max(fq.bucket.capacity, 1.0))

    def avg_cost(self, name: str) -> float:
        return self._require(name).avg_cost_minstr

    def _require(self, name: str) -> _FunctionQuota:
        fq = self._functions.get(name)
        if fq is None:
            raise KeyError(f"function {name!r} not registered with rate limiter")
        return fq


class ClientRateLimiter:
    """Submitter-side per-client rate limiting (§4.2).

    Each client (keyed by team) gets a submission-rate bucket; spiky
    clients that exceed it are throttled unless they have been moved to
    the spiky submitter pool.
    """

    def __init__(self, default_rps: float = 1000.0, burst_s: float = 30.0) -> None:
        if default_rps <= 0:
            raise ValueError("default_rps must be positive")
        self.default_rps = default_rps
        self.burst_s = burst_s
        self._buckets: Dict[str, TokenBucket] = {}
        self.throttle_count = 0

    def set_limit(self, client: str, rps: float) -> None:
        """Replace a client's limit; the bucket restarts full (an
        operator-granted limit change takes effect immediately)."""
        if rps < 0:
            raise ValueError(f"rps must be >= 0, got {rps}")
        bucket = self._bucket(client)
        bucket.rate = rps
        bucket.tokens = bucket.capacity

    def try_acquire(self, client: str, now: float) -> bool:
        if self._bucket(client).try_take(now):
            return True
        self.throttle_count += 1
        return False

    def _bucket(self, client: str) -> TokenBucket:
        if client not in self._buckets:
            self._buckets[client] = TokenBucket(rate=self.default_rps,
                                                burst_s=self.burst_s)
        return self._buckets[client]
