"""Struct-of-arrays storage for call lifecycle records.

A :class:`CallArena` holds the hot numeric/state fields of every
in-flight :class:`~repro.core.call.FunctionCall` in flat ``array``
columns, mirroring the worker fleet's ``WorkerArrays`` (PR 5): one
C-typed column per field instead of one boxed Python object per call.
``FunctionCall`` itself is a thin slot view over one arena row.

Why this exists: a day-long run creates hundreds of thousands of call
records.  As boxed dataclasses they dominate both the allocation count
(``repro profile --alloc``) and the cyclic-GC scan set; as arena rows
they cost a handful of machine words each, and — because terminalized
calls release their row back to a freelist — the steady-state footprint
is O(in-flight), not O(total submitted).

Recycling is deterministic: freed slots are reused in FIFO release
order, so a run's slot-assignment sequence depends only on its event
order (which the trace digest already pins).  A per-slot **generation**
counter guards stale views: releasing a slot bumps its generation, and
any later access through a view minted for the old occupant raises
:class:`StaleCallError` instead of silently reading the new occupant's
fields.

Rows are **pinned** by default — a pinned row is never recycled, so
calls handed to external callers (tests, baselines, the public
``XFaaS.submit``) keep working forever.  Only the bulk arrival paths
(``XFaaS.submit_stream``, the parsim replay/rehydrate paths) allocate
unpinned rows, which is where the volume is.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Dict, List, Optional

#: Column sentinel for "None" in optional float columns.  NaN never
#: arises as a real timestamp, and ``v != v`` is the cheapest test.
NAN = float("nan")

#: Column sentinel for "None" in interned-string index columns.
NO_REGION = -1

#: Column sentinel for "no outcome yet" in the outcome-code column.
NO_OUTCOME = -1


class StaleCallError(RuntimeError):
    """A ``FunctionCall`` view outlived its arena slot.

    Raised when a view is dereferenced after its call terminalized and
    the slot was recycled (the slot's generation no longer matches the
    view's).  This is always a lifecycle bug in the caller: call records
    must not be retained past their terminal transition (simlint SL016).
    """


class CallArena:
    """Flat columnar store + freelist for call lifecycle records.

    Columns (parallel, indexed by slot):

    ``'d'`` float64 — ``submit_time``, ``start_time``, ``dispatch_time``,
    ``finish_time`` (NaN = unset), ``args_size_kb``.

    ``'l'`` int — ``attempts``, ``spec_idx``, ``generation``.

    ``'l'`` int (interned-region index, -1 = None) —
    ``region_submitted``, ``durableq_region``, ``scheduler_region``.

    ``'b'`` int8 — ``state`` (CallState code), ``outcome`` (CallOutcome
    code, -1 = None), ``args_spilled``, ``pinned``.

    object — ``worker_name`` (worker names are already shared strings).

    Specs and region names are interned: columns store small ints, and
    ``specs``/``regions`` map them back.  Floats round-trip through the
    ``'d'`` columns bit-identically (C doubles *are* Python floats).
    """

    __slots__ = (
        "submit_time", "start_time", "dispatch_time", "finish_time",
        "args_size_kb", "attempts", "spec_idx", "generation",
        "region_submitted", "durableq_region", "scheduler_region",
        "state", "outcome", "args_spilled", "pinned", "worker_name",
        "specs", "regions", "_spec_idx", "_region_idx", "_free",
        "_size", "allocated_total", "released_total",
    )

    def __init__(self) -> None:
        self.submit_time = array("d")
        self.start_time = array("d")
        self.dispatch_time = array("d")
        self.finish_time = array("d")
        self.args_size_kb = array("d")
        self.attempts = array("l")
        self.spec_idx = array("l")
        self.generation = array("l")
        self.region_submitted = array("l")
        self.durableq_region = array("l")
        self.scheduler_region = array("l")
        self.state = array("b")
        self.outcome = array("b")
        self.args_spilled = array("b")
        self.pinned = array("b")
        self.worker_name: List[Optional[str]] = []
        #: Interning tables: column ints -> objects and back.
        self.specs: List[Any] = []
        self.regions: List[str] = []
        self._spec_idx: Dict[str, int] = {}
        self._region_idx: Dict[str, int] = {}
        #: FIFO freelist of released slots — FIFO makes slot reuse order
        #: a pure function of release order, which the tests pin.
        self._free: deque = deque()
        self._size = 0
        self.allocated_total = 0
        self.released_total = 0

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern_spec(self, spec: Any) -> int:
        """Return the column code for ``spec`` (interned by name)."""
        idx = self._spec_idx.get(spec.name)
        if idx is None:
            idx = len(self.specs)
            self.specs.append(spec)
            self._spec_idx[spec.name] = idx
        return idx

    def intern_region(self, region: str) -> int:
        """Return the column code for ``region``."""
        idx = self._region_idx.get(region)
        if idx is None:
            idx = len(self.regions)
            self.regions.append(region)
            self._region_idx[region] = idx
        return idx

    # ------------------------------------------------------------------
    # Slot lifecycle
    # ------------------------------------------------------------------
    def allocate(self, spec_idx: int, submit_time: float, start_time: float,
                 region_idx: int, args_size_kb: float, state_code: int,
                 attempts: int, pinned: bool) -> int:
        """Claim a slot (recycled FIFO, else fresh) and reset its columns.

        Every column is (re)initialized so a recycled slot is
        indistinguishable from a fresh one; the generation counter is
        the only field that survives release (releases bump it, which
        is what invalidates stale views).
        """
        free = self._free
        self.allocated_total += 1
        if free:
            i = free.popleft()
            self.submit_time[i] = submit_time
            self.start_time[i] = start_time
            self.dispatch_time[i] = NAN
            self.finish_time[i] = NAN
            self.args_size_kb[i] = args_size_kb
            self.attempts[i] = attempts
            self.spec_idx[i] = spec_idx
            self.region_submitted[i] = region_idx
            self.durableq_region[i] = NO_REGION
            self.scheduler_region[i] = NO_REGION
            self.state[i] = state_code
            self.outcome[i] = NO_OUTCOME
            self.args_spilled[i] = 0
            self.pinned[i] = 1 if pinned else 0
            self.worker_name[i] = None
            return i
        i = self._size
        self._size = i + 1
        self.submit_time.append(submit_time)
        self.start_time.append(start_time)
        self.dispatch_time.append(NAN)
        self.finish_time.append(NAN)
        self.args_size_kb.append(args_size_kb)
        self.attempts.append(attempts)
        self.spec_idx.append(spec_idx)
        self.generation.append(0)
        self.region_submitted.append(region_idx)
        self.durableq_region.append(NO_REGION)
        self.scheduler_region.append(NO_REGION)
        self.state.append(state_code)
        self.outcome.append(NO_OUTCOME)
        self.args_spilled.append(0)
        self.pinned.append(1 if pinned else 0)
        self.worker_name.append(None)
        return i

    def release(self, slot: int, generation: int) -> bool:
        """Return ``slot`` to the freelist; no-op (False) when pinned.

        ``generation`` must match the slot's current generation — a
        mismatch means the slot was already released (a double-release
        bug in the caller) and raises :class:`StaleCallError`.
        """
        if self.pinned[slot]:
            return False
        if self.generation[slot] != generation:
            raise StaleCallError(
                f"double release of arena slot {slot} "
                f"(generation {generation} already retired)")
        self.generation[slot] = generation + 1
        self.worker_name[slot] = None   # drop the only object reference
        self._free.append(slot)
        self.released_total += 1
        return True

    def pin(self, slot: int) -> None:
        """Exempt ``slot`` from recycling (release becomes a no-op)."""
        self.pinned[slot] = 1

    # ------------------------------------------------------------------
    # Introspection (tests, benchmarks, --alloc reporting)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of rows ever grown (the high-water mark)."""
        return self._size

    def live_count(self) -> int:
        """Rows currently occupied (allocated and not yet released)."""
        return self._size - len(self._free)

    def free_count(self) -> int:
        return len(self._free)
