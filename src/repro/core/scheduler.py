"""Scheduler: criticality/deadline/quota-ordered dispatch (§4.4, §4.6).

Each region's scheduler periodically:

1. **Polls DurableQs** — its own region's and, per the Global Traffic
   Conductor's traffic matrix, other regions' — for ready calls, leasing
   them into per-function :class:`FuncBuffer`s ordered by (criticality,
   deadline).
2. **Moves calls into the RunQ**, selecting the most suitable head among
   all FuncBuffers subject to the scheduling gates: quota tokens from
   the Central Rate Limiter (opportunistic functions scaled by the
   Utilization Controller's S), AIMD back-pressure limits, slow start,
   per-function concurrency limits, and Bell–LaPadula flow checks.
   Calls whose gates fail simply stay buffered/queued — that *is* the
   deferral mechanism behind time-shifting.
3. **Drains the RunQ** through the WorkerLB.  A RunQ that builds up
   throttles both buffer movement and DurableQ polling (flow control).

On completion the scheduler ACKs the call's DurableQ; failures NACK for
at-least-once redelivery up to the function's retry policy.
"""

from __future__ import annotations

import heapq
import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .call import CallOutcome, CallState, FunctionCall
from .config import CachedConfig, ConfigStore
from .congestion import CongestionController
from .durableq import DurableQ
from .funcbuffer import FuncBuffer
from .ratelimiter import CentralRateLimiter
from .runq import RunQ
from .workerlb import WorkerLB

TRAFFIC_MATRIX_KEY = "gtc/traffic_matrix"
S_MULTIPLIER_KEY = "utilization/S"

DoneCallback = Callable[[FunctionCall, CallOutcome], None]

#: Head-key extractor for the per-pass buffer ordering (head keys embed
#: the unique call id, so ties — and a comparison falling through to the
#: FuncBuffer operand — cannot occur).
_HEAD_KEY = operator.itemgetter(0)


@dataclass(frozen=True)
class SchedulerParams:
    """Polling cadence, buffer/RunQ capacities, and expiry policy."""

    poll_interval_s: float = 1.0
    poll_batch_max: int = 500
    runq_capacity: int = 1000
    #: Maximum total calls held across FuncBuffers; beyond this, polling
    #: pauses and backlog stays in the DurableQs.
    buffer_capacity: int = 5000
    #: Per-function FuncBuffer cap.  A function gated off (quota, AIMD,
    #: slow start) keeps at most this many calls buffered; the rest stay
    #: in the DurableQs so one throttled high-rate function can never
    #: exhaust the shared buffer budget and stall polling for everyone.
    per_function_buffer_cap: int = 100
    lease_extension_interval_s: float = 60.0
    #: Drop calls whose completion deadline passed while still queued
    #: (off by default: deadlines are SLOs, not hard drops).
    drop_expired: bool = False

    def __post_init__(self) -> None:
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.runq_capacity < 1 or self.buffer_capacity < 1:
            raise ValueError("capacities must be >= 1")


class Scheduler:
    """One region's scheduler (stateless role; state lives in DurableQs)."""

    def __init__(self, sim: Simulator, region: str,
                 durableqs_by_region: Dict[str, List[DurableQ]],
                 workerlb: WorkerLB,
                 rate_limiter: CentralRateLimiter,
                 congestion: CongestionController,
                 config: ConfigStore,
                 params: SchedulerParams = SchedulerParams(),
                 on_done: Optional[DoneCallback] = None,
                 timers: Optional[SamplerHub] = None,
                 jitter_stream: Optional[str] = None) -> None:
        self.sim = sim
        self.region = region
        self.scheduler_id = f"scheduler/{region}"
        self.durableqs_by_region = durableqs_by_region
        self.workerlb = workerlb
        self.rate_limiter = rate_limiter
        self.congestion = congestion
        self.params = params
        self.on_done = on_done

        self._buffers: Dict[str, FuncBuffer] = {}
        self._buffered_total = 0
        #: function name → (congestion state, quota) — both objects are
        #: registered once and mutated in place, so the pair can be
        #: resolved once per function instead of twice per sweep.
        self._gate_states: Dict[str, Tuple[object, object]] = {}
        self.runq = RunQ(capacity=params.runq_capacity)
        #: call_id → DurableQ holding its lease (for ACK/NACK/extension).
        self._inflight: Dict[int, Tuple[FunctionCall, DurableQ]] = {}

        self._traffic = CachedConfig(sim, config, TRAFFIC_MATRIX_KEY,
                                     default={region: {region: 1.0}},
                                     jitter_stream=jitter_stream)
        self._s_multiplier = CachedConfig(sim, config, S_MULTIPLIER_KEY,
                                          default=1.0,
                                          jitter_stream=jitter_stream)

        self.dispatched_count = 0
        self.completed_count = 0
        self.failed_count = 0
        self.expired_count = 0
        self.deferred_gate_hits = 0
        self.isolation_denials = 0
        self.cross_region_pulls = 0

        self._tick_task = sim.every(params.poll_interval_s, self.tick,
                                    jitter=params.poll_interval_s * 0.05,
                                    rng_stream=f"sched-jitter/{region}")
        lease_timers = timers if timers is not None else sim
        self._lease_task = lease_timers.every(
            params.lease_extension_interval_s, self._extend_leases)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def tick(self) -> None:
        # Recycle anything still parked in the RunQ from the previous
        # tick: parked calls must not sit for hours holding stale gate
        # tokens — they go back to their FuncBuffers (tokens refunded)
        # and are re-gated by this tick's pass at current limits.
        self._recycle_runq()
        self._poll_durableqs()
        self._schedule_pass()

    def _recycle_runq(self) -> None:
        # Recycling runs once per tick over every parked call — _demote
        # is inlined here against the memoized gate states (same pair
        # the dispatch pass resolves), saving three lookups per call.
        runq_pop = self.runq.pop
        gate_states = self._gate_states
        buffers = self._buffers
        buffered = CallState.BUFFERED
        while True:
            call = runq_pop()
            if call is None:
                break
            name = call.spec.name
            gates = gate_states.get(name)
            if gates is None:
                self._demote(call)
                continue
            cong_st, quota = gates
            if cong_st.running > 0:
                cong_st.running -= 1
            wd = cong_st.window_dispatches - 1.0
            cong_st.window_dispatches = wd if wd > 0.0 else 0.0
            bucket = quota.bucket
            cap = bucket.capacity
            if cap < 1.0:
                cap = 1.0
            tokens = bucket.tokens + 1.0
            bucket.tokens = tokens if tokens < cap else cap
            call.state = buffered
            buffer = buffers.get(name)
            if buffer is None:
                buffer = buffers[name] = FuncBuffer(name)
            buffer.push(call)
            self._buffered_total += 1

    def kick(self) -> None:
        """Worker capacity freed: dispatch already-gated calls.

        Deliberately cheap (no buffer re-scan): refills happen on the
        periodic tick, keeping the completion path O(1).
        """
        self._drain_runq()

    # ------------------------------------------------------------------
    # Step 1: poll DurableQs per the GTC traffic matrix
    # ------------------------------------------------------------------
    def _poll_durableqs(self) -> None:
        p = self.params
        # Flow control (§4.4): a building RunQ slows retrieval.
        headroom = min(p.buffer_capacity - self._buffered_total,
                       p.poll_batch_max)
        runq_slack = 1.0 - self.runq.fill_fraction()
        budget = int(headroom * max(runq_slack, 0.0))
        if budget <= 0:
            return
        cap = self.params.per_function_buffer_cap
        saturated = {name for name, buf in self._buffers.items()
                     if len(buf) >= cap}
        row = self._traffic_row()
        for src_region, fraction in sorted(row.items()):
            if fraction <= 0:
                continue
            region_budget = max(1, int(budget * fraction))
            shards = self.durableqs_by_region.get(src_region, [])
            if not shards:
                continue
            if src_region != self.region:
                self.cross_region_pulls += 1
            per_shard = max(1, region_budget // len(shards))
            for shard in shards:
                calls = shard.poll(self.scheduler_id, per_shard,
                                   skip=saturated)
                for call in calls:
                    self._buffer_call(call, shard)
                    buf = self._buffers[call.function_name]
                    if len(buf) >= cap:
                        saturated.add(call.function_name)

    #: Minimum fraction of the polling budget always spent on the local
    #: region, whatever the traffic matrix says.  XFaaS prioritizes
    #: local-region execution (§4.1); this also guarantees that freshly
    #: submitted local calls are never starved between GTC updates.
    MIN_LOCAL_FRACTION = 0.2

    def _traffic_row(self) -> Dict[str, float]:
        matrix = self._traffic.value or {}
        row = matrix.get(self.region)
        if not row:
            return {self.region: 1.0}
        local = row.get(self.region, 0.0)
        if local >= self.MIN_LOCAL_FRACTION:
            return row
        scale = ((1.0 - self.MIN_LOCAL_FRACTION) /
                 max(sum(f for r, f in row.items() if r != self.region),
                     1e-9))
        adjusted = {r: f * scale for r, f in row.items() if r != self.region}
        adjusted[self.region] = self.MIN_LOCAL_FRACTION
        return adjusted

    def accept_remote(self, call: FunctionCall, shard: DurableQ) -> None:
        """Buffer a call delivered by a cross-shard DurableQ poll response.

        ``shard`` is duck-typed: :mod:`repro.parsim` passes a remote
        handle whose ``ack``/``nack``/``extend_lease`` relay to the
        queue's owner shard.  The call joins this scheduler's
        FuncBuffers exactly as a locally polled call would.
        """
        self._buffer_call(call, shard)

    def _buffer_call(self, call: FunctionCall, shard: DurableQ) -> None:
        call.scheduler_region = self.region
        self._inflight[call.call_id] = (call, shard)
        buffer = self._buffers.get(call.function_name)
        if buffer is None:
            buffer = FuncBuffer(call.function_name)
            self._buffers[call.function_name] = buffer
        buffer.push(call)
        self._buffered_total += 1

    # ------------------------------------------------------------------
    # Step 2+3 interleaved: FuncBuffers → (gates) → workers, best first
    # ------------------------------------------------------------------
    #: Once the RunQ pipeline is full: how many further placement
    #: failures of one function are tolerated (demoted) before moving
    #: on — an unplaceable heavy head must not block lighter calls.
    PLACEMENT_LOOKAHEAD = 4
    #: How many gated-but-unplaced calls may park in the RunQ awaiting
    #: a freed worker.  This is the dispatch *pipeline*: completions
    #: between ticks immediately pull parked calls via kick(), keeping
    #: workers busy instead of idling until the next tick.  Parked
    #: calls hold their quota tokens for at most one tick (recycled).
    PARK_LIMIT = 64

    def _schedule_pass(self) -> None:
        """One scheduling sweep: gate and dispatch in a single motion.

        Gating and dispatch are interleaved per call — a call that
        passes the quota/AIMD gates but cannot be placed is demoted with
        its tokens refunded *immediately*, so unplaceable calls can
        never hoard the per-function token stream away from placeable
        ones (they would otherwise re-grab the fresh tokens every tick).
        """
        now = self.sim._now
        s_mult = float(self._s_multiplier.value)
        # Order buffers by their head call's (criticality, deadline) key
        # (heap internals read directly: this runs for every buffer,
        # empty or not, every tick).
        heads = sorted(((buf._heap[0][0], buf)
                        for buf in self._buffers.values() if buf._heap),
                       key=_HEAD_KEY)
        if not heads:
            return
        # Pass-invariant bindings, hoisted across every function swept.
        congestion = self.congestion
        can_dispatch_state = congestion.can_dispatch_state
        try_acquire = self.rate_limiter.try_acquire_quota
        dispatch = self.workerlb.dispatch
        runq = self.runq
        heappop_ = heapq.heappop
        drop_expired = self.params.drop_expired
        park_limit = self.PARK_LIMIT
        lookahead = self.PLACEMENT_LOOKAHEAD
        gate_states = self._gate_states
        for _, buffer in heads:
            # Every call in a buffer shares one function: its congestion
            # state and quota are resolved once, then memoized — both
            # are registered-for-life objects mutated in place.
            name = buffer.function_name
            gates = gate_states.get(name)
            if gates is None:
                gates = gate_states[name] = (
                    congestion.state_for(name),
                    self.rate_limiter.quota_for(name))
            cong_st, quota = gates
            # The per-call loop runs over the buffer's heap directly —
            # the peek/len indirections cost more than the loop body
            # under a full sweep.  Terminal checks keep the original
            # order: flow first, then deadline; finalize before pop.
            heap = buffer._heap
            placement_failures = 0
            deferred: List[FunctionCall] = []
            while heap:
                head = heap[0]
                call = head[1]
                spec = call.spec
                if call.source_level > spec.isolation_level:
                    self.isolation_denials += 1
                    self._finalize(call, CallOutcome.ISOLATION_DENIED)
                    heappop_(heap)
                    self._buffered_total -= 1
                    continue  # terminal; next call
                # head[0][1] is the memoized sort key's deadline term —
                # exactly start_time + spec.deadline_s, without touching
                # the call's arena columns.
                if drop_expired and now > head[0][1]:
                    self.expired_count += 1
                    self._finalize(call, CallOutcome.ERROR, expired=True)
                    heappop_(heap)
                    self._buffered_total -= 1
                    continue  # terminal; next call
                if not (can_dispatch_state(cong_st, now)
                        and try_acquire(quota, now, s_mult)):
                    self.deferred_gate_hits += 1
                    break  # function-level rate gate: defer the rest
                heappop_(heap)
                self._buffered_total -= 1
                # Inline congestion.on_dispatch on the resolved state.
                cong_st.running += 1
                cong_st.window_dispatches += 1
                call.mark_running()
                if dispatch(call):
                    self.dispatched_count += 1
                    continue
                # Placement failed right now: park it in the pipeline
                # for kick() to dispatch the moment a worker frees (it
                # keeps its gate token; the next tick's recycle refunds
                # it otherwise).
                if not runq.full and len(runq) < park_limit:
                    call.mark_runnable()
                    runq.push(call)
                    continue
                # Pipeline full: refund and look a bounded number of
                # calls past the (likely oversized) head before moving
                # on.
                placement_failures += 1
                deferred.append(call)
                if placement_failures > lookahead:
                    break
            if deferred:
                # Inlined _demote on the already-resolved gate states:
                # every deferred call belongs to this buffer's function.
                bucket = quota.bucket
                cap = bucket.capacity
                if cap < 1.0:
                    cap = 1.0
                for call in deferred:
                    if cong_st.running > 0:
                        cong_st.running -= 1
                    wd = cong_st.window_dispatches - 1.0
                    cong_st.window_dispatches = wd if wd > 0.0 else 0.0
                    tokens = bucket.tokens + 1.0
                    bucket.tokens = tokens if tokens < cap else cap
                    call.mark_buffered()
                    buffer.push(call)
                    self._buffered_total += 1

    # ------------------------------------------------------------------
    # Step 3: RunQ → WorkerLB
    # ------------------------------------------------------------------
    def _drain_runq(self) -> None:
        # kick() path: dispatch parked pipeline calls into freed worker
        # slots.  Refused calls are *re-parked* (they keep their place
        # and tokens until the next tick's recycle); a bounded number of
        # misses keeps the completion path cheap.
        refused = []
        misses = 0
        while misses < 8:
            call = self.runq.pop()
            if call is None:
                break
            call.mark_running()
            if self.workerlb.dispatch(call):
                self.dispatched_count += 1
            else:
                call.mark_runnable()
                refused.append(call)
                misses += 1
        for call in refused:
            self.runq.push_front(call)

    def _demote(self, call: FunctionCall) -> None:
        name = call.function_name
        self.congestion.cancel_dispatch(name)
        self.rate_limiter.refund(name)
        call.mark_buffered()
        buffer = self._buffers.get(name)
        if buffer is None:
            buffer = FuncBuffer(name)
            self._buffers[name] = buffer
        buffer.push(call)
        self._buffered_total += 1

    # ------------------------------------------------------------------
    # Completion path (wired as the workers' on_finish)
    # ------------------------------------------------------------------
    def on_call_finished(self, call: FunctionCall,
                         outcome: CallOutcome) -> None:
        name = call.function_name
        self.congestion.on_finish(name)
        if call.resources is not None:
            self.rate_limiter.record_cost(name, call.resources[0])
        if outcome is CallOutcome.OK:
            self._finalize(call, outcome)
        elif outcome is CallOutcome.ISOLATION_DENIED:
            self._finalize(call, outcome)
        else:
            self._retry_or_fail(call, outcome)
        # Capacity freed: dispatch more.
        self.kick()

    def _retry_or_fail(self, call: FunctionCall,
                       outcome: CallOutcome) -> None:
        entry = self._inflight.get(call.call_id)
        policy = call.spec.retry_policy
        if entry is not None and call.attempts + 1 < policy.max_attempts:
            _, shard = entry
            del self._inflight[call.call_id]
            shard.nack(call, retry_delay_s=policy.retry_delay_s)
        else:
            self._finalize(call, outcome)

    def _finalize(self, call: FunctionCall, outcome: CallOutcome,
                  expired: bool = False) -> None:
        entry = self._inflight.pop(call.call_id, None)
        if entry is not None:
            _, shard = entry
            shard.ack(call)
        if expired:
            state = CallState.EXPIRED
        elif outcome is CallOutcome.OK:
            state = CallState.COMPLETED
            self.completed_count += 1
        else:
            state = CallState.FAILED
            self.failed_count += 1
        call.terminalize(outcome, state, self.sim.now)
        if self.on_done is not None:
            self.on_done(call, outcome)

    # ------------------------------------------------------------------
    def _extend_leases(self) -> None:
        for call, shard in self._inflight.values():
            shard.extend_lease(call.call_id)

    # ------------------------------------------------------------------
    @property
    def buffered_count(self) -> int:
        return self._buffered_total

    @property
    def pending_demand(self) -> int:
        """Buffered + runnable calls (GTC demand signal)."""
        return self._buffered_total + len(self.runq)

    def stop(self) -> None:
        self._tick_task.cancel()
        self._lease_task.cancel()
        self._traffic.stop()
        self._s_multiplier.stop()
