"""Cooperative JIT compilation model (§4.5.1, Figure 12).

The paper's PHP runtime (HHVM) uses instrumentation-based profiling to
drive region-based JIT compilation.  Profiling is slow: a runtime that
must profile on its own takes ~21 minutes to reach maximum RPS after a
restart, while a runtime *seeded* with profiling data from a designated
seeder worker reaches maximum RPS in ~3 minutes (Figure 12's
experiment).

We model this as a per-runtime speed multiplier in (0, 1]: a freshly
(re)started runtime ramps linearly from ``floor`` to 1.0 over either the
seeded or unseeded ramp duration.  Executing a call while the multiplier
is *s* consumes ``1/s`` times the CPU, which is what caps a saturated
worker's RPS at ``s`` × maximum.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class JitParams:
    """Ramp parameters calibrated to Figure 12."""

    #: Relative speed immediately after a restart (interpreter-ish).
    floor: float = 0.30
    #: Seconds to reach max RPS with seeder profiling data (Fig 12: 3 min).
    seeded_ramp_s: float = 180.0
    #: Seconds to reach max RPS with self-instrumented profiling
    #: (Fig 12: 21 minutes between T900 and T2160).
    unseeded_ramp_s: float = 1260.0
    #: How long a phase-2 seeder worker profiles before its data is
    #: distributed to its locality group.
    seeder_profile_s: float = 600.0

    def __post_init__(self) -> None:
        if not 0 < self.floor <= 1:
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")
        if self.seeded_ramp_s <= 0 or self.unseeded_ramp_s <= 0:
            raise ValueError("ramp durations must be positive")
        if self.seeded_ramp_s > self.unseeded_ramp_s:
            raise ValueError("seeded ramp should not exceed unseeded ramp")


class RuntimeJit:
    """JIT warm-up state of one runtime instance (one Linux process)."""

    def __init__(self, params: JitParams = JitParams()) -> None:
        self.params = params
        self._start_time = 0.0
        self._seeded = True
        self._ramp_s = 0.0  # fully warm until the first restart

    def restart(self, now: float, with_profile_data: bool) -> None:
        """Restart the runtime (code update); resets the warm-up ramp."""
        self._start_time = now
        self._seeded = with_profile_data
        self._ramp_s = (self.params.seeded_ramp_s if with_profile_data
                        else self.params.unseeded_ramp_s)

    def receive_profile_data(self, now: float) -> None:
        """Seeder data arrived mid-ramp: switch to the fast compile path.

        The remaining warm-up shortens to the seeded ramp (compilation
        of pre-profiled hot regions), measured from now.
        """
        if self.speed(now) >= 1.0 or self._seeded:
            return
        self._seeded = True
        self._start_time = now
        self._ramp_s = self.params.seeded_ramp_s

    def speed(self, now: float) -> float:
        """Current speed multiplier in [floor, 1]."""
        if self._ramp_s <= 0:
            return 1.0
        frac = (now - self._start_time) / self._ramp_s
        if frac >= 1.0:
            return 1.0
        frac = max(frac, 0.0)
        return self.params.floor + (1.0 - self.params.floor) * frac

    @property
    def warm(self) -> bool:
        return self._ramp_s <= 0

    def time_to_max(self, now: float) -> float:
        """Seconds until the runtime reaches full speed."""
        if self._ramp_s <= 0:
            return 0.0
        return max(0.0, self._start_time + self._ramp_s - now)
