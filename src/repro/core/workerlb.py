"""WorkerLB: locality-aware power-of-two-choices dispatch (§4.5.2).

When routing a call, the WorkerLB picks two random workers *from the
function's worker locality group* and dispatches to the less loaded one
— "the power of two random choices" with locality layered on top.  If
both refuse (admission control), it probes a bounded number of further
candidates before reporting failure back to the scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.kernel import Simulator
from .call import FunctionCall
from .worker import Worker

GroupLookup = Callable[[str], int]


class WorkerLB:
    """Load balancer over one region's worker pool for one namespace."""

    def __init__(self, sim: Simulator, region: str, workers: List[Worker],
                 group_of_function: GroupLookup,
                 n_groups_fn: Callable[[], int],
                 extra_probes: int = 2,
                 rng_name: Optional[str] = None,
                 group_epoch_fn: Optional[Callable[[], int]] = None) -> None:
        if not workers:
            raise ValueError(f"WorkerLB in {region!r} needs workers")
        self.sim = sim
        self.region = region
        self.workers = list(workers)
        self.group_of_function = group_of_function
        self.n_groups_fn = n_groups_fn
        self.extra_probes = extra_probes
        self.rng = sim.rng.stream(rng_name or f"workerlb/{region}")
        # Draws go straight through random.Random; the stream wrapper adds
        # a call frame per probe on the hottest dispatch path.
        self._choice = self.rng._rng.choice
        self.dispatch_count = 0
        self.reject_count = 0
        self.out_of_group_dispatches = 0
        #: Cheap invalidation: when the Locality Optimizer exposes a group
        #: epoch, the cache key is (n_groups, epoch) instead of a hash
        #: over every worker's group id per dispatch.
        self.group_epoch_fn = group_epoch_fn
        self._groups_cache_key: Optional[object] = None
        self._groups: Dict[int, List[Worker]] = {}

    # ------------------------------------------------------------------
    def group_workers(self, group: int) -> List[Worker]:
        """Workers currently assigned to a locality group."""
        self._refresh_groups()
        return self._groups.get(group, [])

    def _refresh_groups(self) -> None:
        n_groups = max(1, self.n_groups_fn())
        # Workers carry their group id (set by the Locality Optimizer);
        # rebuild the index when assignments change.
        if self.group_epoch_fn is not None:
            key = (n_groups, self.group_epoch_fn())
        else:
            key = hash(
                (n_groups,) + tuple(w.locality_group for w in self.workers))
        if key == self._groups_cache_key:
            return
        groups: Dict[int, List[Worker]] = {}
        for w in self.workers:
            groups.setdefault(w.locality_group % n_groups, []).append(w)
        self._groups = groups
        self._groups_cache_key = key

    # ------------------------------------------------------------------
    def dispatch(self, call: FunctionCall) -> bool:
        """Route ``call`` to a worker; False when every candidate refused.

        Locality is a *preference*, not isolation: if every probe in the
        function's locality group refuses admission (its workers hogged
        by long CPU-bound calls), the call spills to the whole pool
        rather than stranding idle capacity in other groups — the same
        spirit as the Locality Optimizer moving workers between groups
        under load imbalance (§4.5.2), but at per-call granularity.
        """
        group = self.group_of_function(call.function_name)
        candidates = self.group_workers(group)
        if not candidates:
            candidates = self.workers
        order = self._two_choices_order(candidates)
        for worker in order:
            if worker.execute(call):
                self.dispatch_count += 1
                return True
        if len(candidates) < len(self.workers):
            for worker in self._two_choices_order(self.workers):
                if worker.execute(call):
                    self.dispatch_count += 1
                    self.out_of_group_dispatches += 1
                    return True
        self.reject_count += 1
        return False

    def _two_choices_order(self, candidates: List[Worker]) -> List[Worker]:
        """Power-of-two choice, then a few extra probes as fallback."""
        if len(candidates) == 1:
            return list(candidates)
        choice = self._choice
        a = choice(candidates)
        b = choice(candidates)
        while b is a:
            b = choice(candidates)
        first, second = (a, b) if a.load_score() <= b.load_score() else (b, a)
        order = [first, second]
        for _ in range(self.extra_probes):
            extra = choice(candidates)
            if extra not in order:
                order.append(extra)
        return order

    # ------------------------------------------------------------------
    def pool_load(self) -> float:
        """Mean load score across the pool (RIM/GTC input)."""
        return sum(w.load_score() for w in self.workers) / len(self.workers)

    def free_threads(self) -> int:
        return sum(max(0, w.machine.threads - w.running_count)
                   for w in self.workers)
