"""WorkerLB: locality-aware power-of-two-choices dispatch (§4.5.2).

When routing a call, the WorkerLB picks two random workers *from the
function's worker locality group* and dispatches to the less loaded one
— "the power of two random choices" with locality layered on top.  If
both refuse (admission control), it probes a bounded number of further
candidates before reporting failure back to the scheduler.

Since the struct-of-arrays refactor the hot loop never touches a
``Worker`` object until a probe accepts: locality groups are ``array``
columns of integer worker indices into the region's
:class:`~repro.core.workerarrays.WorkerArrays`, the two-choices draws
pick indices, and both load-score probes read flat columns.
"""

from __future__ import annotations

from array import array
from typing import Callable, Dict, List, Optional

from ..sim.kernel import Simulator
from .call import FunctionCall
from .worker import Worker
from .workerarrays import WorkerArrays

GroupLookup = Callable[[str], int]


class WorkerLB:
    """Load balancer over one region's worker pool for one namespace.

    Invariant: ``self.arrays.workers == self.workers`` row-for-row (the
    i-th worker owns store row ``i``).  The constructor establishes it —
    adopting workers into a fresh store when they arrive with private or
    foreign stores — and :meth:`add_workers` preserves it.
    """

    def __init__(self, sim: Simulator, region: str, workers: List[Worker],
                 group_of_function: GroupLookup,
                 n_groups_fn: Callable[[], int],
                 extra_probes: int = 2,
                 rng_name: Optional[str] = None,
                 group_epoch_fn: Optional[Callable[[], int]] = None) -> None:
        if not workers:
            raise ValueError(f"WorkerLB in {region!r} needs workers")
        self.sim = sim
        self.region = region
        self.workers = list(workers)
        store = self.workers[0]._arrays
        if (len(store.workers) != len(self.workers)
                or any(w._arrays is not store or w._index != i
                       for i, w in enumerate(self.workers))):
            store = WorkerArrays()
            for w in self.workers:
                store.adopt(w)
        self.arrays = store
        self.group_of_function = group_of_function
        self.n_groups_fn = n_groups_fn
        self.extra_probes = extra_probes
        self.rng = sim.rng.stream(rng_name or f"workerlb/{region}")
        # Draws bypass random.Random.choice: the probe loop below inlines
        # Random._randbelow_with_getrandbits bit-for-bit, so only the raw
        # getrandbits source is needed (same stream consumption).
        self._getrandbits = self.rng._rng.getrandbits
        self.dispatch_count = 0
        self.reject_count = 0
        self.out_of_group_dispatches = 0
        #: Cheap invalidation: when the Locality Optimizer exposes a group
        #: epoch, the cache key is (n_groups, epoch) instead of a hash
        #: over every worker's group id per dispatch.
        self.group_epoch_fn = group_epoch_fn
        self._groups_cache_key: Optional[object] = None
        self._groups: Dict[int, "array[int]"] = {}
        self._all_idx: "array[int]" = array("l", range(len(self.workers)))
        self._capacity_threads = self.arrays.capacity_threads()
        # Epoch-path cache key unpacked into two ints so the dispatch
        # fast path compares without building a tuple.
        self._ck_groups = -1
        self._ck_epoch = -1

    # ------------------------------------------------------------------
    def add_workers(self, new_workers: List[Worker]) -> None:
        """Grow the pool (elastic capacity): adopt rows, invalidate caches."""
        store = self.arrays
        for w in new_workers:
            store.adopt(w)
            self.workers.append(w)
            self._all_idx.append(w._index)
        self._capacity_threads = store.capacity_threads()
        self._groups_cache_key = None
        self._ck_groups = -1
        self._ck_epoch = -1

    # ------------------------------------------------------------------
    def group_workers(self, group: int) -> List[Worker]:
        """Workers currently assigned to a locality group."""
        self._refresh_groups()
        views = self.arrays.workers
        return [views[i] for i in self._groups.get(group, array("l"))]

    def _refresh_groups(self) -> None:
        n_groups = max(1, self.n_groups_fn())
        # Workers carry their group id (the ``group`` column, set by the
        # Locality Optimizer); rebuild the index when assignments change.
        if self.group_epoch_fn is not None:
            epoch = self.group_epoch_fn()
            if n_groups != self._ck_groups or epoch != self._ck_epoch:
                self._rebuild_groups(n_groups, epoch)
            return
        key = hash((n_groups,) + tuple(self.arrays.group))
        if key == self._groups_cache_key:
            return
        self._build_group_index(n_groups)
        self._groups_cache_key = key

    def _rebuild_groups(self, n_groups: int, epoch: int) -> None:
        self._build_group_index(n_groups)
        self._ck_groups = n_groups
        self._ck_epoch = epoch
        self._groups_cache_key = (n_groups, epoch)

    def _build_group_index(self, n_groups: int) -> None:
        groups: Dict[int, "array[int]"] = {}
        group_col = self.arrays.group
        for i in self._all_idx:
            g = group_col[i] % n_groups
            bucket = groups.get(g)
            if bucket is None:
                bucket = groups[g] = array("l")
            bucket.append(i)
        self._groups = groups

    # ------------------------------------------------------------------
    def dispatch(self, call: FunctionCall) -> bool:
        """Route ``call`` to a worker; False when every candidate refused.

        Locality is a *preference*, not isolation: if every probe in the
        function's locality group refuses admission (its workers hogged
        by long CPU-bound calls), the call spills to the whole pool
        rather than stranding idle capacity in other groups — the same
        spirit as the Locality Optimizer moving workers between groups
        under load imbalance (§4.5.2), but at per-call granularity.
        """
        epoch_fn = self.group_epoch_fn
        if epoch_fn is not None:
            # Inlined _refresh_groups fast path: one epoch read and an
            # int compare per dispatch.  The group *count* is re-read
            # only when the epoch advances — the Locality Optimizer's
            # count is fixed after construction, while every worker
            # (re)assignment bumps the epoch.
            epoch = epoch_fn()
            if epoch != self._ck_epoch:
                n_groups = self.n_groups_fn()
                if n_groups < 1:
                    n_groups = 1
                self._rebuild_groups(n_groups, epoch)
        else:
            self._refresh_groups()
        all_idx = self._all_idx
        group = self.group_of_function(call.spec.name)
        candidates = self._groups.get(group) or all_idx
        # The two-choices draw sequence is inlined below (identical
        # getrandbits consumption to random.choice); the loop runs once
        # over the locality group, then — only if every in-group probe
        # refused — once more over the whole pool.  ``a``/``b`` are
        # integer store rows; uniqueness of rows in a pool makes the
        # ``==`` dedup equivalent to the old object ``is`` check.
        getrandbits = self._getrandbits
        extra_probes = self.extra_probes
        arr = self.arrays
        running = arr.running
        cpu_load = arr.cpu_load
        mem_mb = arr.mem_mb
        threads = arr.threads
        cores = arr.cores
        memory_mb = arr.memory_mb
        views = arr.workers
        pool = candidates
        spilled = False
        while True:
            n = len(pool)
            if n == 1:
                order = [pool[0]]
            else:
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                a = pool[r]
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                b = pool[r]
                while b == a:
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    b = pool[r]
                # Worker.load_score() inlined for both probes (identical
                # arithmetic on the flat columns; no subclass overrides
                # it).
                sa = running[a] / threads[a]
                x = cpu_load[a] / cores[a]
                if x > sa:
                    sa = x
                x = mem_mb[a] / memory_mb[a]
                if x > sa:
                    sa = x
                sb = running[b] / threads[b]
                x = cpu_load[b] / cores[b]
                if x > sb:
                    sb = x
                x = mem_mb[b] / memory_mb[b]
                if x > sb:
                    sb = x
                order = [a, b] if sa <= sb else [b, a]
                for _ in range(extra_probes):
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    extra = pool[r]
                    if extra not in order:
                        order.append(extra)
            for idx in order:
                if views[idx].execute(call):
                    self.dispatch_count += 1
                    if spilled:
                        self.out_of_group_dispatches += 1
                    return True
            if spilled or len(candidates) >= len(all_idx):
                self.reject_count += 1
                return False
            pool = all_idx
            spilled = True

    def _two_choices_order(self, candidates: List[Worker]) -> List[Worker]:
        """Power-of-two choice, then a few extra probes as fallback.

        ``random.choice`` is replicated inline (``seq[_randbelow(n)]``
        with the same getrandbits rejection loop) — the two wrapper
        frames it costs per draw dominate this method's runtime, and
        the stream must advance identically for digest stability.
        """
        n = len(candidates)
        if n == 1:
            return list(candidates)
        getrandbits = self._getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        a = candidates[r]
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        b = candidates[r]
        while b is a:
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            b = candidates[r]
        first, second = (a, b) if a.load_score() <= b.load_score() else (b, a)
        order = [first, second]
        for _ in range(self.extra_probes):
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            extra = candidates[r]
            if extra not in order:
                order.append(extra)
        return order

    # ------------------------------------------------------------------
    def pool_load(self) -> float:
        """Mean load score across the pool (RIM/GTC input).

        Loops over the flat columns, accumulating exactly like the old
        ``sum(w.load_score() ...)`` (int 0 start, same addition order)
        so the mean is bit-identical.
        """
        arr = self.arrays
        running = arr.running
        cpu_load = arr.cpu_load
        mem_mb = arr.mem_mb
        threads = arr.threads
        cores = arr.cores
        memory_mb = arr.memory_mb
        total = 0
        for i in self._all_idx:
            a = running[i] / threads[i]
            b = cpu_load[i] / cores[i]
            if b > a:
                a = b
            b = mem_mb[i] / memory_mb[i]
            if b > a:
                a = b
            total = total + a
        return total / len(self._all_idx)

    def free_threads(self) -> int:
        # Admission caps running <= threads per worker, so the O(1)
        # aggregate equals the old per-worker max(0, ...) sum.
        return self._capacity_threads - self.arrays.total_running
