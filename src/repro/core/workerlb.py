"""WorkerLB: locality-aware power-of-two-choices dispatch (§4.5.2).

When routing a call, the WorkerLB picks two random workers *from the
function's worker locality group* and dispatches to the less loaded one
— "the power of two random choices" with locality layered on top.  If
both refuse (admission control), it probes a bounded number of further
candidates before reporting failure back to the scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.kernel import Simulator
from .call import FunctionCall
from .worker import Worker

GroupLookup = Callable[[str], int]


class WorkerLB:
    """Load balancer over one region's worker pool for one namespace."""

    def __init__(self, sim: Simulator, region: str, workers: List[Worker],
                 group_of_function: GroupLookup,
                 n_groups_fn: Callable[[], int],
                 extra_probes: int = 2,
                 rng_name: Optional[str] = None,
                 group_epoch_fn: Optional[Callable[[], int]] = None) -> None:
        if not workers:
            raise ValueError(f"WorkerLB in {region!r} needs workers")
        self.sim = sim
        self.region = region
        self.workers = list(workers)
        self.group_of_function = group_of_function
        self.n_groups_fn = n_groups_fn
        self.extra_probes = extra_probes
        self.rng = sim.rng.stream(rng_name or f"workerlb/{region}")
        # Draws bypass random.Random.choice: the probe loop below inlines
        # Random._randbelow_with_getrandbits bit-for-bit, so only the raw
        # getrandbits source is needed (same stream consumption).
        self._getrandbits = self.rng._rng.getrandbits
        self.dispatch_count = 0
        self.reject_count = 0
        self.out_of_group_dispatches = 0
        #: Cheap invalidation: when the Locality Optimizer exposes a group
        #: epoch, the cache key is (n_groups, epoch) instead of a hash
        #: over every worker's group id per dispatch.
        self.group_epoch_fn = group_epoch_fn
        self._groups_cache_key: Optional[object] = None
        self._groups: Dict[int, List[Worker]] = {}
        # Epoch-path cache key unpacked into two ints so the dispatch
        # fast path compares without building a tuple.
        self._ck_groups = -1
        self._ck_epoch = -1

    # ------------------------------------------------------------------
    def group_workers(self, group: int) -> List[Worker]:
        """Workers currently assigned to a locality group."""
        self._refresh_groups()
        return self._groups.get(group, [])

    def _refresh_groups(self) -> None:
        n_groups = max(1, self.n_groups_fn())
        # Workers carry their group id (set by the Locality Optimizer);
        # rebuild the index when assignments change.
        if self.group_epoch_fn is not None:
            epoch = self.group_epoch_fn()
            if n_groups != self._ck_groups or epoch != self._ck_epoch:
                self._rebuild_groups(n_groups, epoch)
            return
        key = hash(
            (n_groups,) + tuple(w.locality_group for w in self.workers))
        if key == self._groups_cache_key:
            return
        groups: Dict[int, List[Worker]] = {}
        for w in self.workers:
            groups.setdefault(w.locality_group % n_groups, []).append(w)
        self._groups = groups
        self._groups_cache_key = key

    def _rebuild_groups(self, n_groups: int, epoch: int) -> None:
        groups: Dict[int, List[Worker]] = {}
        for w in self.workers:
            groups.setdefault(w.locality_group % n_groups, []).append(w)
        self._groups = groups
        self._ck_groups = n_groups
        self._ck_epoch = epoch
        self._groups_cache_key = (n_groups, epoch)

    # ------------------------------------------------------------------
    def dispatch(self, call: FunctionCall) -> bool:
        """Route ``call`` to a worker; False when every candidate refused.

        Locality is a *preference*, not isolation: if every probe in the
        function's locality group refuses admission (its workers hogged
        by long CPU-bound calls), the call spills to the whole pool
        rather than stranding idle capacity in other groups — the same
        spirit as the Locality Optimizer moving workers between groups
        under load imbalance (§4.5.2), but at per-call granularity.
        """
        epoch_fn = self.group_epoch_fn
        if epoch_fn is not None:
            # Inlined _refresh_groups fast path: one epoch read and an
            # int compare per dispatch.  The group *count* is re-read
            # only when the epoch advances — the Locality Optimizer's
            # count is fixed after construction, while every worker
            # (re)assignment bumps the epoch.
            epoch = epoch_fn()
            if epoch != self._ck_epoch:
                n_groups = self.n_groups_fn()
                if n_groups < 1:
                    n_groups = 1
                self._rebuild_groups(n_groups, epoch)
        else:
            self._refresh_groups()
        workers = self.workers
        group = self.group_of_function(call.spec.name)
        candidates = self._groups.get(group) or workers
        # _two_choices_order is inlined below (identical draw sequence);
        # the loop runs once over the locality group, then — only if
        # every in-group probe refused — once more over the whole pool.
        getrandbits = self._getrandbits
        extra_probes = self.extra_probes
        pool = candidates
        spilled = False
        while True:
            n = len(pool)
            if n == 1:
                order = pool
            else:
                k = n.bit_length()
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                a = pool[r]
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                b = pool[r]
                while b is a:
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    b = pool[r]
                # Worker.load_score() inlined for both probes (identical
                # arithmetic; no subclass overrides it).
                m = a.machine
                sa = len(a._running) / m.threads
                x = a.cpu.load / m.cores
                if x > sa:
                    sa = x
                x = (a._baseline_mb + a._resident_mb +
                     a._live_memory_mb) / m.memory_mb
                if x > sa:
                    sa = x
                m = b.machine
                sb = len(b._running) / m.threads
                x = b.cpu.load / m.cores
                if x > sb:
                    sb = x
                x = (b._baseline_mb + b._resident_mb +
                     b._live_memory_mb) / m.memory_mb
                if x > sb:
                    sb = x
                if sa <= sb:
                    order = [a, b]
                else:
                    order = [b, a]
                for _ in range(extra_probes):
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    extra = pool[r]
                    if extra not in order:
                        order.append(extra)
            for worker in order:
                if worker.execute(call):
                    self.dispatch_count += 1
                    if spilled:
                        self.out_of_group_dispatches += 1
                    return True
            if spilled or len(candidates) >= len(workers):
                self.reject_count += 1
                return False
            pool = workers
            spilled = True

    def _two_choices_order(self, candidates: List[Worker]) -> List[Worker]:
        """Power-of-two choice, then a few extra probes as fallback.

        ``random.choice`` is replicated inline (``seq[_randbelow(n)]``
        with the same getrandbits rejection loop) — the two wrapper
        frames it costs per draw dominate this method's runtime, and
        the stream must advance identically for digest stability.
        """
        n = len(candidates)
        if n == 1:
            return list(candidates)
        getrandbits = self._getrandbits
        k = n.bit_length()
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        a = candidates[r]
        r = getrandbits(k)
        while r >= n:
            r = getrandbits(k)
        b = candidates[r]
        while b is a:
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            b = candidates[r]
        first, second = (a, b) if a.load_score() <= b.load_score() else (b, a)
        order = [first, second]
        for _ in range(self.extra_probes):
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            extra = candidates[r]
            if extra not in order:
                order.append(extra)
        return order

    # ------------------------------------------------------------------
    def pool_load(self) -> float:
        """Mean load score across the pool (RIM/GTC input)."""
        return sum(w.load_score() for w in self.workers) / len(self.workers)

    def free_threads(self) -> int:
        return sum(max(0, w.machine.threads - w.running_count)
                   for w in self.workers)
