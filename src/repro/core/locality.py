"""Locality Optimizer: partition functions and workers into groups (§4.5.2).

Memory, not CPU, is what breaks the universal-worker ideal: keeping every
function's JIT code in every worker's memory is infeasible, and
co-locating several memory-hungry calls can OOM a worker.  The Locality
Optimizer therefore partitions *functions* into non-overlapping locality
groups — spreading memory-hungry functions across groups — and maps each
function group onto a group of *workers*, so each worker only ever sees
a stable subset of functions (Fig 9: ~61 distinct functions per worker
per hour at P50, out of tens of thousands).

Ephemeral, programmatically generated functions (the Morphing Framework)
share one profile, so they are assigned round-robin (§4.5.2).

The optimizer runs off the critical path: it periodically publishes the
function→group map through the config system; WorkerLBs consume the
cached copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from ..workloads.spec import FunctionSpec
from .config import ConfigStore
from .worker import Worker


@dataclass(frozen=True)
class LocalityParams:
    """Group count and reassignment/rebalancing cadences (§4.5.2)."""

    n_groups: int = 4
    #: Re-run the partition this often (profiles drift, §4.5.2).
    reassign_interval_s: float = 1800.0
    #: Rebalance workers between groups this often (load drift).
    rebalance_interval_s: float = 600.0
    #: Move a worker when a group's load exceeds another's by this factor.
    rebalance_ratio: float = 1.3
    #: Samples used to estimate a function's expected memory.
    mem_estimate_samples: int = 50

    def __post_init__(self) -> None:
        if self.n_groups < 1:
            raise ValueError(f"n_groups must be >= 1, got {self.n_groups}")


class LocalityOptimizer:
    """Central controller computing locality-group assignments.

    ``enabled=False`` reproduces the §5.2 A/B control arm: one group,
    every worker can receive every function.
    """

    CONFIG_KEY = "locality/assignment"

    def __init__(self, sim: Simulator, config: ConfigStore,
                 params: LocalityParams = LocalityParams(),
                 enabled: bool = True,
                 namespace: str = "default",
                 timers: Optional[SamplerHub] = None,
                 config_key: Optional[str] = None) -> None:
        self.sim = sim
        self._timers = timers
        self.config = config
        #: Per-instance publish key: parsim runs one optimizer per
        #: region and keeps their published assignments separate.
        self.config_key = config_key or self.CONFIG_KEY
        self.params = params
        self.enabled = enabled
        self.namespace = namespace
        self._specs: Dict[str, FunctionSpec] = {}
        self._workers: List[Worker] = []
        self._assignment: Dict[str, int] = {}
        self._rr_counter = 0
        self.reassign_count = 0
        self.worker_moves = 0
        #: Bumped whenever any worker's locality group changes; WorkerLBs
        #: key their group index off this instead of rehashing the pool.
        self.group_epoch = 0
        self._tasks = []

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return self.params.n_groups if self.enabled else 1

    def register_function(self, spec: FunctionSpec) -> None:
        if spec.name in self._specs:
            return
        self._specs[spec.name] = spec
        self._assignment[spec.name] = self._assign_one(spec)

    def register_worker(self, worker: Worker) -> None:
        self._workers.append(worker)
        # Spread workers over groups round-robin at registration.
        worker.locality_group = (len(self._workers) - 1) % self.n_groups
        self.group_epoch += 1

    def group_of(self, function_name: str) -> int:
        if not self.enabled:
            return 0
        return self._assignment.get(function_name, 0)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self.enabled:
            return
        p = self.params
        timers = self._timers if self._timers is not None else self.sim
        self._tasks.append(timers.every(
            p.reassign_interval_s, self.reassign,
            start=self.sim.now + p.reassign_interval_s))
        self._tasks.append(timers.every(
            p.rebalance_interval_s, self.rebalance_workers,
            start=self.sim.now + p.rebalance_interval_s))

    def stop(self) -> None:
        for t in self._tasks:
            t.cancel()
        self._tasks = []

    # ------------------------------------------------------------------
    # Function → group assignment
    # ------------------------------------------------------------------
    def _assign_one(self, spec: FunctionSpec) -> int:
        if not self.enabled:
            return 0
        if spec.ephemeral:
            # Morphing-style ephemeral functions: round-robin (§4.5.2).
            group = self._rr_counter % self.n_groups
            self._rr_counter += 1
            return group
        # Greedy balance on expected memory: heavy functions land in the
        # currently lightest group, spreading memory hogs apart.
        loads = self._group_memory_loads()
        return min(range(self.n_groups), key=lambda g: (loads[g], g))

    def reassign(self) -> None:
        """Full re-partition from current profiles (§4.5.2 dynamic path)."""
        if not self.enabled:
            return
        self.reassign_count += 1
        ordered = sorted(
            (s for s in self._specs.values() if not s.ephemeral),
            key=lambda s: -self._expected_memory(s))
        loads = [0.0] * self.n_groups
        new_assignment: Dict[str, int] = {}
        for spec in ordered:
            group = min(range(self.n_groups), key=lambda g: (loads[g], g))
            new_assignment[spec.name] = group
            loads[group] += self._expected_memory(spec)
        rr = 0
        for spec in self._specs.values():
            if spec.ephemeral:
                new_assignment[spec.name] = rr % self.n_groups
                rr += 1
        self._assignment = new_assignment
        self.config.publish(self.config_key,
                            {"n_groups": self.n_groups,
                             "version": self.reassign_count})

    def _group_memory_loads(self) -> List[float]:
        loads = [0.0] * self.n_groups
        for name, group in self._assignment.items():
            spec = self._specs.get(name)
            if spec is not None and not spec.ephemeral:
                loads[group] += self._expected_memory(spec)
        return loads

    def _expected_memory(self, spec: FunctionSpec) -> float:
        # Median of the profile ≈ cheap stand-in for production profiling.
        return spec.profile.memory_mb.median

    # ------------------------------------------------------------------
    # Worker ↔ group rebalancing (§4.5.2: move workers between groups
    # when one group's call mix surges)
    # ------------------------------------------------------------------
    def rebalance_workers(self) -> None:
        if not self.enabled or not self._workers:
            return
        groups: Dict[int, List[Worker]] = {}
        # Legitimate: rebalancing runs every ~10 min and needs each
        # worker's group + load pair to pick a mover.
        for w in self._workers:  # simlint: disable=SL008 -- rebalance
            groups.setdefault(w.locality_group % self.n_groups, []).append(w)
        loads = {}
        for g in range(self.n_groups):
            members = groups.get(g, [])
            loads[g] = (sum(w.load_score() for w in members) / len(members)
                        if members else 0.0)
        hottest = max(loads, key=lambda g: loads[g])
        coldest = min(loads, key=lambda g: loads[g])
        if loads[coldest] <= 0:
            ratio = float("inf") if loads[hottest] > 0 else 1.0
        else:
            ratio = loads[hottest] / loads[coldest]
        donors = groups.get(coldest, [])
        if ratio >= self.params.rebalance_ratio and len(donors) > 1:
            # Move the least-loaded worker of the cold group to the hot one.
            mover = min(donors, key=lambda w: w.load_score())
            mover.locality_group = hottest
            self.worker_moves += 1
            self.group_epoch += 1
