"""Global Traffic Conductor: cross-region dispatch (§4.4).

The GTC maintains a near-real-time view of demand (pending calls) and
supply (worker-pool capacity) in every region and periodically computes
a traffic matrix T whose entry ``T[i][j]`` is the fraction of calls the
schedulers in region *i* should pull from region *j*'s DurableQs.

The published algorithm: start from the identity (every region pulls
only locally); while some region is overloaded, shift its excess to
*nearby* regions with spare capacity until no region is overloaded or
all regions are equally loaded.  "Nearby" uses the network model's ring
distance, honouring the §2.3 preference for short cross-region paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.network import NetworkModel
from ..sim.kernel import Simulator
from ..sim.sampler import SamplerHub
from .config import ConfigStore
from .rim import Rim
from .scheduler import TRAFFIC_MATRIX_KEY

TrafficMatrix = Dict[str, Dict[str, float]]


@dataclass(frozen=True)
class GtcParams:
    """Traffic-matrix update cadence and overload tolerance."""

    update_interval_s: float = 60.0
    #: A region is overloaded when backlog exceeds this multiple of its
    #: fair (capacity-proportional) share.
    overload_tolerance: float = 1.10

    def __post_init__(self) -> None:
        if self.update_interval_s <= 0:
            raise ValueError("update_interval_s must be positive")
        if self.overload_tolerance < 1.0:
            raise ValueError("overload_tolerance must be >= 1")


def compute_traffic_matrix(backlog: Dict[str, float],
                           capacity: Dict[str, float],
                           network: NetworkModel,
                           tolerance: float = 1.10) -> TrafficMatrix:
    """The §4.4 algorithm as a pure function (unit-testable).

    ``backlog[j]`` is region j's pending work (calls), ``capacity[i]``
    region i's worker capacity (any consistent unit).  Returns row-
    normalized T.
    """
    regions = sorted(set(backlog) | set(capacity))
    total_backlog = sum(max(backlog.get(r, 0.0), 0.0) for r in regions)
    total_capacity = sum(max(capacity.get(r, 0.0), 0.0) for r in regions)
    if total_backlog <= 0 or total_capacity <= 0:
        return {i: {i: 1.0} for i in regions}

    # Fair share: backlog distributed proportionally to capacity.
    fair = {r: total_backlog * capacity.get(r, 0.0) / total_capacity
            for r in regions}
    excess = {r: max(0.0, backlog.get(r, 0.0) - fair[r] * tolerance)
              for r in regions}
    spare = {r: max(0.0, fair[r] - backlog.get(r, 0.0)) for r in regions}

    # transfer[i][j]: calls scheduler i imports from region j.
    transfer: Dict[str, Dict[str, float]] = {i: {} for i in regions}
    for j in sorted(regions, key=lambda r: -excess[r]):
        if excess[j] <= 0:
            continue
        for i in network.neighbors_by_distance(j):
            if excess[j] <= 0:
                break
            take = min(excess[j], spare.get(i, 0.0))
            if take <= 0:
                continue
            transfer[i][j] = transfer[i].get(j, 0.0) + take
            spare[i] -= take
            excess[j] -= take

    # Row-normalize into pull fractions for each scheduler i.
    matrix: TrafficMatrix = {}
    exported = {j: sum(transfer[i].get(j, 0.0) for i in regions)
                for j in regions}
    for i in regions:
        kept = max(backlog.get(i, 0.0) - exported[i], 0.0)
        imported = transfer[i]
        volume = kept + sum(imported.values())
        if volume <= 0:
            matrix[i] = {i: 1.0}
            continue
        row = {i: kept / volume}
        for j, amount in imported.items():
            row[j] = row.get(j, 0.0) + amount / volume
        matrix[i] = row
    return matrix


class GlobalTrafficConductor:
    """Periodic controller publishing the traffic matrix via config."""

    def __init__(self, sim: Simulator, rim: Rim, config: ConfigStore,
                 network: NetworkModel,
                 params: GtcParams = GtcParams(),
                 enabled: bool = True,
                 timers: Optional[SamplerHub] = None) -> None:
        self.sim = sim
        self._timers = timers
        self.rim = rim
        self.config = config
        self.network = network
        self.params = params
        self.enabled = enabled
        self.update_count = 0
        self.last_matrix: Optional[TrafficMatrix] = None
        self._task = None

    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("GTC already started")
        timers = self._timers if self._timers is not None else self.sim
        self._task = timers.every(
            self.params.update_interval_s, self.update,
            start=self.sim.now + self.params.update_interval_s)

    def stop(self) -> None:
        """Simulates central-controller failure: matrices go stale (§4.1)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def update(self) -> None:
        if not self.enabled:
            return
        regions = self.rim.regions()
        backlog = {r: float(self.rim.region_backlog(r)) for r in regions}
        capacity = {r: self.rim.region_capacity(r) for r in regions}
        matrix = compute_traffic_matrix(
            backlog, capacity, self.network,
            tolerance=self.params.overload_tolerance)
        self.last_matrix = matrix
        self.config.publish(TRAFFIC_MATRIX_KEY, matrix)
        self.update_count += 1
