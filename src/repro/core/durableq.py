"""DurableQ: the only stateful, sharded component (§4.3).

A DurableQ persists function calls until completion.  Per function it
keeps a queue ordered by the call's *execution start time* (which the
caller may set in the future).  Schedulers poll for calls whose start
time has passed; once a call is offered to one scheduler it is *leased*
and not offered to another unless the lease expires or the scheduler
NACKs.  ACK deletes the call permanently; NACK or lease expiry makes it
available again — at-least-once semantics.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..sim.kernel import Simulator
from ..util import add_slots
from .call import CallState, FunctionCall


@add_slots
@dataclass
class _Lease:
    call: FunctionCall
    scheduler_id: str
    expires_at: float


class DurableQ:
    """One shard of the durable queue in one region."""

    def __init__(self, sim: Simulator, name: str, region: str,
                 lease_timeout_s: float = 120.0,
                 sweep_interval_s: float = 30.0,
                 jitter_stream: Optional[str] = None) -> None:
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.sim = sim
        self.name = name
        self.region = region
        self.lease_timeout_s = lease_timeout_s
        # Sanitized runs mirror simlint's SL014 lease FSM at runtime;
        # a plain run pays one None-check per protocol event.
        sanitizer = sim.sanitizer
        self._lease_guard = (
            sanitizer.lease_guard if sanitizer is not None else None)
        #: function name → min-heap of (start_time, call_id, call)
        self._queues: Dict[str, List[Tuple[float, int, FunctionCall]]] = {}
        self._leases: Dict[int, _Lease] = {}
        #: round-robin rotation over function names for fair polling,
        #: with a membership set so a name pruned while its queue was
        #: momentarily empty is re-registered on the next enqueue.
        self._rr_names: List[str] = []
        self._rr_member: set = set()
        self._rr_idx = 0
        self.enqueued_count = 0
        self.acked_count = 0
        self.nacked_count = 0
        self.expired_lease_count = 0
        # parsim passes a queue-qualified jitter stream so the sweep's
        # draw sequence is independent of shard grouping; the default
        # shares the kernel-wide "periodic-jitter" stream (legacy).
        self._sweep_task = sim.every(
            sweep_interval_s, self._sweep_leases,
            jitter=sweep_interval_s * 0.1,
            **({"rng_stream": jitter_stream} if jitter_stream else {}))

    # ------------------------------------------------------------------
    def enqueue(self, call: FunctionCall) -> None:
        """Persist a call (write from a submitter via QueueLB)."""
        call.mark_queued(self.region)
        name = call.function_name
        self._register_name(name)
        heapq.heappush(self._queues[name],
                       (call.start_time, call.call_id, call))
        self.enqueued_count += 1

    def _register_name(self, name: str) -> None:
        if name not in self._queues:
            self._queues[name] = []
        if name not in self._rr_member:
            self._rr_member.add(name)
            self._rr_names.append(name)

    # ------------------------------------------------------------------
    def poll(self, scheduler_id: str, max_items: int,
             skip=frozenset()) -> List[FunctionCall]:
        """Lease up to ``max_items`` ready calls, fair across functions.

        ``skip`` names functions the scheduler will not accept right now
        (its per-function buffer is full); their calls stay queued here
        without blocking other functions — the flow-control granularity
        §4.4 implies with per-function FuncBuffers.
        """
        if max_items <= 0:
            return []
        now = self.sim._now
        leased: List[FunctionCall] = []
        if not self._rr_names:
            return leased
        # Schedulers poll every tick and most visited names hold nothing
        # ready, so the rotation scan is this class's hottest loop — run
        # it on locals (the name list cannot change mid-poll; only
        # enqueue/nack/sweep register names).
        rr_names = self._rr_names
        queues_get = self._queues.get
        leases = self._leases
        guard = self._lease_guard
        heappop = heapq.heappop
        expires_at = now + self.lease_timeout_s
        n_leased = 0
        idx = self._rr_idx
        attempts = 0
        n_names = len(rr_names)
        while n_leased < max_items and attempts < n_names:
            name = rr_names[idx % n_names]
            idx += 1
            attempts += 1
            if name in skip:
                continue
            queue = queues_get(name)
            took_any = False
            while queue and n_leased < max_items:
                start_time, _, call = queue[0]
                if start_time > now:
                    break
                heappop(queue)
                call.mark_buffered()
                if guard is not None:
                    guard.on_lease(self.name, call.call_id)
                leases[call.call_id] = _Lease(
                    call=call, scheduler_id=scheduler_id,
                    expires_at=expires_at)
                leased.append(call)
                n_leased += 1
                took_any = True
            if took_any:
                # Reset the per-name attempt budget: fairness across
                # names is preserved by the rotating cursor.
                attempts = 0
        self._rr_idx = idx
        self._gc_names()
        return leased

    def extend_lease(self, call_id: int) -> None:
        """Keep a long-running call leased (scheduler heartbeats)."""
        if self._lease_guard is not None:
            self._lease_guard.on_extend(self.name, call_id)
        lease = self._leases.get(call_id)
        if lease is not None:
            lease.expires_at = self.sim.now + self.lease_timeout_s

    def ack(self, call: FunctionCall) -> None:
        """Function executed successfully: remove permanently."""
        if self._lease_guard is not None:
            self._lease_guard.on_ack(self.name, call.call_id)
        if self._leases.pop(call.call_id, None) is not None:
            self.acked_count += 1

    def nack(self, call: FunctionCall, retry_delay_s: float = 0.0) -> None:
        """Execution failed: make the call available again (§4.3)."""
        if self._lease_guard is not None:
            self._lease_guard.on_nack(self.name, call.call_id)
        lease = self._leases.pop(call.call_id, None)
        if lease is None:
            return
        self.nacked_count += 1
        call.attempts += 1
        call.state = CallState.QUEUED
        # Redelivery after the retry delay: model by shifting the ready
        # time, preserving the original deadline.
        ready_at = self.sim.now + retry_delay_s
        name = call.function_name
        self._register_name(name)
        heapq.heappush(self._queues[name], (ready_at, call.call_id, call))

    # ------------------------------------------------------------------
    # By-id variants for remote (cross-shard) schedulers, which hold a
    # serialized copy of the call — the authoritative object lives in
    # this queue's lease table (repro.parsim message handlers).
    # ------------------------------------------------------------------
    def ack_by_id(self, call_id: int) -> Optional[FunctionCall]:
        """ACK a leased call identified only by its id.

        Returns the acked call (or None when no lease matched) so the
        caller can recycle its arena slot — in parallel mode the owning
        shard's record becomes garbage the moment the executing shard's
        ACK lands.
        """
        if self._lease_guard is not None:
            self._lease_guard.on_ack(self.name, call_id)
        lease = self._leases.pop(call_id, None)
        if lease is None:
            return None
        self.acked_count += 1
        return lease.call

    def nack_by_id(self, call_id: int, retry_delay_s: float = 0.0) -> None:
        """NACK a leased call identified only by its id."""
        lease = self._leases.get(call_id)
        if lease is not None:
            self.nack(lease.call, retry_delay_s)

    # ------------------------------------------------------------------
    def _sweep_leases(self) -> None:
        """Expire stale leases so another scheduler can retry (§4.3)."""
        now = self.sim.now
        expired = [lease for lease in self._leases.values()
                   if lease.expires_at <= now]
        for lease in expired:
            if self._lease_guard is not None:
                self._lease_guard.on_expire(self.name, lease.call.call_id)
            self._leases.pop(lease.call.call_id, None)
            self.expired_lease_count += 1
            call = lease.call
            call.state = CallState.QUEUED
            self._register_name(call.function_name)
            heapq.heappush(self._queues[call.function_name],
                           (now, call.call_id, call))

    def _gc_names(self) -> None:
        if len(self._rr_names) > 64 and self._rr_idx > 4 * len(self._rr_names):
            self._rr_names = [n for n in self._rr_names if self._queues.get(n)]
            self._rr_member = set(self._rr_names)
            self._rr_idx = 0

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Calls persisted and not currently leased."""
        return sum(len(q) for q in self._queues.values())

    def ready_count(self, now: Optional[float] = None) -> int:
        """Pending calls whose start time has passed."""
        now = self.sim.now if now is None else now
        return sum(1 for q in self._queues.values()
                   for start, _, _ in q if start <= now)

    @property
    def leased_count(self) -> int:
        return len(self._leases)

    def stop(self) -> None:
        self._sweep_task.cancel()
