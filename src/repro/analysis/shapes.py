"""Shape statistics used to compare measured curves with the paper's.

The reproduction does not chase the paper's absolute numbers (our
substrate is a simulator), but the *shapes* — peak-to-trough ratios,
smoothing factors, complementarity of reserved vs opportunistic CPU —
should hold.  These helpers compute exactly those statistics.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def peak_to_trough(values: Sequence[float], trim_fraction: float = 0.0) -> float:
    """Max/min ratio of a series.

    ``trim_fraction`` drops that fraction of the lowest and highest
    samples first (robustness against single-bucket artifacts), matching
    how one would eyeball a figure rather than its single worst pixel.
    """
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        raise ValueError("empty series")
    vals.sort()
    k = int(len(vals) * trim_fraction)
    if k > 0:
        vals = vals[k:len(vals) - k] or vals
    trough, peak = vals[0], vals[-1]
    if trough <= 0:
        return math.inf if peak > 0 else 1.0
    return peak / trough


def smoothing_factor(received: Sequence[float],
                     executed: Sequence[float],
                     trim_fraction: float = 0.02) -> float:
    """How much flatter the executed curve is than the received curve.

    Returns peak_to_trough(received) / peak_to_trough(executed); the
    paper's headline numbers give 4.3 / 1.4 ≈ 3.1 on CPU utilization.
    """
    return (peak_to_trough(received, trim_fraction) /
            peak_to_trough(executed, trim_fraction))


def coefficient_of_variation(values: Sequence[float]) -> float:
    """std/mean — a trim-free flatness measure."""
    vals = list(values)
    if not vals:
        raise ValueError("empty series")
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in vals) / len(vals)
    return math.sqrt(var) / mean


def pearson(a: Sequence[float], b: Sequence[float]) -> float:
    """Pearson correlation; Figure 11's complementarity shows as r < 0."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    n = len(a)
    if n < 2:
        raise ValueError("need at least two points")
    mean_a = sum(a) / n
    mean_b = sum(b) / n
    cov = sum((x - mean_a) * (y - mean_b) for x, y in zip(a, b))
    var_a = sum((x - mean_a) ** 2 for x in a)
    var_b = sum((y - mean_b) ** 2 for y in b)
    if var_a == 0 or var_b == 0:
        return 0.0
    return cov / math.sqrt(var_a * var_b)


def complementarity(reserved: Sequence[float],
                    opportunistic: Sequence[float]) -> float:
    """Figure 11 statistic: how flat is the *sum* relative to its parts.

    Returns CV(reserved + opportunistic) / CV(reserved); values well
    below 1 mean opportunistic work fills the reserved curve's troughs.
    """
    total = [r + o for r, o in zip(reserved, opportunistic)]
    cv_reserved = coefficient_of_variation(reserved)
    if cv_reserved == 0:
        return 1.0
    return coefficient_of_variation(total) / cv_reserved


def time_to_reach(series: Sequence[Tuple[float, float]], target: float,
                  sustain_points: int = 3) -> float:
    """First time a (t, value) series reaches ``target`` and stays there.

    Used for the Figure 12 "time to maximum RPS" measurement.
    """
    if sustain_points < 1:
        raise ValueError("sustain_points must be >= 1")
    n = len(series)
    for i, (t, v) in enumerate(series):
        if v >= target:
            window = series[i:i + sustain_points]
            if len(window) == sustain_points and all(
                    val >= target for _, val in window):
                return t
    return math.inf


def normalize(values: Sequence[float]) -> List[float]:
    """Scale a series to max 1.0 (figure-style normalized axes)."""
    peak = max(values) if values else 0.0
    if peak <= 0:
        return [0.0 for _ in values]
    return [v / peak for v in values]
