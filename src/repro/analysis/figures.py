"""Builders that turn platform metrics into the paper's figure series."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.platform import XFaaS


def received_vs_executed(platform: XFaaS, t_start: float = 0.0,
                         t_end: Optional[float] = None,
                         ) -> Tuple[List[float], List[float]]:
    """Figure 2 / 4 series: per-minute received and executed call counts."""
    received = platform.metrics.counter("calls.received")
    executed = platform.metrics.counter("calls.executed")
    r = received.values(t_start, t_end)
    e = executed.values(t_start, t_end)
    n = max(len(r), len(e))
    r += [0.0] * (n - len(r))
    e += [0.0] * (n - len(e))
    return r, e


def region_utilization_averages(platform: XFaaS, t_start: float,
                                t_end: float) -> Dict[str, float]:
    """Figure 7: daily-average CPU utilization per region."""
    out = {}
    for region in platform.topology.region_names:
        name = f"region.{region}.utilization"
        if platform.metrics.has_gauge(name):
            out[region] = platform.metrics.gauge(name).time_average(
                t_start, t_end)
    return out


def fleet_utilization_series(platform: XFaaS, t_start: float, t_end: float,
                             step: float = 60.0) -> List[Tuple[float, float]]:
    """Figure 8: fleet CPU utilization over time."""
    gauge = platform.metrics.gauge("fleet.utilization")
    return gauge.sampled(t_start, t_end, step)


def quota_cpu_series(platform: XFaaS, t_start: float = 0.0,
                     t_end: Optional[float] = None,
                     ) -> Tuple[List[float], List[float]]:
    """Figure 11: per-minute CPU consumed by reserved vs opportunistic."""
    reserved = platform.metrics.counter("cpu.reserved")
    opportunistic = platform.metrics.counter("cpu.opportunistic")
    r = reserved.values(t_start, t_end)
    o = opportunistic.values(t_start, t_end)
    n = max(len(r), len(o))
    r += [0.0] * (n - len(r))
    o += [0.0] * (n - len(o))
    return r, o


def distinct_functions_percentiles(platform: XFaaS,
                                   percentiles=(50, 95)) -> List[int]:
    """Figure 9: distinct functions per worker per window percentiles."""
    dist = platform.metrics.distribution(
        "worker.distinct_functions_per_window")
    # Samples are distinct-function *counts*; the storage backend keeps
    # them as doubles, so restore their integer nature on the way out.
    return [int(dist.percentile(p)) for p in percentiles]


def worker_memory_series(platform: XFaaS, t_start: float, t_end: float,
                         step: float = 60.0) -> List[Tuple[float, float]]:
    """Figure 10: one worker's memory over time."""
    gauge = platform.metrics.gauge("worker.sample.memory_mb")
    return gauge.sampled(t_start, t_end, step)


def backpressure_series(platform: XFaaS, service: str,
                        t_start: float = 0.0,
                        t_end: Optional[float] = None) -> List[float]:
    """§5.5 incident view: back-pressure exceptions per minute."""
    name = f"backpressure.{service}"
    if not platform.metrics.has_counter(name):
        return []
    return platform.metrics.counter(name).values(t_start, t_end)
