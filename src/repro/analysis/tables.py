"""Builders that turn trace logs into the paper's Tables 1–3."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..metrics.timeseries import Distribution
from ..workloads.spec import TriggerType
from ..workloads.trace import CallTrace


def table1_from_traces(traces: Iterable[CallTrace],
                       specs_by_trigger: Dict[str, int]) -> List[Tuple]:
    """Rows of Table 1: per trigger, % functions, % calls, % compute.

    ``specs_by_trigger`` maps trigger value → registered function count
    (the function-share column counts registered functions, not only
    those invoked).
    """
    calls: Dict[str, int] = {t.value: 0 for t in TriggerType}
    compute: Dict[str, float] = {t.value: 0.0 for t in TriggerType}
    for tr in traces:
        if tr.outcome != "ok":
            continue
        calls[tr.trigger] = calls.get(tr.trigger, 0) + 1
        compute[tr.trigger] = compute.get(tr.trigger, 0.0) + tr.cpu_minstr
    total_functions = sum(specs_by_trigger.values()) or 1
    total_calls = sum(calls.values()) or 1
    total_compute = sum(compute.values()) or 1.0
    rows = []
    for trigger in TriggerType:
        key = trigger.value
        rows.append((
            f"{key}-triggered",
            100.0 * specs_by_trigger.get(key, 0) / total_functions,
            100.0 * calls.get(key, 0) / total_calls,
            100.0 * compute.get(key, 0.0) / total_compute,
        ))
    return rows


def table3_from_traces(traces: Iterable[CallTrace],
                       percentiles: Sequence[float] = (10, 50, 90, 99),
                       ) -> Dict[str, Dict[str, List[float]]]:
    """Table 3: per-trigger percentiles of CPU, memory, exec time.

    Returns ``{trigger: {"cpu": [...], "memory": [...], "exec": [...]}}``
    with one value per requested percentile.
    """
    dists: Dict[str, Dict[str, Distribution]] = {}
    for tr in traces:
        if tr.outcome != "ok":
            continue
        per_trigger = dists.setdefault(tr.trigger, {
            "cpu": Distribution("cpu"),
            "memory": Distribution("memory"),
            "exec": Distribution("exec"),
        })
        per_trigger["cpu"].add(tr.cpu_minstr)
        per_trigger["memory"].add(tr.memory_mb)
        per_trigger["exec"].add(tr.exec_time_s)
    out: Dict[str, Dict[str, List[float]]] = {}
    for trigger, metrics in dists.items():
        out[trigger] = {
            name: [dist.percentile(p) for p in percentiles]
            for name, dist in metrics.items()
        }
    return out


def aggregate_percentiles(traces: Iterable[CallTrace],
                          field: str,
                          percentiles: Sequence[float]) -> List[float]:
    """Percentiles of one CallTrace numeric field across all ok traces."""
    dist = Distribution(field)
    for tr in traces:
        if tr.outcome == "ok":
            dist.add(getattr(tr, field))
    return [dist.percentile(p) for p in percentiles]
