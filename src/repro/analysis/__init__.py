"""Analysis: shape statistics and table/figure builders."""

from .figures import (
    backpressure_series,
    distinct_functions_percentiles,
    fleet_utilization_series,
    quota_cpu_series,
    received_vs_executed,
    region_utilization_averages,
    worker_memory_series,
)
from .shapes import (
    coefficient_of_variation,
    complementarity,
    normalize,
    peak_to_trough,
    pearson,
    smoothing_factor,
    time_to_reach,
)
from .tables import aggregate_percentiles, table1_from_traces, table3_from_traces

__all__ = [
    "aggregate_percentiles",
    "backpressure_series",
    "coefficient_of_variation",
    "complementarity",
    "distinct_functions_percentiles",
    "fleet_utilization_series",
    "normalize",
    "peak_to_trough",
    "pearson",
    "quota_cpu_series",
    "received_vs_executed",
    "region_utilization_averages",
    "smoothing_factor",
    "table1_from_traces",
    "table3_from_traces",
    "time_to_reach",
    "worker_memory_series",
]
