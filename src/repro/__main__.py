"""Entry point: ``python -m repro <command>``."""

import sys

from .cli import main

# The __name__ guard matters: multiprocessing's spawn start method
# re-imports this module as "__mp_main__" in every worker process of a
# `repro sweep`, and an unguarded main() would recurse into the CLI.
if __name__ == "__main__":
    sys.exit(main())
