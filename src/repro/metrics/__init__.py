"""Metrics: time series, streaming percentiles, registry, reporting."""

from .percentile import P2Quantile, P2Sketch, StreamingMean
from .recorder import MetricsRegistry
from .report import format_table, series_block, sparkline
from .timeseries import Counter, Distribution, Gauge

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "P2Sketch",
    "StreamingMean",
    "format_table",
    "series_block",
    "sparkline",
]
