"""Time-series primitives used to record and report experiment output.

Three flavours cover everything the paper's figures need:

* :class:`Counter` — monotonically increasing totals, bucketed into
  fixed windows ("function calls received per minute", Fig 2/4).
* :class:`Gauge` — piecewise-constant level with time-weighted
  statistics ("worker memory", Fig 10; "CPU utilization", Fig 8).
* :class:`Distribution` — value samples for percentile reporting
  (Table 3, Fig 9).
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """Event counter bucketed into fixed-size time windows."""

    def __init__(self, name: str, window: float = 60.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.name = name
        self.window = window
        self.total = 0.0
        self._buckets: Dict[int, float] = {}

    def add(self, time: float, amount: float = 1.0) -> None:
        self.total += amount
        idx = int(time // self.window)
        self._buckets[idx] = self._buckets.get(idx, 0.0) + amount

    def series(self, t_start: float = 0.0,
               t_end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Dense per-window series of (window start time, count)."""
        if not self._buckets:
            return []
        lo = int(t_start // self.window)
        hi = max(self._buckets) if t_end is None else int(
            math.ceil(t_end / self.window)) - 1
        return [(i * self.window, self._buckets.get(i, 0.0))
                for i in range(lo, hi + 1)]

    def values(self, t_start: float = 0.0,
               t_end: Optional[float] = None) -> List[float]:
        return [v for _, v in self.series(t_start, t_end)]

    def rate_series(self, t_start: float = 0.0,
                    t_end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Like :meth:`series` but values are per-second rates."""
        return [(t, v / self.window) for t, v in self.series(t_start, t_end)]


class Gauge:
    """A piecewise-constant level supporting time-weighted statistics."""

    def __init__(self, name: str, initial: float = 0.0, t0: float = 0.0) -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = [(t0, initial)]

    @property
    def value(self) -> float:
        return self._points[-1][1]

    def set(self, time: float, value: float) -> None:
        last_t, last_v = self._points[-1]
        if time < last_t:
            raise ValueError(f"gauge {self.name!r}: time went backwards "
                             f"({time} < {last_t})")
        if value == last_v:
            return
        if time == last_t:
            self._points[-1] = (time, value)
        else:
            self._points.append((time, value))

    def adjust(self, time: float, delta: float) -> None:
        self.set(time, self.value + delta)

    def time_average(self, t_start: float, t_end: float) -> float:
        """Time-weighted mean of the gauge over [t_start, t_end]."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        area = 0.0
        points = self._points
        for i, (t, v) in enumerate(points):
            seg_start = max(t, t_start)
            seg_end = points[i + 1][0] if i + 1 < len(points) else t_end
            seg_end = min(seg_end, t_end)
            if seg_end > seg_start:
                area += v * (seg_end - seg_start)
        # Portion before the first point uses the first value.
        first_t, first_v = points[0]
        if t_start < first_t:
            area += first_v * (min(first_t, t_end) - t_start)
        return area / (t_end - t_start)

    def sampled(self, t_start: float, t_end: float,
                step: float) -> List[Tuple[float, float]]:
        """Sample the gauge at fixed steps (for plotting-style output)."""
        out = []
        times = [p[0] for p in self._points]
        t = t_start
        while t <= t_end + 1e-9:
            i = bisect.bisect_right(times, t) - 1
            out.append((t, self._points[max(i, 0)][1]))
            t += step
        return out

    def max_value(self, t_start: float = 0.0,
                  t_end: float = math.inf) -> float:
        vals = [v for t, v in self._points if t_start <= t <= t_end]
        if not vals:
            # gauge constant over the interval: value at t_start applies
            times = [p[0] for p in self._points]
            i = bisect.bisect_right(times, t_start) - 1
            return self._points[max(i, 0)][1]
        return max(vals)


class Distribution:
    """Collected samples with exact percentile queries.

    Stores all samples (experiments here are ≤ a few million samples);
    percentiles use the nearest-rank method the paper's Pxx notation
    implies.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.add(v)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        self._ensure_sorted()
        if p == 0:
            return self._samples[0]
        rank = max(1, math.ceil(p / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        self._ensure_sorted()
        return self._samples[0]

    def max(self) -> float:
        self._ensure_sorted()
        return self._samples[-1]

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``."""
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        self._ensure_sorted()
        return bisect.bisect_left(self._samples, threshold) / len(self._samples)
