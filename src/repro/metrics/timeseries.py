"""Time-series primitives used to record and report experiment output.

Three flavours cover everything the paper's figures need:

* :class:`Counter` — monotonically increasing totals, bucketed into
  fixed windows ("function calls received per minute", Fig 2/4).
* :class:`Gauge` — piecewise-constant level with time-weighted
  statistics ("worker memory", Fig 10; "CPU utilization", Fig 8).
* :class:`Distribution` — value samples for percentile reporting
  (Table 3, Fig 9).

All three support ``snapshot()`` / ``from_snapshot()`` / ``merge()`` so
per-process copies produced by the sweep engine (:mod:`repro.sweep`) can
be shipped across a ``multiprocessing`` boundary as plain dicts and
folded into fleet-level metrics.  Counter and Distribution merges are
exact (bucket sums / sample concatenation); a Gauge merge sums the two
piecewise-constant levels over the union of their breakpoints, which is
the fleet semantic ("total memory across shards"), not an average.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """Event counter bucketed into fixed-size time windows.

    Buckets live in a dense ``array('d')`` (C doubles, no per-bucket
    boxing) anchored at ``_base`` — the bucket index of ``_counts[0]``.
    The hot :meth:`add` path is one index computation and one in-place
    float add; the array only grows when time crosses into a bucket
    beyond either end.
    """

    __slots__ = ("name", "window", "total", "_counts", "_base")

    def __init__(self, name: str, window: float = 60.0) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.name = name
        self.window = window
        self.total = 0.0
        self._counts: array = array("d")
        self._base = 0

    def add(self, time: float, amount: float = 1.0) -> None:
        self.total += amount
        idx = int(time // self.window)
        counts = self._counts
        n = len(counts)
        if n == 0:
            self._base = idx
            counts.append(amount)
            return
        off = idx - self._base
        if 0 <= off < n:
            counts[off] += amount
        elif off >= n:
            counts.frombytes(bytes(8 * (off - n)))  # zero-filled doubles
            counts.append(amount)
        else:
            grown = array("d", bytes(8 * -off))
            grown[0] = amount
            grown.extend(counts)
            self._counts = grown
            self._base = idx

    def series(self, t_start: float = 0.0,
               t_end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Dense per-window series of (window start time, count)."""
        counts = self._counts
        if not counts:
            return []
        base = self._base
        lo = int(t_start // self.window)
        hi = base + len(counts) - 1 if t_end is None else int(
            math.ceil(t_end / self.window)) - 1
        return [(i * self.window,
                 counts[i - base] if 0 <= i - base < len(counts) else 0.0)
                for i in range(lo, hi + 1)]

    def values(self, t_start: float = 0.0,
               t_end: Optional[float] = None) -> List[float]:
        return [v for _, v in self.series(t_start, t_end)]

    def rate_series(self, t_start: float = 0.0,
                    t_end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Like :meth:`series` but values are per-second rates."""
        return [(t, v / self.window) for t, v in self.series(t_start, t_end)]

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable plain-dict state (see module docstring)."""
        return {"kind": "counter", "name": self.name, "window": self.window,
                "total": self.total, "base": self._base,
                "counts": list(self._counts)}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "Counter":
        counter = cls(snap["name"], snap["window"])
        counter.total = snap["total"]
        counter._base = snap["base"]
        counter._counts = array("d", snap["counts"])
        return counter

    def merge(self, other: "Counter") -> "Counter":
        """Fold ``other`` into this counter (exact bucket-wise sum)."""
        if other.window != self.window:
            raise ValueError(
                f"cannot merge counter {other.name!r} (window {other.window}) "
                f"into {self.name!r} (window {self.window})")
        if not other._counts:
            return self
        self.total += other.total
        if not self._counts:
            self._base = other._base
            self._counts = array("d", other._counts)
            return self
        lo = min(self._base, other._base)
        hi = max(self._base + len(self._counts),
                 other._base + len(other._counts))
        merged = array("d", bytes(8 * (hi - lo)))
        for base, counts in ((self._base, self._counts),
                             (other._base, other._counts)):
            off = base - lo
            for i, v in enumerate(counts):
                merged[off + i] += v
        self._base = lo
        self._counts = merged
        return self


class Gauge:
    """A piecewise-constant level supporting time-weighted statistics."""

    __slots__ = ("name", "_points")

    def __init__(self, name: str, initial: float = 0.0, t0: float = 0.0) -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = [(t0, initial)]

    @property
    def value(self) -> float:
        return self._points[-1][1]

    def set(self, time: float, value: float) -> None:
        last_t, last_v = self._points[-1]
        if time < last_t:
            raise ValueError(f"gauge {self.name!r}: time went backwards "
                             f"({time} < {last_t})")
        if value == last_v:
            return
        if time == last_t:
            self._points[-1] = (time, value)
        else:
            self._points.append((time, value))

    def adjust(self, time: float, delta: float) -> None:
        self.set(time, self.value + delta)

    def time_average(self, t_start: float, t_end: float) -> float:
        """Time-weighted mean of the gauge over [t_start, t_end]."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        area = 0.0
        points = self._points
        for i, (t, v) in enumerate(points):
            seg_start = max(t, t_start)
            seg_end = points[i + 1][0] if i + 1 < len(points) else t_end
            seg_end = min(seg_end, t_end)
            if seg_end > seg_start:
                area += v * (seg_end - seg_start)
        # Portion before the first point uses the first value.
        first_t, first_v = points[0]
        if t_start < first_t:
            area += first_v * (min(first_t, t_end) - t_start)
        return area / (t_end - t_start)

    def sampled(self, t_start: float, t_end: float,
                step: float) -> List[Tuple[float, float]]:
        """Sample the gauge at fixed steps (for plotting-style output)."""
        out = []
        times = [p[0] for p in self._points]
        t = t_start
        while t <= t_end + 1e-9:
            i = bisect.bisect_right(times, t) - 1
            out.append((t, self._points[max(i, 0)][1]))
            t += step
        return out

    def max_value(self, t_start: float = 0.0,
                  t_end: float = math.inf) -> float:
        vals = [v for t, v in self._points if t_start <= t <= t_end]
        if not vals:
            # gauge constant over the interval: value at t_start applies
            times = [p[0] for p in self._points]
            i = bisect.bisect_right(times, t_start) - 1
            return self._points[max(i, 0)][1]
        return max(vals)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "gauge", "name": self.name,
                "points": [list(p) for p in self._points]}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "Gauge":
        gauge = cls(snap["name"])
        gauge._points = [(t, v) for t, v in snap["points"]]
        return gauge

    def merge(self, other: "Gauge") -> "Gauge":
        """Sum the two levels over the union of their breakpoints.

        The merged gauge at time ``t`` equals ``self(t) + other(t)``
        (each gauge extends its first value backwards in time, matching
        :meth:`time_average`), which aggregates per-shard levels into a
        fleet total.
        """
        pts_a, pts_b = self._points, other._points
        times = sorted({t for t, _ in pts_a} | {t for t, _ in pts_b})
        ia = ib = 0
        va, vb = pts_a[0][1], pts_b[0][1]
        merged: List[Tuple[float, float]] = []
        for t in times:
            while ia < len(pts_a) and pts_a[ia][0] <= t:
                va = pts_a[ia][1]
                ia += 1
            while ib < len(pts_b) and pts_b[ib][0] <= t:
                vb = pts_b[ib][1]
                ib += 1
            v = va + vb
            if not merged or merged[-1][1] != v:
                merged.append((t, v))
        self._points = merged
        return self


class Distribution:
    """Collected samples with exact percentile queries.

    Stores all samples in an ``array('d')`` — C doubles are lossless for
    Python floats, take 8 bytes instead of a 28-byte boxed float plus an
    8-byte list slot, and append faster on million-sample runs.
    Percentiles use the nearest-rank method the paper's Pxx notation
    implies; sorting happens lazily at query time, at most once per
    batch of appends.  For O(1)-memory streaming estimates use
    :class:`repro.metrics.P2Sketch` instead.
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: array = array("d")
        self._sorted = True

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, value: float) -> None:
        samples = self._samples
        if samples and value < samples[-1]:
            self._sorted = False
        samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        for v in values:
            self.add(v)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._samples = array("d", sorted(self._samples))
            self._sorted = True

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile; ``p`` in [0, 100]."""
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        self._ensure_sorted()
        if p == 0:
            return self._samples[0]
        rank = max(1, math.ceil(p / 100.0 * len(self._samples)))
        return self._samples[rank - 1]

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        return sum(self._samples) / len(self._samples)

    def min(self) -> float:
        self._ensure_sorted()
        return self._samples[0]

    def max(self) -> float:
        self._ensure_sorted()
        return self._samples[-1]

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples strictly below ``threshold``."""
        if not self._samples:
            raise ValueError(f"distribution {self.name!r} is empty")
        self._ensure_sorted()
        return bisect.bisect_left(self._samples, threshold) / len(self._samples)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "distribution", "name": self.name,
                "samples": list(self._samples)}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "Distribution":
        dist = cls(snap["name"])
        dist._samples = array("d", snap["samples"])
        dist._sorted = all(a <= b for a, b in
                           zip(dist._samples, dist._samples[1:]))
        return dist

    def merge(self, other: "Distribution") -> "Distribution":
        """Concatenate ``other``'s samples; percentiles stay exact."""
        if not len(other._samples):
            return self
        boundary_ok = (not self._samples or
                       other._samples[0] >= self._samples[-1])
        self._sorted = self._sorted and other._sorted and boundary_ok
        self._samples.extend(other._samples)
        return self
