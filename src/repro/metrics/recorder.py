"""Central metrics registry shared by all platform components."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .percentile import P2Sketch
from .timeseries import Counter, Distribution, Gauge


class MetricsRegistry:
    """Lazily-created named counters, gauges, and distributions.

    Naming convention is dotted paths, e.g. ``calls.received``,
    ``region.r3.utilization``, ``worker.r1-w7.memory_mb``.
    """

    def __init__(self, counter_window: float = 60.0) -> None:
        self.counter_window = counter_window
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._distributions: Dict[str, Distribution] = {}
        self._sketches: Dict[str, P2Sketch] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, window: Optional[float] = None) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(
                name, window if window is not None else self.counter_window)
        return self._counters[name]

    def gauge(self, name: str, initial: float = 0.0, t0: float = 0.0) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, initial, t0)
        return self._gauges[name]

    def distribution(self, name: str) -> Distribution:
        if name not in self._distributions:
            self._distributions[name] = Distribution(name)
        return self._distributions[name]

    def sketch(self, name: str,
               quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> P2Sketch:
        """O(1)-memory percentile sketch for unbounded-volume streams.

        Unlike :meth:`distribution`, samples are folded into fixed-size
        P² marker state instead of being stored, so a sketch never grows
        with the run horizon.  The quantile set is fixed at creation.
        """
        if name not in self._sketches:
            self._sketches[name] = P2Sketch(quantiles)
        return self._sketches[name]

    # ------------------------------------------------------------------
    # Bound handles: components resolve a metric once at init and keep
    # the object; the per-event path then calls the handle directly with
    # zero registry involvement.  Handles stay valid across
    # snapshot/merge *reads* (those never replace the stored objects),
    # but a component must re-bind if it swaps registries.
    def bind_counter(self, name: str, window: Optional[float] = None) -> Counter:
        """Resolve-once handle for a hot-path counter (same object as
        :meth:`counter`; the separate name marks intent for simlint)."""
        return self.counter(name, window)

    def bind_gauge(self, name: str, initial: float = 0.0,
                   t0: float = 0.0) -> Gauge:
        return self.gauge(name, initial, t0)

    def bind_distribution(self, name: str) -> Distribution:
        return self.distribution(name)

    def bind_sketch(self, name: str,
                    quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> P2Sketch:
        return self.sketch(name, quantiles)

    # ------------------------------------------------------------------
    def has_counter(self, name: str) -> bool:
        return name in self._counters

    def has_gauge(self, name: str) -> bool:
        return name in self._gauges

    def has_distribution(self, name: str) -> bool:
        return name in self._distributions

    def has_sketch(self, name: str) -> bool:
        return name in self._sketches

    def counters_matching(self, prefix: str) -> Iterable[Counter]:
        return (c for n, c in sorted(self._counters.items())
                if n.startswith(prefix))

    def gauges_matching(self, prefix: str) -> Iterable[Gauge]:
        return (g for n, g in sorted(self._gauges.items())
                if n.startswith(prefix))

    def distributions_matching(self, prefix: str) -> Iterable[Distribution]:
        return (d for n, d in sorted(self._distributions.items())
                if n.startswith(prefix))

    # ------------------------------------------------------------------
    # Snapshot / merge: ship a registry across a process boundary as a
    # plain dict and fold per-shard registries into fleet-level metrics.
    def snapshot(self) -> Dict[str, Any]:
        return {
            "counter_window": self.counter_window,
            "counters": {n: c.snapshot()
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.snapshot()
                       for n, g in sorted(self._gauges.items())},
            "distributions": {n: d.snapshot()
                              for n, d in sorted(self._distributions.items())},
            "sketches": {n: s.snapshot()
                         for n, s in sorted(self._sketches.items())},
        }

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "MetricsRegistry":
        reg = cls(counter_window=snap.get("counter_window", 60.0))
        for name, s in snap.get("counters", {}).items():
            reg._counters[name] = Counter.from_snapshot(s)
        for name, s in snap.get("gauges", {}).items():
            reg._gauges[name] = Gauge.from_snapshot(s)
        for name, s in snap.get("distributions", {}).items():
            reg._distributions[name] = Distribution.from_snapshot(s)
        for name, s in snap.get("sketches", {}).items():
            reg._sketches[name] = P2Sketch.from_snapshot(s)
        return reg

    def merge(self, other: Union["MetricsRegistry", dict]) -> "MetricsRegistry":
        """Fold another registry (or its :meth:`snapshot`) into this one.

        Metrics present in both are merged per-type; metrics only in
        ``other`` are deep-copied in, so later mutation of ``other``
        never aliases into this registry.
        """
        if isinstance(other, dict):
            other = MetricsRegistry.from_snapshot(other)
        pairs: List[Tuple[Dict[str, Any], Dict[str, Any], Any]] = [
            (self._counters, other._counters, Counter),
            (self._gauges, other._gauges, Gauge),
            (self._distributions, other._distributions, Distribution),
            (self._sketches, other._sketches, P2Sketch)]
        for mine, theirs, kind in pairs:
            for name, metric in theirs.items():
                if name in mine:
                    mine[name].merge(metric)
                else:
                    mine[name] = kind.from_snapshot(metric.snapshot())
        return self
