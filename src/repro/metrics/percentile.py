"""Streaming percentile estimation (P² algorithm).

Components that run for a long simulated time (e.g. the Central Rate
Limiter tracking per-call cost) cannot keep every sample.  The P²
algorithm (Jain & Chlamtac, 1985) maintains a five-marker parabolic
approximation of a single quantile in O(1) memory.

All estimators here support ``snapshot()`` / ``from_snapshot()`` /
``merge()`` for the sweep engine (:mod:`repro.sweep`).  A
:class:`StreamingMean` merge is exact (Chan et al. parallel
mean/variance); a :class:`P2Quantile` merge is a count-weighted marker
merge — extremes take min/max, interior marker heights average weighted
by each shard's sample count, and marker positions are re-idealized for
the combined count — an approximation that lands within a few percent
of the single-stream estimate on unimodal streams.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


class P2Quantile:
    """Streaming estimator of one quantile via the P² algorithm."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        self._n: List[int] = []       # marker positions
        self._np: List[float] = []    # desired positions
        self._heights: List[float] = []
        #: Desired-position increments; constant per quantile, so built
        #: once instead of on every add().
        self._dn = (0.0, q / 2, q, (1 + q) / 2, 1.0)
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                self._np = [1.0, 1 + 2 * self.q, 1 + 4 * self.q,
                            3 + 2 * self.q, 5.0]
            return

        h = self._heights
        # Find cell k containing x, clamping extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._n[i] += 1
        dn = self._dn
        for i in range(5):
            self._np[i] += dn[i]

        # Adjust interior markers.
        for i in range(1, 4):
            d = self._np[i] - self._n[i]
            if (d >= 1 and self._n[i + 1] - self._n[i] > 1) or \
               (d <= -1 and self._n[i - 1] - self._n[i] < -1):
                sign = 1 if d >= 1 else -1
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                self._n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            raise ValueError("no samples")
        if len(self._initial) < 5:
            s = sorted(self._initial)
            idx = min(len(s) - 1, int(self.q * len(s)))
            return s[idx]
        return self._heights[2]

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "p2quantile", "q": self.q, "count": self.count,
                "initial": list(self._initial), "n": list(self._n),
                "np": list(self._np), "heights": list(self._heights)}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "P2Quantile":
        est = cls(snap["q"])
        est.count = snap["count"]
        est._initial = list(snap["initial"])
        est._n = list(snap["n"])
        est._np = list(snap["np"])
        est._heights = list(snap["heights"])
        return est

    def merge(self, other: "P2Quantile") -> "P2Quantile":
        """Fold ``other`` into this estimator (count-weighted markers)."""
        if other.q != self.q:
            raise ValueError(
                f"cannot merge q={other.q} estimator into q={self.q}")
        if other.count == 0:
            return self
        if len(other._initial) < 5:
            # Other never left its warm-up buffer: replay its raw samples.
            for x in other._initial:
                self.add(x)
            return self
        if len(self._initial) < 5:
            # Adopt the initialized side's marker state, replay my buffer.
            mine = list(self._initial)
            self._initial = list(other._initial)
            self._n = list(other._n)
            self._np = list(other._np)
            self._heights = list(other._heights)
            self.count = other.count
            for x in mine:
                self.add(x)
            return self

        wa, wb = self.count, other.count
        ha, hb = self._heights, other._heights
        total = wa + wb
        self._heights = [
            min(ha[0], hb[0]),
            (wa * ha[1] + wb * hb[1]) / total,
            (wa * ha[2] + wb * hb[2]) / total,
            (wa * ha[3] + wb * hb[3]) / total,
            max(ha[4], hb[4]),
        ]
        # Re-idealize marker positions for the combined count.  Both
        # inputs were initialized, so total >= 10 leaves room for the
        # strictly-increasing interior fixups below.
        self._np = [1 + (total - 1) * d for d in self._dn]
        n = [1]
        for i in (1, 2, 3):
            n.append(max(int(round(self._np[i])), n[-1] + 1))
        n.append(max(total, n[-1] + 1))
        for i in (3, 2, 1):
            if n[i] >= n[i + 1]:
                n[i] = n[i + 1] - 1
        self._n = n
        self.count = total
        return self


class P2Sketch:
    """Multi-quantile streaming sketch: one P² marker set per quantile.

    Tracks several quantiles plus min/max/mean of the same stream with a
    single :meth:`add` call.  Memory is O(#quantiles) and each update is
    O(#quantiles) marker adjustments — constant, independent of the
    number of samples — unlike :class:`~repro.metrics.Distribution`,
    which stores every sample for exact answers.  Use this where the
    sample volume is unbounded (long-horizon runs) and estimates are
    acceptable; use ``Distribution`` where figures need exact Pxx.
    """

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.quantiles = tuple(quantiles)
        self._estimators = tuple(P2Quantile(q) for q in self.quantiles)
        self._mean = StreamingMean()
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def count(self) -> int:
        return self._mean.count

    def add(self, x: float) -> None:
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self._mean.add(x)
        for est in self._estimators:
            est.add(x)

    def quantile(self, q: float) -> float:
        """Estimate for one of the tracked quantiles."""
        for want, est in zip(self.quantiles, self._estimators):
            if want == q:
                return est.value
        raise KeyError(f"quantile {q} not tracked (have {self.quantiles})")

    @property
    def mean(self) -> float:
        return self._mean.mean

    def summary(self) -> Dict[str, Any]:
        """All tracked statistics, e.g. for benchmark JSON output."""
        if self.count == 0:
            raise ValueError("no samples")
        out = {"count": self.count, "mean": self.mean,
               "min": self.min, "max": self.max}
        for q, est in zip(self.quantiles, self._estimators):
            out[f"p{q * 100:g}"] = est.value
        return out

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "p2sketch", "quantiles": list(self.quantiles),
                "estimators": [e.snapshot() for e in self._estimators],
                "mean": self._mean.snapshot(),
                "min": self.min, "max": self.max}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "P2Sketch":
        sketch = cls(tuple(snap["quantiles"]))
        sketch._estimators = tuple(P2Quantile.from_snapshot(s)
                                   for s in snap["estimators"])
        sketch._mean = StreamingMean.from_snapshot(snap["mean"])
        sketch.min = snap["min"]
        sketch.max = snap["max"]
        return sketch

    def merge(self, other: "P2Sketch") -> "P2Sketch":
        if tuple(other.quantiles) != self.quantiles:
            raise ValueError(
                f"cannot merge sketch tracking {other.quantiles} into "
                f"one tracking {self.quantiles}")
        for est, oest in zip(self._estimators, other._estimators):
            est.merge(oest)
        self._mean.merge(other._mean)
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


class StreamingMean:
    """Incremental mean/variance (Welford) in O(1) memory."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {"kind": "streamingmean", "count": self.count,
                "mean": self._mean, "m2": self._m2}

    @classmethod
    def from_snapshot(cls, snap: Dict[str, Any]) -> "StreamingMean":
        sm = cls()
        sm.count = snap["count"]
        sm._mean = snap["mean"]
        sm._m2 = snap["m2"]
        return sm

    def merge(self, other: "StreamingMean") -> "StreamingMean":
        """Exact parallel mean/variance merge (Chan et al., 1979)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self._mean, self._m2 = \
                other.count, other._mean, other._m2
            return self
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean = (self.count * self._mean
                      + other.count * other._mean) / total
        self.count = total
        return self
