"""Streaming percentile estimation (P² algorithm).

Components that run for a long simulated time (e.g. the Central Rate
Limiter tracking per-call cost) cannot keep every sample.  The P²
algorithm (Jain & Chlamtac, 1985) maintains a five-marker parabolic
approximation of a single quantile in O(1) memory.
"""

from __future__ import annotations

from typing import List, Sequence


class P2Quantile:
    """Streaming estimator of one quantile via the P² algorithm."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = q
        self._initial: List[float] = []
        self._n: List[int] = []       # marker positions
        self._np: List[float] = []    # desired positions
        self._heights: List[float] = []
        #: Desired-position increments; constant per quantile, so built
        #: once instead of on every add().
        self._dn = (0.0, q / 2, q, (1 + q) / 2, 1.0)
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                self._np = [1.0, 1 + 2 * self.q, 1 + 4 * self.q,
                            3 + 2 * self.q, 5.0]
            return

        h = self._heights
        # Find cell k containing x, clamping extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._n[i] += 1
        dn = self._dn
        for i in range(5):
            self._np[i] += dn[i]

        # Adjust interior markers.
        for i in range(1, 4):
            d = self._np[i] - self._n[i]
            if (d >= 1 and self._n[i + 1] - self._n[i] > 1) or \
               (d <= -1 and self._n[i - 1] - self._n[i] < -1):
                sign = 1 if d >= 1 else -1
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                self._n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))

    def _linear(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            raise ValueError("no samples")
        if len(self._initial) < 5:
            s = sorted(self._initial)
            idx = min(len(s) - 1, int(self.q * len(s)))
            return s[idx]
        return self._heights[2]


class P2Sketch:
    """Multi-quantile streaming sketch: one P² marker set per quantile.

    Tracks several quantiles plus min/max/mean of the same stream with a
    single :meth:`add` call.  Memory is O(#quantiles) and each update is
    O(#quantiles) marker adjustments — constant, independent of the
    number of samples — unlike :class:`~repro.metrics.Distribution`,
    which stores every sample for exact answers.  Use this where the
    sample volume is unbounded (long-horizon runs) and estimates are
    acceptable; use ``Distribution`` where figures need exact Pxx.
    """

    def __init__(self, quantiles: Sequence[float] = (0.5, 0.95, 0.99)) -> None:
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.quantiles = tuple(quantiles)
        self._estimators = tuple(P2Quantile(q) for q in self.quantiles)
        self._mean = StreamingMean()
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def count(self) -> int:
        return self._mean.count

    def add(self, x: float) -> None:
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        self._mean.add(x)
        for est in self._estimators:
            est.add(x)

    def quantile(self, q: float) -> float:
        """Estimate for one of the tracked quantiles."""
        for want, est in zip(self.quantiles, self._estimators):
            if want == q:
                return est.value
        raise KeyError(f"quantile {q} not tracked (have {self.quantiles})")

    @property
    def mean(self) -> float:
        return self._mean.mean

    def summary(self) -> dict:
        """All tracked statistics, e.g. for benchmark JSON output."""
        if self.count == 0:
            raise ValueError("no samples")
        out = {"count": self.count, "mean": self.mean,
               "min": self.min, "max": self.max}
        for q, est in zip(self.quantiles, self._estimators):
            out[f"p{q * 100:g}"] = est.value
        return out


class StreamingMean:
    """Incremental mean/variance (Welford) in O(1) memory."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)
