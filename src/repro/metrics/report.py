"""Plain-text tables and sparkline-style series for benchmark output.

The benchmark harnesses print the same rows/series the paper's tables
and figures report; these helpers keep that output consistent.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """Unicode sparkline of a series, downsampled to ``width`` buckets."""
    if not values:
        return ""
    vals = _downsample(list(values), width)
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_CHARS[0] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK_CHARS) - 1))
        out.append(_SPARK_CHARS[idx])
    return "".join(out)


def _downsample(values: List[float], width: int) -> List[float]:
    if len(values) <= width:
        return values
    bucket = len(values) / width
    out = []
    for i in range(width):
        lo = int(i * bucket)
        hi = max(lo + 1, int((i + 1) * bucket))
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def series_block(label: str, values: Sequence[float], unit: str = "") -> str:
    """A labeled sparkline with min/mean/max annotations."""
    if not values:
        return f"{label}: (empty)"
    mean = sum(values) / len(values)
    suffix = f" {unit}" if unit else ""
    return (f"{label}:\n  {sparkline(values)}\n"
            f"  min={min(values):.3g}{suffix}  mean={mean:.3g}{suffix}  "
            f"max={max(values):.3g}{suffix}  "
            f"peak/trough={_peak_trough(values):.2f}x")


def _peak_trough(values: Sequence[float]) -> float:
    trough = min(values)
    peak = max(values)
    if trough <= 0:
        return float("inf") if peak > 0 else 1.0
    return peak / trough
