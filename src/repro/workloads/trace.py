"""Call-trace records: capture, summarize, save/load as CSV.

Benchmarks capture per-call traces so the analysis layer can rebuild the
paper's series (received vs executed, latency SLOs, deferral delay)
without re-running the simulation.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import List


@dataclass(frozen=True)
class CallTrace:
    """Lifecycle timestamps and outcome of one function call."""

    call_id: int
    function: str
    trigger: str
    criticality: int
    quota_type: str
    submit_time: float
    start_time_requested: float
    dispatch_time: float
    finish_time: float
    region_submitted: str
    region_executed: str
    worker: str
    outcome: str            # "ok", "error", "throttled", "expired"
    cpu_minstr: float
    memory_mb: float
    exec_time_s: float
    attempts: int = 1

    @property
    def queueing_delay(self) -> float:
        """Time from eligible-to-run to dispatch (time-shift shows here)."""
        eligible = max(self.submit_time, self.start_time_requested)
        return max(0.0, self.dispatch_time - eligible)

    @property
    def completion_latency(self) -> float:
        """Submit → finish latency."""
        return self.finish_time - self.submit_time

    @property
    def cross_region(self) -> bool:
        return self.region_submitted != self.region_executed


class TraceLog:
    """An append-only collection of :class:`CallTrace` with CSV round-trip."""

    def __init__(self) -> None:
        self._traces: List[CallTrace] = []

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self):
        return iter(self._traces)

    def add(self, trace: CallTrace) -> None:
        self._traces.append(trace)

    def completed(self) -> List[CallTrace]:
        return [t for t in self._traces if t.outcome == "ok"]

    def for_function(self, function: str) -> List[CallTrace]:
        return [t for t in self._traces if t.function == function]

    def digest(self) -> str:
        """SHA-256 over every call's lifecycle tuple, in arrival order.

        Bit-identical digests mean behaviorally identical runs; the speed
        and sweep benchmarks compare them across optimizations and across
        process boundaries.  The field tuple matches the historical
        ``bench_speed.trace_digest`` so committed baselines stay valid.
        """
        h = hashlib.sha256()
        for t in self._traces:
            h.update(repr((t.call_id, t.function, t.submit_time,
                           t.start_time_requested, t.dispatch_time,
                           t.finish_time, t.region_submitted,
                           t.region_executed, t.worker, t.outcome,
                           t.cpu_minstr, t.memory_mb, t.exec_time_s,
                           t.attempts)).encode())
        return h.hexdigest()

    def save_csv(self, path: Path) -> None:
        path = Path(path)
        names = [f.name for f in fields(CallTrace)]
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(names)
            for t in self._traces:
                writer.writerow([getattr(t, n) for n in names])

    @classmethod
    def load_csv(cls, path: Path) -> "TraceLog":
        log = cls()
        path = Path(path)
        float_fields = {"submit_time", "start_time_requested", "dispatch_time",
                        "finish_time", "cpu_minstr", "memory_mb", "exec_time_s"}
        int_fields = {"call_id", "criticality", "attempts"}
        with path.open() as fh:
            reader = csv.DictReader(fh)
            for row in reader:
                kwargs = {}
                for key, value in row.items():
                    if key in float_fields:
                        kwargs[key] = float(value)
                    elif key in int_fields:
                        kwargs[key] = int(value)
                    else:
                        kwargs[key] = value
                log.add(CallTrace(**kwargs))
        return log
