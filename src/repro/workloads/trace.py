"""Call-trace records: capture, summarize, save/load as CSV.

Benchmarks capture per-call traces so the analysis layer can rebuild the
paper's series (received vs executed, latency SLOs, deferral delay)
without re-running the simulation.
"""

from __future__ import annotations

import csv
import hashlib
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Iterable, List, Tuple

#: Modulus for the order-independent canonical digest: per-record
#: SHA-256 values summed mod 2^256.  Addition is commutative, so the
#: partial sums of per-shard trace logs combine to the same value no
#: matter how calls were distributed across shards.
_CANONICAL_MOD = 1 << 256


@dataclass(frozen=True)
class CallTrace:
    """Lifecycle timestamps and outcome of one function call."""

    call_id: int
    function: str
    trigger: str
    criticality: int
    quota_type: str
    submit_time: float
    start_time_requested: float
    dispatch_time: float
    finish_time: float
    region_submitted: str
    region_executed: str
    worker: str
    outcome: str            # "ok", "error", "throttled", "expired"
    cpu_minstr: float
    memory_mb: float
    exec_time_s: float
    attempts: int = 1

    @property
    def queueing_delay(self) -> float:
        """Time from eligible-to-run to dispatch (time-shift shows here)."""
        eligible = max(self.submit_time, self.start_time_requested)
        return max(0.0, self.dispatch_time - eligible)

    @property
    def completion_latency(self) -> float:
        """Submit → finish latency."""
        return self.finish_time - self.submit_time

    @property
    def cross_region(self) -> bool:
        return self.region_submitted != self.region_executed


def snapshot_call(call: Any, outcome_name: str) -> Tuple[Any, ...]:
    """The :class:`CallTrace` constructor tuple for a finished call.

    Duck-typed over :class:`repro.core.call.FunctionCall` (this module
    must not import ``repro.core``): any object with the call lifecycle
    attributes works.  Arena-backed calls provide a columnar fast path
    (``trace_snapshot``) that :meth:`TraceLog.add_call` prefers; this
    generic reader is the fallback for other call-like objects.
    """
    resources = call.resources or (0.0, 0.0, 0.0)
    spec = call.spec
    dispatch = call.dispatch_time
    finish = call.finish_time
    return (call.call_id, call.function_name, spec.trigger.value,
            call.criticality, spec.quota_type.value, call.submit_time,
            call.start_time,
            -1.0 if dispatch is None else dispatch,
            -1.0 if finish is None else finish,
            call.region_submitted, call.scheduler_region or "",
            call.worker_name or "", outcome_name,
            resources[0], resources[1], resources[2], call.attempts + 1)


def trace_from_call(call: Any, outcome_name: str) -> CallTrace:
    """Build a :class:`CallTrace` from a finished call object."""
    return CallTrace(*snapshot_call(call, outcome_name))


class TraceLog:
    """An append-only collection of :class:`CallTrace` with CSV round-trip.

    The write path is two-speed: :meth:`add` appends a pre-built
    :class:`CallTrace`, while :meth:`add_call` (the platform's per-call
    path) snapshots the call's fields into a plain constructor tuple
    and defers the 17-field dataclass construction until the log is
    first *read*.  Snapshotting at add time (rather than retaining the
    call object) is what lets the platform release the call's arena
    slot immediately after — the log never holds a view across its
    release point (simlint SL016).  ``digest()`` is the regression test
    that the deferred construction yields byte-identical traces.
    """

    def __init__(self) -> None:
        self._traces: List[CallTrace] = []
        #: Deferred CallTrace constructor tuples not yet built.
        self._pending: List[Tuple[Any, ...]] = []

    def __len__(self) -> int:
        return len(self._traces) + len(self._pending)

    def __iter__(self):
        self._materialize()
        return iter(self._traces)

    def add(self, trace: CallTrace) -> None:
        if self._pending:
            self._materialize()
        self._traces.append(trace)

    def add_call(self, call: Any, outcome_name: str) -> None:
        """Record a finished call, snapshotting its fields immediately."""
        snap = getattr(call, "trace_snapshot", None)
        self._pending.append(snap(outcome_name) if snap is not None
                             else snapshot_call(call, outcome_name))

    def _materialize(self) -> None:
        if self._pending:
            self._traces.extend(CallTrace(*t) for t in self._pending)
            self._pending.clear()

    def completed(self) -> List[CallTrace]:
        self._materialize()
        return [t for t in self._traces if t.outcome == "ok"]

    def for_function(self, function: str) -> List[CallTrace]:
        self._materialize()
        return [t for t in self._traces if t.function == function]

    def digest(self) -> str:
        """SHA-256 over every call's lifecycle tuple, in arrival order.

        Bit-identical digests mean behaviorally identical runs; the speed
        and sweep benchmarks compare them across optimizations and across
        process boundaries.  The field tuple matches the historical
        ``bench_speed.trace_digest`` so committed baselines stay valid.
        """
        self._materialize()
        h = hashlib.sha256()
        for t in self._traces:
            h.update(repr((t.call_id, t.function, t.submit_time,
                           t.start_time_requested, t.dispatch_time,
                           t.finish_time, t.region_submitted,
                           t.region_executed, t.worker, t.outcome,
                           t.cpu_minstr, t.memory_mb, t.exec_time_s,
                           t.attempts)).encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Order-independent canonical digest (repro.parsim parity checks)
    # ------------------------------------------------------------------
    def canonical_partial(self) -> Tuple[int, int]:
        """This log's contribution to the canonical digest.

        Returns ``(sum of per-record SHA-256 mod 2**256, record count)``
        over exactly the same 14-field tuples as :meth:`digest`.  Region
        shards ship this 40-byte pair across the process boundary
        instead of hundreds of thousands of trace rows; the coordinator
        folds partials with :meth:`combine_canonical`.
        """
        self._materialize()
        total = 0
        sha256 = hashlib.sha256
        for t in self._traces:
            rec = sha256(repr((t.call_id, t.function, t.submit_time,
                               t.start_time_requested, t.dispatch_time,
                               t.finish_time, t.region_submitted,
                               t.region_executed, t.worker, t.outcome,
                               t.cpu_minstr, t.memory_mb, t.exec_time_s,
                               t.attempts)).encode()).digest()
            total = (total + int.from_bytes(rec, "big")) % _CANONICAL_MOD
        return total, len(self._traces)

    @staticmethod
    def combine_canonical(partials: Iterable[Tuple[int, int]]) -> str:
        """Fold :meth:`canonical_partial` pairs into one canonical digest.

        The result depends only on the *multiset* of trace records, not
        on arrival order or shard assignment — which is exactly the
        parity property parallel mode must preserve: a serial run and an
        N-shard run of the same scenario yield the same multiset of
        per-call lifecycle tuples.
        """
        total = 0
        count = 0
        for partial, n in partials:
            total = (total + partial) % _CANONICAL_MOD
            count += n
        return hashlib.sha256(
            f"{count}:{total:064x}".encode()).hexdigest()

    def canonical_digest(self) -> str:
        """Order-independent digest of this log alone (see above)."""
        return TraceLog.combine_canonical([self.canonical_partial()])

    def save_csv(self, path: Path) -> None:
        self._materialize()
        path = Path(path)
        names = [f.name for f in fields(CallTrace)]
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(names)
            for t in self._traces:
                writer.writerow([getattr(t, n) for n in names])

    @classmethod
    def load_csv(cls, path: Path) -> "TraceLog":
        log = cls()
        path = Path(path)
        float_fields = {"submit_time", "start_time_requested", "dispatch_time",
                        "finish_time", "cpu_minstr", "memory_mb", "exec_time_s"}
        int_fields = {"call_id", "criticality", "attempts"}
        with path.open() as fh:
            reader = csv.DictReader(fh)
            for row in reader:
                kwargs = {}
                for key, value in row.items():
                    if key in float_fields:
                        kwargs[key] = float(value)
                    elif key in int_fields:
                        kwargs[key] = int(value)
                    else:
                        kwargs[key] = value
                log.add(CallTrace(**kwargs))
        return log
