"""Adoption-growth model for Figure 3.

Figure 3 shows daily XFaaS invocations growing ~50× over five years,
with a sharp inflection at the end of 2022 when Kafka-like data streams
began triggering functions.  The model is exponential organic growth
plus logistic step-ups for feature-launch events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

YEAR_DAYS = 365.0


@dataclass(frozen=True)
class LaunchEvent:
    """A feature launch multiplying steady-state volume."""

    day: float
    volume_multiplier: float
    ramp_days: float = 60.0

    def __post_init__(self) -> None:
        if self.volume_multiplier < 1.0:
            raise ValueError("volume_multiplier must be >= 1")
        if self.ramp_days <= 0:
            raise ValueError("ramp_days must be positive")

    def factor(self, day: float) -> float:
        """Logistic ramp from 1 to volume_multiplier around ``self.day``."""
        x = (day - self.day) / self.ramp_days
        logistic = 1.0 / (1.0 + math.exp(-4.0 * x))
        return 1.0 + (self.volume_multiplier - 1.0) * logistic


@dataclass(frozen=True)
class GrowthModel:
    """Daily invocation volume over time."""

    initial_daily_calls: float = 1.0
    organic_growth_per_year: float = 1.9
    launches: Tuple[LaunchEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.initial_daily_calls <= 0:
            raise ValueError("initial_daily_calls must be positive")
        if self.organic_growth_per_year <= 0:
            raise ValueError("organic_growth_per_year must be positive")

    def daily_calls(self, day: float) -> float:
        organic = self.initial_daily_calls * (
            self.organic_growth_per_year ** (day / YEAR_DAYS))
        factor = 1.0
        for launch in self.launches:
            factor *= launch.factor(day)
        return organic * factor

    def series(self, days: int, step_days: float = 30.0) -> List[Tuple[float, float]]:
        out = []
        d = 0.0
        while d <= days:
            out.append((d, self.daily_calls(d)))
            d += step_days
        return out

    def growth_factor(self, days: int) -> float:
        """Total growth multiple over the horizon (paper: ~50× in 5 years)."""
        return self.daily_calls(days) / self.daily_calls(0.0)


def figure3_model() -> GrowthModel:
    """Five-year growth reaching ~50×, with the late-2022 stream launch.

    Organic growth ~1.9×/year compounds to ~25×; the data-stream trigger
    launch in the final year (day ~1550 of 1825) doubles volume, landing
    the total near the paper's 50×.
    """
    return GrowthModel(
        initial_daily_calls=1.0,
        organic_growth_per_year=1.9,
        launches=(LaunchEvent(day=1550.0, volume_multiplier=2.1,
                              ramp_days=45.0),),
    )
