"""Diurnal arrival-rate curves with a controllable peak-to-trough ratio.

Figure 2 of the paper shows received function calls peaking at 4.3× the
trough, with the global peak at *midnight* — a spike caused by Hive-like
big-data pipelines publishing tables around midnight (§2.2).
:class:`DiurnalRate` reproduces that shape: a day/night sinusoid (whose
own peak-to-trough is ``day_ratio``, Azure-like ~2×) plus a Gaussian
midnight burst that lifts the global maximum to ``peak_to_trough`` ×
trough.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

DAY_S = 86_400.0


@dataclass(frozen=True)
class DiurnalRate:
    """Time-varying arrival rate (calls/second).

    Parameters
    ----------
    base_rate:
        Mean rate of the sinusoidal component over a day.
    peak_to_trough:
        Ratio of the global maximum (at midnight) to the trough.
        Figure 2 reports 4.3.
    day_ratio:
        Peak-to-trough of the smooth daytime sinusoid alone (Shahrad et
        al. report ~2 for Azure Functions; the paper cites this).
    midnight_spike_width_s:
        Standard deviation of the Gaussian midnight burst.
    peak_hour:
        Hour of day (0–24) where the sinusoid peaks.
    """

    base_rate: float = 100.0
    peak_to_trough: float = 4.3
    day_ratio: float = 2.0
    midnight_spike_width_s: float = 2700.0
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.day_ratio < 1.0:
            raise ValueError(f"day_ratio must be >= 1, got {self.day_ratio}")
        if self.peak_to_trough < self.day_ratio:
            raise ValueError("peak_to_trough must be >= day_ratio "
                             "(the midnight spike only adds load)")
        if self.midnight_spike_width_s <= 0:
            raise ValueError("midnight_spike_width_s must be positive")

    # ------------------------------------------------------------------
    @property
    def trough(self) -> float:
        # Sinusoid mean = (trough + sine_peak)/2 = base_rate.
        return 2.0 * self.base_rate / (1.0 + self.day_ratio)

    @property
    def sine_peak(self) -> float:
        return self.trough * self.day_ratio

    @property
    def global_peak(self) -> float:
        return self.trough * self.peak_to_trough

    def _sine(self, tod: float) -> float:
        phase = 2.0 * math.pi * (tod / DAY_S - self.peak_hour / 24.0)
        return self.trough + (self.sine_peak - self.trough) * 0.5 * (
            1.0 + math.cos(phase))

    @property
    def _spike_height(self) -> float:
        # Lift the midnight value exactly to the global peak.
        return max(0.0, self.global_peak - self._sine(0.0))

    def rate(self, t: float) -> float:
        """Arrival rate (calls/s) at simulation time ``t`` seconds."""
        tod = t % DAY_S
        dist = min(tod, DAY_S - tod)
        spike = self._spike_height * math.exp(
            -0.5 * (dist / self.midnight_spike_width_s) ** 2)
        return self._sine(tod) + spike

    def mean_rate(self, t_start: float = 0.0, t_end: float = DAY_S,
                  step: float = 60.0) -> float:
        """Numeric mean of the rate over a window (for capacity sizing)."""
        if t_end <= t_start:
            raise ValueError("t_end must exceed t_start")
        n, total, t = 0, 0.0, t_start
        while t < t_end:
            total += self.rate(t)
            n += 1
            t += step
        return total / n


@dataclass(frozen=True)
class ConstantRate:
    """A flat arrival rate (useful for controlled experiments)."""

    base_rate: float = 100.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")

    def rate(self, t: float) -> float:
        return self.base_rate

    def mean_rate(self, t_start: float = 0.0, t_end: float = DAY_S,
                  step: float = 60.0) -> float:
        return self.base_rate
