"""Per-trigger resource distributions fitted to the paper's Table 3.

Table 3 reports P10/P50/P90 (and a P99 tail discussed in §3.3) of CPU
usage, memory usage, and execution time per trigger category:

* **Queue-triggered** — CPU 20.40 / 221.80 / 7,611 MIPS; long CPU tail
  (Morphing-style minutes-long transformations).
* **Event-triggered** — CPU 0.54 / 11.36 / 189 MIPS; high frequency,
  short executions (Falco, Notification System).
* **Timer-triggered** — CPU 0.37 / 576.00 / 44,839 MIPS; execution time
  from 24 ms at P10 to ~11 minutes at P99 (§3.3).

Aggregate constraints from §3.3 anchor memory and execution time:
60%/92% of functions below 16 MB/256 MB and ~2% above 1 GB; 33%/94% of
calls within 1 s/60 s and ~1% above 5 minutes.

Each category's distributions are lognormals fitted through two
published percentile points; the test suite checks the sampled
percentiles land near the paper's columns.
"""

from __future__ import annotations

from typing import Dict

from .spec import LogNormal, ResourceProfile, TriggerType

#: CPU millions-of-instructions per call, fitted through (P10, P90) of
#: Table 3's CPU column.
_CPU = {
    TriggerType.QUEUE: LogNormal.from_percentiles(
        (10, 20.40), (90, 7611.0), lo=0.01, hi=5.0e6),
    TriggerType.EVENT: LogNormal.from_percentiles(
        (10, 0.54), (90, 189.0), lo=0.01, hi=1.0e5),
    TriggerType.TIMER: LogNormal.from_percentiles(
        (10, 0.37), (90, 44_839.0), lo=0.01, hi=5.0e6),
}

#: Peak memory MB per call.  Queue-triggered skews larger (long-running
#: data transformations); event-triggered skews small.  All three mix to
#: the §3.3 aggregate anchors.
_MEMORY = {
    TriggerType.QUEUE: LogNormal.from_percentiles(
        (50, 32.0), (92, 512.0), lo=1.0, hi=48 * 1024.0),
    TriggerType.EVENT: LogNormal.from_percentiles(
        (60, 16.0), (92, 128.0), lo=1.0, hi=16 * 1024.0),
    TriggerType.TIMER: LogNormal.from_percentiles(
        (50, 24.0), (92, 384.0), lo=1.0, hi=32 * 1024.0),
}

#: Wall-clock execution seconds per call.
_EXEC = {
    # Long tail past 10 minutes for queue-triggered work (§3.3: 1% of
    # calls exceed 5 minutes; execution tops out around tens of minutes).
    TriggerType.QUEUE: LogNormal.from_percentiles(
        (33, 1.5), (94, 90.0), lo=0.005, hi=1800.0),
    # Event-triggered calls are sub-second heavy (Falco's 15 s SLO).
    TriggerType.EVENT: LogNormal.from_percentiles(
        (50, 0.25), (94, 5.0), lo=0.002, hi=600.0),
    # Timer: 24 ms at P10 up to ~11 minutes at P99 (§3.3).
    TriggerType.TIMER: LogNormal.from_percentiles(
        (10, 0.024), (99, 660.0), lo=0.005, hi=1800.0),
}

TRIGGER_PROFILES: Dict[TriggerType, ResourceProfile] = {
    trigger: ResourceProfile(cpu_minstr=_CPU[trigger],
                             memory_mb=_MEMORY[trigger],
                             exec_time_s=_EXEC[trigger])
    for trigger in TriggerType
}


def profile_for(trigger: TriggerType) -> ResourceProfile:
    """The Table 3-fitted resource profile for a trigger category."""
    return TRIGGER_PROFILES[trigger]
