"""Workload population and arrival generation.

Builds a population of :class:`FunctionSpec` matching the paper's
published mix (Table 1 category shares, Table 3 resource shapes, §6 team
skew), assigns each function an arrival rate and a rate *shape* (diurnal
with the Figure 2 midnight spike, flat, or Figure 4-style spikes), and
drives submissions into a platform via a tick-based non-homogeneous
Poisson process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from ..sim.kernel import Simulator
from ..sim.rng import RngStream
from .categories import CALL_SHARE, split_functions
from .distributions import profile_for
from .diurnal import DiurnalRate
from .spec import Criticality, FunctionSpec, QuotaType, RetryPolicy, TriggerType
from .spikes import SpikeTrain

DAY_S = 86_400.0


class RateShape(Protocol):
    """Anything exposing ``rate(t) -> calls/s``."""

    def rate(self, t: float) -> float: ...


@dataclass
class FunctionLoad:
    """One function's arrival model: mean rate × normalized shape."""

    spec: FunctionSpec
    mean_rate: float
    shape: RateShape
    shape_mean: float
    #: Fraction of submissions that carry a future execution start time
    #: (§4.6: callers spreading load predictably).
    future_start_fraction: float = 0.0
    future_start_horizon_s: float = 4 * 3600.0

    def rate(self, t: float) -> float:
        if self.shape_mean <= 0:
            return 0.0
        return self.mean_rate * self.shape.rate(t) / self.shape_mean


@dataclass
class Population:
    """A set of function loads plus lookup helpers."""

    loads: List[FunctionLoad]

    @property
    def specs(self) -> List[FunctionSpec]:
        return [l.spec for l in self.loads]

    def by_name(self, name: str) -> FunctionLoad:
        for l in self.loads:
            if l.spec.name == name:
                return l
        raise KeyError(f"unknown function {name!r}")

    def total_mean_rate(self) -> float:
        return sum(l.mean_rate for l in self.loads)


# Criticality mix: most functions are NORMAL; a small critical core.
_CRITICALITY_WEIGHTS: Sequence[Tuple[Criticality, float]] = (
    (Criticality.LOW, 0.20),
    (Criticality.NORMAL, 0.55),
    (Criticality.HIGH, 0.20),
    (Criticality.CRITICAL, 0.05),
)

# Deadline choices per trigger (seconds): queue-triggered spans seconds
# to 24 h (§2.4); event-triggered skews tight (Falco-style SLOs).
_DEADLINES: Dict[TriggerType, Sequence[Tuple[float, float]]] = {
    TriggerType.QUEUE: ((60.0, 0.3), (900.0, 0.3), (3600.0, 0.2),
                        (6 * 3600.0, 0.1), (DAY_S, 0.1)),
    TriggerType.EVENT: ((15.0, 0.4), (60.0, 0.4), (300.0, 0.2)),
    TriggerType.TIMER: ((300.0, 0.3), (3600.0, 0.4), (DAY_S, 0.3)),
}


def _zipf_shares(n: int, s: float, rng: RngStream) -> List[float]:
    """Zipf weights over n items with randomized rank assignment."""
    raw = [1.0 / (k ** s) for k in range(1, n + 1)]
    rng.shuffle(raw)
    total = sum(raw)
    return [w / total for w in raw]


def build_population(n_functions: int = 120,
                     total_rate: float = 200.0,
                     n_teams: int = 25,
                     opportunistic_fraction: float = 0.35,
                     quota_headroom: float = 1.5,
                     diurnal: Optional[DiurnalRate] = None,
                     seed_stream: Optional[RngStream] = None,
                     rate_skew: float = 1.1,
                     core_mips: float = 4000.0) -> Population:
    """Build a Table 1/Table 3-shaped population.

    Parameters
    ----------
    total_rate:
        Aggregate mean submissions/s across all functions (scale knob).
    opportunistic_fraction:
        Fraction of *delay-tolerant-eligible* functions given
        opportunistic quota (the paper is actively migrating functions
        to opportunistic, §5.3).
    quota_headroom:
        Quota = mean CPU demand × headroom; >1 leaves slack so steady
        traffic is not throttled, while spikes above headroom are.
    """
    rng = seed_stream or RngStream("population", 0)
    counts = split_functions(n_functions)
    # Mild Zipf for team assignment within small populations; the exact
    # §6 concentration curve lives in categories.team_weights and is
    # exercised by the team-skew benchmark at realistic team counts.
    weights = _zipf_shares(n_teams, 1.1, rng)
    team_names = [f"team-{i:02d}" for i in range(n_teams)]
    diurnal = diurnal or DiurnalRate(base_rate=1.0)
    diurnal_mean = diurnal.mean_rate()

    loads: List[FunctionLoad] = []
    for trigger in TriggerType:
        n_cat = counts.count_for(trigger)
        cat_rate = total_rate * CALL_SHARE[trigger]
        shares = _zipf_shares(n_cat, rate_skew, rng)
        profile = profile_for(trigger)
        mean_cpu = _mean_cpu_estimate(profile, rng, core_mips)
        for i in range(n_cat):
            team = rng.weighted_choice(team_names, weights)
            criticality = rng.weighted_choice(
                [c for c, _ in _CRITICALITY_WEIGHTS],
                [w for _, w in _CRITICALITY_WEIGHTS])
            deadline = rng.weighted_choice(
                [d for d, _ in _DEADLINES[trigger]],
                [w for _, w in _DEADLINES[trigger]])
            mean_rate = cat_rate * shares[i]
            quota_type = QuotaType.RESERVED
            if deadline >= 3600.0 and rng.random() < opportunistic_fraction:
                quota_type = QuotaType.OPPORTUNISTIC
            quota = max(mean_rate * mean_cpu * quota_headroom, 1.0)
            spec = FunctionSpec(
                name=f"{trigger.value}/fn-{i:04d}",
                team=team,
                trigger=trigger,
                criticality=criticality,
                quota_type=quota_type,
                quota_minstr_per_s=quota,
                deadline_s=deadline,
                profile=profile,
                retry_policy=RetryPolicy(),
                # Code + JIT + warm-cache footprint varies per function;
                # this is what locality groups save worker memory on.
                code_size_mb=rng.uniform(5.0, 40.0),
            )
            load = FunctionLoad(
                spec=spec,
                mean_rate=mean_rate,
                shape=diurnal,
                shape_mean=diurnal_mean,
                future_start_fraction=0.1 if spec.is_delay_tolerant else 0.0,
            )
            loads.append(load)
    return Population(loads=loads)


def _mean_cpu_estimate(profile, rng: RngStream, core_mips: float,
                       n: int = 200) -> float:
    """Mean per-call CPU for quota/capacity sizing.

    Uses the analytic lognormal mean — Monte-Carlo estimates of these
    heavy-tailed distributions are dominated by whether the top
    percentile happened to be drawn.
    """
    return profile.mean_cpu(core_mips)


def estimate_demand_minstr(population: Population,
                           core_mips: float = 4000.0,
                           samples: int = 300) -> float:
    """Mean CPU demand (million instr/s) of the whole population.

    Used with :func:`repro.cluster.size_topology_for_utilization` to
    provision a fleet at the paper's 66%-utilization operating point.
    """
    rng = RngStream("demand-estimate", 0)
    total = 0.0
    seen = {}
    for load in population.loads:
        profile = load.spec.profile
        key = id(profile)
        if key not in seen:
            seen[key] = _mean_cpu_estimate(profile, rng, core_mips, samples)
        total += load.mean_rate * seen[key]
    return total


def attach_spike(population: Population, function_name: str,
                 spike: SpikeTrain, quota_headroom: float = 1.5,
                 core_mips: float = 4000.0) -> None:
    """Replace one function's shape with a spike train (Fig 4 clients).

    The function's ``mean_rate`` is re-derived from the spike train's
    daily volume, and its quota is re-sized to match (the owner of a
    bursty function still provisions quota for its *average* volume —
    that mismatch between burst rate and quota is exactly what defers
    the burst's execution across the day).
    """
    import dataclasses
    load = population.by_name(function_name)
    daily = spike.total_calls(0.0, DAY_S)
    load.shape = spike
    load.mean_rate = daily / DAY_S
    load.shape_mean = daily / DAY_S if daily > 0 else 1.0
    mean_cpu = load.spec.profile.mean_cpu(core_mips)
    quota = max(load.mean_rate * mean_cpu * quota_headroom, 1.0)
    load.spec = dataclasses.replace(load.spec, quota_minstr_per_s=quota)


SubmitFn = Callable[[FunctionSpec, float], None]


class ArrivalGenerator:
    """Tick-driven non-homogeneous Poisson submissions for a population.

    Every ``tick_s`` the generator draws Poisson(rate·tick) arrivals per
    function at a uniform offset inside the tick.
    ``submit_fn(spec, start_delay_s)`` is called at each arrival time;
    ``start_delay_s > 0`` means the caller requested a future execution
    start time (§4.6).

    **Lazy arrival streaming**: the tick's arrivals are *not*
    pre-materialized as one scheduled event each.  They are sorted into
    a pending list and streamed — only the *next* arrival lives in the
    kernel's event queue; its callback submits, then arms the one after
    it.  Peak queue size drops from O(arrivals per tick) to O(1) per
    generator while the RNG draw order, the arrival timestamps, and the
    submission order stay bit-identical to the eager version (the sort
    key ``(time, draw index)`` reproduces the heap's ``(time, seq)``
    tiebreak exactly).
    """

    def __init__(self, sim: Simulator, population: Population,
                 submit_fn: SubmitFn, tick_s: float = 10.0,
                 stop_at: float = DAY_S, rng_name: str = "arrivals") -> None:
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {tick_s}")
        self.sim = sim
        self.population = population
        self.submit_fn = submit_fn
        self.tick_s = tick_s
        self.stop_at = stop_at
        self.rng = sim.rng.stream(rng_name)
        self.submitted = 0
        #: Current tick's remaining arrivals: (abs time, draw idx, load).
        self._pending: List[Tuple[float, int, FunctionLoad]] = []
        self._next_idx = 0
        self._task = sim.every(tick_s, self._tick)

    def _tick(self) -> None:
        now = self.sim.now
        if now >= self.stop_at:
            self._task.cancel()
            return
        pending: List[Tuple[float, int, FunctionLoad]] = []
        uniform = self.rng.uniform
        tick_s = self.tick_s
        midpoint = now + tick_s / 2.0
        for load in self.population.loads:
            # Rate at the tick midpoint approximates the integral.
            rate = load.rate(midpoint)
            if rate <= 0:
                continue
            n = self.rng.poisson(rate * tick_s)
            for _ in range(n):
                pending.append((now + uniform(0.0, tick_s), len(pending), load))
        pending.sort()
        self._pending = pending
        self._next_idx = 0
        self._arm_next()

    def _arm_next(self) -> None:
        i = self._next_idx
        pending = self._pending
        if i >= len(pending):
            self._pending = []
            return
        self._next_idx = i + 1
        time, _, load = pending[i]
        self.sim.call_at(time, lambda: self._fire(load))

    def _fire(self, load: FunctionLoad) -> None:
        delay = 0.0
        if load.future_start_fraction > 0 and \
                self.rng.random() < load.future_start_fraction:
            delay = self.rng.uniform(0.0, load.future_start_horizon_s)
        self.submitted += 1
        self.submit_fn(load.spec, delay)
        self._arm_next()

    def cancel(self) -> None:
        self._task.cancel()
