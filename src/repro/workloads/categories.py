"""Trigger-category mix (Table 1) and team-skew model (§6).

Table 1 (one month of production):

====================  ==========  ===============  =============
Trigger               Functions   Function calls   Compute usage
====================  ==========  ===============  =============
Queue-triggered       89%         15%              86%
Event-triggered       8%          85%              14%
Timer-triggered       3%          <1%              <1%
====================  ==========  ===============  =============

§6 reports extreme team skew: one team consumes 10% of capacity, 0.4%
of teams consume 50%, and 2.6% consume 90%.  :func:`team_weights`
produces a Zipf-like weight vector with that concentration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .spec import TriggerType

#: Fraction of *registered functions* per trigger category (Table 1).
FUNCTION_SHARE: Dict[TriggerType, float] = {
    TriggerType.QUEUE: 0.89,
    TriggerType.EVENT: 0.08,
    TriggerType.TIMER: 0.03,
}

#: Fraction of *invocations* per trigger category (Table 1).
CALL_SHARE: Dict[TriggerType, float] = {
    TriggerType.QUEUE: 0.15,
    TriggerType.EVENT: 0.85,
    TriggerType.TIMER: 0.005,
}

#: Fraction of *compute usage* per trigger category (Table 1).
COMPUTE_SHARE: Dict[TriggerType, float] = {
    TriggerType.QUEUE: 0.86,
    TriggerType.EVENT: 0.14,
    TriggerType.TIMER: 0.005,
}

#: The paper's one-month unique-function count (§3.1); benches scale this.
PAPER_UNIQUE_FUNCTIONS = 18_377


@dataclass(frozen=True)
class CategoryCounts:
    """Integer function counts per category for a population of size n."""

    queue: int
    event: int
    timer: int

    @property
    def total(self) -> int:
        return self.queue + self.event + self.timer

    def count_for(self, trigger: TriggerType) -> int:
        return {TriggerType.QUEUE: self.queue,
                TriggerType.EVENT: self.event,
                TriggerType.TIMER: self.timer}[trigger]


def split_functions(n_functions: int) -> CategoryCounts:
    """Split ``n_functions`` into categories per Table 1 (each >= 1)."""
    if n_functions < 3:
        raise ValueError(
            f"need at least 3 functions for all categories, got {n_functions}")
    queue = max(1, round(n_functions * FUNCTION_SHARE[TriggerType.QUEUE]))
    event = max(1, round(n_functions * FUNCTION_SHARE[TriggerType.EVENT]))
    timer = max(1, n_functions - queue - event)
    # Keep the total exact by adjusting the dominant category.
    queue = n_functions - event - timer
    return CategoryCounts(queue=queue, event=event, timer=timer)


#: §6 Lorenz anchors: (fraction of teams, cumulative capacity fraction).
#: "a single team consumes 10% … 0.4% and 2.6% of the teams consume 50%
#: and 90% of the total capacity, respectively."  The single-team anchor
#: is expressed for the paper's ~2,000-team population (1/2000 = 0.05%).
TEAM_LORENZ_ANCHORS = ((0.0005, 0.10), (0.004, 0.50), (0.026, 0.90),
                       (1.0, 1.0))


def _lorenz(x: float) -> float:
    """Piecewise log-linear interpolation through the §6 anchors."""
    import math
    if x <= 0.0:
        return 0.0
    prev_x, prev_y = 0.0, 0.0
    for ax, ay in TEAM_LORENZ_ANCHORS:
        if x <= ax:
            if prev_x == 0.0:
                # First segment: power-law from the origin through the
                # first anchor, L(x) = ay * (x/ax)^alpha with alpha < 1.
                alpha = 0.5
                return ay * (x / ax) ** alpha
            frac = (math.log(x) - math.log(prev_x)) / (
                math.log(ax) - math.log(prev_x))
            return prev_y + (ay - prev_y) * frac
        prev_x, prev_y = ax, ay
    return 1.0


def team_weights(n_teams: int) -> List[float]:
    """Capacity weights over teams matching the §6 concentration.

    Weights follow the Lorenz curve through the published anchors
    (0.05% of teams → 10%, 0.4% → 50%, 2.6% → 90% of capacity).  For
    populations of ~2,000 teams the three statistics reproduce exactly;
    smaller populations get a proportionally compressed version.
    """
    if n_teams < 1:
        raise ValueError(f"n_teams must be >= 1, got {n_teams}")
    weights = []
    prev = 0.0
    for i in range(1, n_teams + 1):
        cum = _lorenz(i / n_teams)
        weights.append(max(cum - prev, 0.0))
        prev = cum
    total = sum(weights)
    return [w / total for w in weights]


def capacity_concentration(weights: List[float],
                           capacity_fraction: float) -> float:
    """Smallest fraction of teams that covers ``capacity_fraction`` of weight.

    Reproduces the §6 statistic: e.g. concentration(weights, 0.5) ≈ 0.004
    means 0.4% of teams consume 50% of capacity.
    """
    if not 0 < capacity_fraction <= 1:
        raise ValueError("capacity_fraction must be in (0, 1]")
    ordered = sorted(weights, reverse=True)
    acc = 0.0
    for i, w in enumerate(ordered, start=1):
        acc += w
        if acc >= capacity_fraction - 1e-12:
            return i / len(ordered)
    return 1.0
