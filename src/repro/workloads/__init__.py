"""Workload models: function specs, Table 1–3 shapes, arrival processes."""

from .categories import (
    CALL_SHARE,
    COMPUTE_SHARE,
    FUNCTION_SHARE,
    PAPER_UNIQUE_FUNCTIONS,
    CategoryCounts,
    capacity_concentration,
    split_functions,
    team_weights,
)
from .distributions import TRIGGER_PROFILES, profile_for
from .diurnal import ConstantRate, DiurnalRate
from .examples import (
    WorkloadExample,
    all_examples,
    falco,
    morphing_framework,
    notification_system,
    productivity_bot,
    recommendation_system,
    table2_rows,
)
from .generator import (
    ArrivalGenerator,
    FunctionLoad,
    Population,
    attach_spike,
    build_population,
    estimate_demand_minstr,
)
from .growth import GrowthModel, LaunchEvent, figure3_model
from .rare import build_rare_population, rare_share
from .spec import (
    DAY_S,
    DEFAULT_PROFILE,
    Criticality,
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
    TriggerType,
    spread_spec,
)
from .spikes import Burst, SpikeTrain, figure4_spike
from .trace import CallTrace, TraceLog

__all__ = [
    "ArrivalGenerator",
    "Burst",
    "CALL_SHARE",
    "COMPUTE_SHARE",
    "CallTrace",
    "CategoryCounts",
    "ConstantRate",
    "Criticality",
    "DAY_S",
    "DEFAULT_PROFILE",
    "DiurnalRate",
    "FUNCTION_SHARE",
    "FunctionLoad",
    "FunctionSpec",
    "GrowthModel",
    "LaunchEvent",
    "LogNormal",
    "PAPER_UNIQUE_FUNCTIONS",
    "Population",
    "QuotaType",
    "ResourceProfile",
    "RetryPolicy",
    "SpikeTrain",
    "TRIGGER_PROFILES",
    "TraceLog",
    "TriggerType",
    "WorkloadExample",
    "all_examples",
    "attach_spike",
    "build_population",
    "build_rare_population",
    "rare_share",
    "estimate_demand_minstr",
    "capacity_concentration",
    "falco",
    "figure3_model",
    "figure4_spike",
    "morphing_framework",
    "notification_system",
    "productivity_bot",
    "profile_for",
    "recommendation_system",
    "split_functions",
    "spread_spec",
    "table2_rows",
]
