"""The five example workloads of §3.2 / Table 2.

Each workload is a small family of functions with characteristic
resource ranges:

* **Recommendation System** — event-triggered, async friend-recommendation
  generation; moderate CPU, seconds-scale runs, user-event driven.
* **Falco** — logging platform; event-triggered, very high frequency,
  tiny CPU, SLO of 15 s mean / 60 s P99 execution.
* **Productivity Bot** — rule automations on events like code deploys;
  low volume, short runs.
* **Notification System** — timer-scheduled campaigns selecting target
  users and sending notifications; bursty at preset times.
* **Morphing Framework** — programmatically generated *ephemeral*
  functions doing data transformations; minutes-long, orders of
  magnitude more CPU than ordinary functions (§3.2), memory grows until
  completion — the reason locality groups spread them round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .spec import (
    Criticality,
    FunctionSpec,
    LogNormal,
    QuotaType,
    ResourceProfile,
    RetryPolicy,
    TriggerType,
)


@dataclass(frozen=True)
class WorkloadExample:
    """A named §3.2 workload: its functions plus a nominal rate share."""

    name: str
    specs: Tuple[FunctionSpec, ...]
    #: Mean invocations/s across the family at scale=1.
    nominal_rate: float


def _profile(cpu_lo: float, cpu_hi: float, mem_lo: float, mem_hi: float,
             exec_lo: float, exec_hi: float) -> ResourceProfile:
    """Profile whose P10–P90 spans roughly [lo, hi] per Table 2 ranges."""
    return ResourceProfile(
        cpu_minstr=LogNormal.from_percentiles((10, cpu_lo), (90, cpu_hi),
                                              lo=cpu_lo / 10),
        memory_mb=LogNormal.from_percentiles((10, mem_lo), (90, mem_hi),
                                             lo=1.0, hi=48 * 1024.0),
        exec_time_s=LogNormal.from_percentiles((10, exec_lo), (90, exec_hi),
                                               lo=exec_lo / 10, hi=3600.0),
    )


def recommendation_system(n_functions: int = 4) -> WorkloadExample:
    """Friend-recommendation regeneration on user events (async)."""
    profile = _profile(50.0, 5_000.0, 32.0, 512.0, 0.5, 20.0)
    specs = tuple(
        FunctionSpec(
            name=f"recsys/regen-{i}", team="recsys",
            trigger=TriggerType.EVENT, criticality=Criticality.HIGH,
            quota_type=QuotaType.RESERVED, quota_minstr_per_s=2.0e6,
            deadline_s=300.0, profile=profile,
            downstream=(("tao", 3),))
        for i in range(n_functions))
    return WorkloadExample("recommendation-system", specs, nominal_rate=40.0)


def falco(n_functions: int = 3) -> WorkloadExample:
    """Event logging; SLO: execute within 15 s mean, 60 s at P99."""
    profile = _profile(0.5, 20.0, 4.0, 64.0, 0.02, 1.0)
    specs = tuple(
        FunctionSpec(
            name=f"falco/log-{i}", team="falco",
            trigger=TriggerType.EVENT, criticality=Criticality.HIGH,
            quota_type=QuotaType.RESERVED, quota_minstr_per_s=1.0e6,
            deadline_s=15.0, profile=profile,
            retry_policy=RetryPolicy(max_attempts=5, retry_delay_s=1.0))
        for i in range(n_functions))
    return WorkloadExample("falco", specs, nominal_rate=300.0)


def productivity_bot(n_functions: int = 5) -> WorkloadExample:
    """Rule automations (e.g. message on code deploy)."""
    profile = _profile(5.0, 200.0, 8.0, 128.0, 0.1, 5.0)
    specs = tuple(
        FunctionSpec(
            name=f"prodbot/rule-{i}", team="prodbot",
            trigger=TriggerType.EVENT, criticality=Criticality.NORMAL,
            quota_type=QuotaType.RESERVED, quota_minstr_per_s=5.0e5,
            deadline_s=60.0, profile=profile)
        for i in range(n_functions))
    return WorkloadExample("productivity-bot", specs, nominal_rate=5.0)


def notification_system(n_functions: int = 3) -> WorkloadExample:
    """Scheduled notification campaigns (SMS/email/push)."""
    profile = _profile(20.0, 2_000.0, 16.0, 256.0, 0.2, 30.0)
    specs = tuple(
        FunctionSpec(
            name=f"notify/campaign-{i}", team="notifications",
            trigger=TriggerType.TIMER, criticality=Criticality.NORMAL,
            quota_type=QuotaType.OPPORTUNISTIC, quota_minstr_per_s=1.0e6,
            deadline_s=86_400.0, profile=profile,
            downstream=(("tao", 1),))
        for i in range(n_functions))
    return WorkloadExample("notification-system", specs, nominal_rate=15.0)


def morphing_framework(n_functions: int = 6) -> WorkloadExample:
    """Ephemeral data-transformation functions: minutes-long, CPU-heavy."""
    profile = _profile(5.0e5, 5.0e6, 1024.0, 16_384.0, 60.0, 600.0)
    specs = tuple(
        FunctionSpec(
            name=f"morphing/xform-{i}", team="morphing",
            trigger=TriggerType.QUEUE, criticality=Criticality.LOW,
            quota_type=QuotaType.OPPORTUNISTIC, quota_minstr_per_s=2.0e7,
            deadline_s=86_400.0, profile=profile, ephemeral=True,
            code_size_mb=20.0)
        for i in range(n_functions))
    return WorkloadExample("morphing-framework", specs, nominal_rate=0.5)


def all_examples() -> List[WorkloadExample]:
    """All five §3.2 workloads at their default sizes."""
    return [recommendation_system(), falco(), productivity_bot(),
            notification_system(), morphing_framework()]


def table2_rows(samples_per_spec: int = 500, seed: int = 7) -> List[tuple]:
    """Sampled (workload, cpu lo–hi, mem lo–hi, exec lo–hi) rows (Table 2).

    Ranges are the min/max of per-function P10/P90 estimates, matching
    Table 2's "minimum and maximum across the workload's functions".
    """
    from ..sim.rng import RngStream
    rows = []
    for example in all_examples():
        cpu_vals, mem_vals, exec_vals = [], [], []
        for spec in example.specs:
            rng = RngStream(f"table2-{spec.name}", seed)
            for _ in range(samples_per_spec):
                cpu, mem, exec_s = spec.profile.sample(rng)
                cpu_vals.append(cpu)
                mem_vals.append(mem)
                exec_vals.append(exec_s)
        cpu_vals.sort(), mem_vals.sort(), exec_vals.sort()

        def lo(v):
            return v[int(0.1 * len(v))]

        def hi(v):
            return v[int(0.9 * len(v))]
        rows.append((example.name,
                     lo(cpu_vals), hi(cpu_vals),
                     lo(mem_vals), hi(mem_vals),
                     lo(exec_vals), hi(exec_vals)))
    return rows
