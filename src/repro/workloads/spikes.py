"""Spiky-client arrival processes.

Figure 4 of the paper shows a single function receiving ~20 million
calls inside a 15-minute window, which XFaaS then executes smoothly over
many hours.  :class:`SpikeTrain` models such clients: near-zero
background rate punctuated by rectangular bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

DAY_S = 86_400.0


@dataclass(frozen=True)
class Burst:
    """One rectangular burst of calls."""

    start_s: float
    duration_s: float
    total_calls: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.total_calls < 0:
            raise ValueError(f"total_calls must be >= 0, got {self.total_calls}")

    @property
    def rate(self) -> float:
        return self.total_calls / self.duration_s

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class SpikeTrain:
    """Background rate plus a list of bursts; rate(t) sums active bursts."""

    background_rate: float = 0.0
    bursts: Tuple[Burst, ...] = ()

    def __post_init__(self) -> None:
        if self.background_rate < 0:
            raise ValueError("background_rate must be >= 0")

    def rate(self, t: float) -> float:
        total = self.background_rate
        for b in self.bursts:
            if b.start_s <= t < b.end_s:
                total += b.rate
        return total

    def total_calls(self, t_start: float = 0.0, t_end: float = DAY_S) -> float:
        """Expected calls over a window (bursts clipped to the window)."""
        total = self.background_rate * max(0.0, t_end - t_start)
        for b in self.bursts:
            overlap = min(b.end_s, t_end) - max(b.start_s, t_start)
            if overlap > 0:
                total += b.rate * overlap
        return total


def figure4_spike(scale: float = 1.0, start_s: float = 6 * 3600.0) -> SpikeTrain:
    """The Figure 4 workload: ~20 M calls within a 15-minute window.

    ``scale`` shrinks the volume for laptop-scale simulation while
    preserving the shape (scale=1.0 is the paper's 20 M; benches use
    scale≈1e-4 → 2,000 calls in 15 minutes).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return SpikeTrain(
        background_rate=0.0,
        bursts=(Burst(start_s=start_s, duration_s=15 * 60.0,
                      total_calls=20.0e6 * scale),),
    )
