"""Rare-function populations (the §1 motivation).

The paper quotes Shahrad et al.'s Azure study: "81% of the applications
are invoked once per minute or less on average.  This suggests that the
cost of keeping these applications warm, relative to their total
execution (billable) time, can be prohibitively high."

:func:`build_rare_population` produces exactly that world: a large set
of functions whose individual rates sit at or below one invocation per
minute (log-uniformly spread down to one per hour), which is the regime
where per-function warm containers waste almost all of their memory-time
and XFaaS's shared universal workers win.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..sim.rng import RngStream
from .diurnal import ConstantRate
from .generator import FunctionLoad, Population
from .spec import FunctionSpec, LogNormal, ResourceProfile


def _light_profile() -> ResourceProfile:
    """A typical small app: tens of M instr, ~100 MB, sub-second runs."""
    return ResourceProfile(
        cpu_minstr=LogNormal.from_percentiles((10, 5.0), (90, 100.0),
                                              lo=0.5),
        memory_mb=LogNormal.from_percentiles((10, 32.0), (90, 256.0),
                                             lo=8.0, hi=2048.0),
        exec_time_s=LogNormal.from_percentiles((10, 0.05), (90, 1.0),
                                               lo=0.005, hi=60.0))


def build_rare_population(n_functions: int = 200,
                          max_rate_per_min: float = 1.0,
                          min_rate_per_min: float = 1.0 / 60.0,
                          rare_fraction: float = 0.81,
                          busy_rate_per_min: float = 30.0,
                          seed_stream: Optional[RngStream] = None,
                          ) -> Population:
    """A population where ``rare_fraction`` of functions run ≤ 1/min.

    The remainder are "busy" functions at ``busy_rate_per_min`` — the
    19% that carry most of the traffic in the Azure study.
    """
    if not 0 < rare_fraction <= 1:
        raise ValueError("rare_fraction must be in (0, 1]")
    if not 0 < min_rate_per_min <= max_rate_per_min:
        raise ValueError("need 0 < min_rate <= max_rate")
    rng = seed_stream or RngStream("rare-population", 0)
    profile = _light_profile()
    n_rare = round(n_functions * rare_fraction)
    loads: List[FunctionLoad] = []
    for i in range(n_functions):
        if i < n_rare:
            # Log-uniform between min and max rare rate.
            log_rate = rng.uniform(math.log(min_rate_per_min),
                                   math.log(max_rate_per_min))
            rate_per_min = math.exp(log_rate)
        else:
            rate_per_min = busy_rate_per_min
        rate = rate_per_min / 60.0
        spec = FunctionSpec(
            name=f"app-{i:04d}",
            team=f"team-{i % 40:02d}",
            quota_minstr_per_s=max(rate * 100.0 * 5.0, 10.0),
            deadline_s=60.0,
            profile=profile,
        )
        loads.append(FunctionLoad(spec=spec, mean_rate=rate,
                                  shape=ConstantRate(1.0), shape_mean=1.0))
    return Population(loads=loads)


def rare_share(population: Population,
               threshold_per_min: float = 1.0) -> float:
    """Fraction of functions at or below the invocation threshold."""
    below = sum(1 for l in population.loads
                if l.mean_rate * 60.0 <= threshold_per_min + 1e-9)
    return below / len(population.loads)
