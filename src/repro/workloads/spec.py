"""Function specifications — the developer-visible attributes of §2.4.

A function has: name, runtime/namespace, criticality, execution start
time (per call), execution completion deadline (seconds to 24 h),
resource quota (reserved or opportunistic), concurrency limit, and retry
policy.  Per-invocation resource usage is drawn from the function's
:class:`ResourceProfile`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..sim.rng import RngStream

DAY_S = 86_400.0


class TriggerType(enum.Enum):
    """How a function is invoked (§3.1)."""

    QUEUE = "queue"
    EVENT = "event"
    TIMER = "timer"


class QuotaType(enum.Enum):
    """Reserved quota → seconds-scale SLO; opportunistic → 24 h SLO (§4.6.2)."""

    RESERVED = "reserved"
    OPPORTUNISTIC = "opportunistic"


class Criticality(enum.IntEnum):
    """Function criticality; higher values are scheduled first (§4.4)."""

    LOW = 0
    NORMAL = 1
    HIGH = 2
    CRITICAL = 3


@dataclass(frozen=True)
class RetryPolicy:
    """At-least-once retry behaviour on NACK/timeout (§4.3)."""

    max_attempts: int = 3
    retry_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.retry_delay_s < 0:
            raise ValueError(
                f"retry_delay_s must be >= 0, got {self.retry_delay_s}")


@dataclass(frozen=True)
class LogNormal:
    """Lognormal distribution parameterized by (mu, sigma) of ln(x)."""

    mu: float
    sigma: float
    lo: float = 0.0          # clamp floor
    hi: float = math.inf     # clamp ceiling

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.lo > self.hi:
            raise ValueError(f"lo ({self.lo}) > hi ({self.hi})")

    def sample(self, rng: RngStream) -> float:
        return min(max(rng.lognormal(self.mu, self.sigma), self.lo), self.hi)

    @property
    def median(self) -> float:
        return min(max(math.exp(self.mu), self.lo), self.hi)

    @property
    def mean(self) -> float:
        """Analytic mean of the clamped distribution.

        Heavy-tailed lognormals (σ > 2 for the Table 3 CPU columns) make
        Monte-Carlo mean estimates wildly unstable — the top percentile
        carries much of the mass — so capacity planning uses this closed
        form: E[min(X, hi)] via the lognormal partial expectation, plus
        the (tiny) floor-clamp correction.
        """
        if self.sigma == 0:
            return self.median
        mu, s = self.mu, self.sigma
        unclamped = math.exp(mu + s * s / 2.0)
        if math.isinf(self.hi) and self.lo <= 0:
            return unclamped
        # E[min(X, h)] = e^{mu+s^2/2} Φ((ln h − mu − s²)/s)
        #                + h(1 − Φ((ln h − mu)/s))
        if math.isinf(self.hi):
            capped = unclamped
        else:
            ln_h = math.log(self.hi)
            capped = (unclamped * _norm_cdf((ln_h - mu - s * s) / s)
                      + self.hi * (1.0 - _norm_cdf((ln_h - mu) / s)))
        if self.lo > 0:
            # E[max(Y, lo)] ≈ capped + lo·P(X < lo) (ignores the small
            # E[X | X < lo] term, conservative upward by < lo).
            capped += self.lo * _norm_cdf((math.log(self.lo) - mu) / s)
        return capped

    @classmethod
    def from_percentiles(cls, p_lo: Tuple[float, float],
                         p_hi: Tuple[float, float],
                         lo: float = 0.0, hi: float = math.inf) -> "LogNormal":
        """Fit (mu, sigma) so two (percentile, value) points are matched.

        ``p_lo``/``p_hi`` are (percentile in (0,100), positive value).
        """
        (q1, v1), (q2, v2) = p_lo, p_hi
        if not (0 < q1 < q2 < 100):
            raise ValueError("need 0 < q_lo < q_hi < 100")
        if v1 <= 0 or v2 <= 0:
            raise ValueError("percentile values must be positive")
        z1, z2 = _norm_ppf(q1 / 100.0), _norm_ppf(q2 / 100.0)
        sigma = (math.log(v2) - math.log(v1)) / (z2 - z1)
        if sigma < 0:
            raise ValueError("values must increase with percentile")
        mu = math.log(v1) - z1 * sigma
        return cls(mu=mu, sigma=sigma, lo=lo, hi=hi)


def _norm_cdf(z: float) -> float:
    """Standard-normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def _norm_ppf(p: float) -> float:
    """Standard-normal inverse CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients from Peter Acklam's algorithm (relative error < 1.15e-9).
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


@dataclass(frozen=True)
class ResourceProfile:
    """Per-invocation resource distributions (Table 3 shapes).

    ``cpu_minstr`` is millions of instructions per call (the paper's
    per-call "MIPS" metric); ``memory_mb`` is peak memory per call;
    ``exec_time_s`` is wall-clock duration, which for IO-bound calls
    exceeds pure CPU time.
    """

    cpu_minstr: LogNormal
    memory_mb: LogNormal
    exec_time_s: LogNormal

    def sample(self, rng: RngStream,
               core_mips: float = 4000.0) -> Tuple[float, float, float]:
        """Draw (cpu_minstr, memory_mb, exec_time_s) for one invocation.

        Consistency rules: a call cannot finish faster than its own CPU
        demand on one core, so CPU-heavy draws stretch the wall time
        (this is what makes Morphing-style calls minutes long) — but the
        stretched wall time may not exceed the profile's own execution-
        time ceiling (§3.3 bounds execution at minutes, not hours), so
        the CPU draw is capped to what fits inside that ceiling at the
        given core speed.
        """
        cpu = self.cpu_minstr.sample(rng)
        mem = self.memory_mb.sample(rng)
        exec_s = self.exec_time_s.sample(rng)
        if math.isfinite(self.exec_time_s.hi):
            cpu = min(cpu, self.exec_time_s.hi * core_mips)
        exec_s = max(exec_s, cpu / core_mips)
        return cpu, mem, exec_s

    def mean_cpu(self, core_mips: float = 4000.0) -> float:
        """Analytic mean per-call CPU at a given core speed.

        Mirrors :meth:`sample`'s execution-ceiling cap so capacity
        planning sees the same distribution executions realize.
        """
        import dataclasses
        hi = self.cpu_minstr.hi
        if math.isfinite(self.exec_time_s.hi):
            hi = min(hi, self.exec_time_s.hi * core_mips)
        return dataclasses.replace(self.cpu_minstr, hi=hi).mean


@dataclass(frozen=True)
class FunctionSpec:
    """Everything XFaaS knows about a registered function (§2.4)."""

    name: str
    namespace: str = "default"
    team: str = "team-0"
    trigger: TriggerType = TriggerType.QUEUE
    criticality: Criticality = Criticality.NORMAL
    quota_type: QuotaType = QuotaType.RESERVED
    #: Global CPU quota in millions of instructions per second (§4.6.1).
    quota_minstr_per_s: float = 1.0e6
    #: Execution completion deadline, seconds after submission (§2.4).
    deadline_s: float = 60.0
    concurrency_limit: Optional[int] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Bell–LaPadula classification level of the function's execution
    #: zone (§4.7); data may only flow from lower to higher levels.
    isolation_level: int = 0
    profile: ResourceProfile = None  # type: ignore[assignment]
    #: Downstream services called per invocation: (service name, calls).
    downstream: Tuple[Tuple[str, int], ...] = ()
    code_size_mb: float = 5.0
    #: Ephemeral programmatically-generated functions (Morphing, §4.5.2)
    #: are assigned to locality groups round-robin.
    ephemeral: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("function name must be non-empty")
        if self.quota_minstr_per_s <= 0:
            raise ValueError(
                f"quota must be positive, got {self.quota_minstr_per_s}")
        if not 0 < self.deadline_s <= DAY_S:
            raise ValueError(
                f"deadline must be in (0, 24h], got {self.deadline_s}")
        if self.concurrency_limit is not None and self.concurrency_limit < 1:
            raise ValueError(
                f"concurrency_limit must be >= 1, got {self.concurrency_limit}")
        if self.profile is None:
            object.__setattr__(self, "profile", DEFAULT_PROFILE)
        if self.quota_type is QuotaType.OPPORTUNISTIC and \
                self.deadline_s < DAY_S:
            # Opportunistic functions have a 24 h execution SLO (§4.6.2).
            object.__setattr__(self, "deadline_s", DAY_S)

    @property
    def is_delay_tolerant(self) -> bool:
        """Eligible for time-shifting: opportunistic or long deadline."""
        return (self.quota_type is QuotaType.OPPORTUNISTIC
                or self.deadline_s >= 3600.0)


#: A middle-of-the-road profile (event-trigger-like) used as default.
DEFAULT_PROFILE = ResourceProfile(
    cpu_minstr=LogNormal.from_percentiles((10, 0.54), (90, 189.0), lo=0.01),
    memory_mb=LogNormal.from_percentiles((60, 16.0), (92, 256.0),
                                         lo=1.0, hi=32 * 1024.0),
    exec_time_s=LogNormal.from_percentiles((33, 1.0), (94, 60.0),
                                           lo=0.001, hi=3600.0),
)


def spread_spec(spec: FunctionSpec, **overrides) -> FunctionSpec:
    """Copy ``spec`` with field overrides (dataclasses.replace wrapper)."""
    import dataclasses
    return dataclasses.replace(spec, **overrides)
