"""Generator-based processes on top of the event kernel.

A *process* is a Python generator that yields effects the kernel
interprets:

* ``yield delay`` (a float) — sleep for that many simulated seconds.
* ``yield signal`` (a :class:`~repro.sim.events.Signal`) — suspend until
  the signal fires; the yield expression evaluates to the signal's value.
* ``yield process`` (another :class:`Process`) — wait for the child
  process to finish; evaluates to its return value.

Processes make sequential protocols (lease → execute → ack) readable
without hand-written callback chains.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from .events import Signal
from .kernel import Simulator

Effect = Union[float, int, Signal, "Process"]


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class Process:
    """A running generator process; also a waitable via its ``done`` signal."""

    def __init__(self, sim: Simulator, gen: Generator[Effect, Any, Any],
                 name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self.done = Signal()
        self._alive = True
        # Start on the next kernel step at current time, keeping creation
        # side-effect free.
        sim.call_after(0.0, lambda: self._step(None))

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        return self.done.value

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        self._alive = False
        try:
            self._gen.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        if not self.done.fired:
            self.done.fire(None)

    # ------------------------------------------------------------------
    def _step(self, send_value: Any, error: Optional[BaseException] = None) -> None:
        if not self._alive:
            return
        try:
            if error is not None:
                effect = self._gen.throw(error)
            else:
                effect = self._gen.send(send_value)
        except StopIteration as stop:
            self._alive = False
            self.done.fire(getattr(stop, "value", None))
            return
        except ProcessKilled:
            self._alive = False
            self.done.fire(None)
            return
        self._interpret(effect)

    def _interpret(self, effect: Effect) -> None:
        if isinstance(effect, (int, float)):
            if effect < 0:
                self._step(None, ValueError(f"negative delay {effect}"))
                return
            self.sim.call_after(float(effect), lambda: self._step(None))
        elif isinstance(effect, Signal):
            effect.add_waiter(self._on_signal)
        elif isinstance(effect, Process):
            effect.done.add_waiter(self._on_signal)
        else:
            self._step(None, TypeError(
                f"process {self.name!r} yielded unsupported effect "
                f"{effect!r}"))

    def _on_signal(self, sig: Signal) -> None:
        if sig.error is not None:
            self.sim.call_after(0.0, lambda: self._step(None, sig.error))
        else:
            self.sim.call_after(0.0, lambda: self._step(sig.value))


def spawn(sim: Simulator, gen: Generator[Effect, Any, Any],
          name: str = "") -> Process:
    """Start ``gen`` as a process on ``sim``."""
    return Process(sim, gen, name)
