"""Calendar-queue event backend (Brown 1988) behind the kernel API.

A calendar queue hashes each event by time into one of ``2^k`` "day"
buckets of fixed width, like appointments written into a wall calendar:
``bucket = (time // width) mod nbuckets``.  Pops walk the current day's
bucket; when a day is exhausted the cursor advances to the next day.
For schedules whose inter-event gap is stable — the simulator's
dominant periodic+arrival mix — push and pop are O(1) amortized versus
the tuple heap's O(log n), at the price of resizes when the event
population drifts.

Drop-in contract
----------------
:class:`CalendarQueue` subclasses :class:`~repro.sim.events.EventQueue`
and preserves its exact ordering semantics: entries are the same
``(time, priority, seq, handle)`` tuples, same-timestamp events run in
``(priority, seq)`` order (FIFO within a priority), the zero-delay FIFO
lane is inherited unchanged, and cancellation stays lazy with the same
compaction thresholds.  ``Simulator(queue_backend="calendar")`` selects
it; trace digests are bit-identical across both backends because the
backend only reorders *how* the head is found, never *which* entry is
the head.

Implementation notes
--------------------
* ``_cur_day`` is the integer absolute day number (``int(time/width)``),
  never a float bucket-top accumulator — repeated float adds would
  drift and disagree with the push-side day function at boundaries.
* The in-day test is ``int(entry_time / width) == day``: literally the
  push-side day function, so an event can never be filed under a day
  the pop scan refuses to claim.
* After scanning a full year (every bucket) without finding an in-day
  event, a direct search over bucket heads finds the global minimum and
  snaps the cursor to its day — the standard fix for sparse regions.
* Buckets are sorted lists; pushes ``insort`` (append when the entry is
  the new maximum, the common case for monotone schedules).
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import Callable, List, Optional

from .events import _PURGE_MIN_CANCELLED, Entry, EventQueue, ScheduledEvent

#: Initial bucket-count; grows/shrinks by powers of two.
_MIN_BUCKETS = 8
#: Resize thresholds: grow at 2x buckets, shrink below buckets/2.
_GROW_FACTOR = 2
#: Max inter-event gap samples used to re-choose the bucket width.
_WIDTH_SAMPLES = 256


class CalendarQueue(EventQueue):
    """Bucketed event queue with the heap backend's exact semantics."""

    def __init__(self) -> None:
        super().__init__()
        self._buckets: List[List[Entry]] = [[] for _ in range(_MIN_BUCKETS)]
        self._mask = _MIN_BUCKETS - 1
        self._width = 1.0
        #: Absolute day number the pop cursor is parked on.
        self._cur_day = 0
        #: Entries filed in buckets (cancelled ones included until purged).
        self._count = 0
        self._grow_at = _GROW_FACTOR * _MIN_BUCKETS
        self._shrink_at = 0

    def __len__(self) -> int:
        """Total queued entries, including cancelled ones."""
        return self._count + len(self._zero)

    def live_count(self) -> int:
        """Queued entries that are not cancelled."""
        return self._count + len(self._zero) - self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[[], None],
             priority: int = 0) -> ScheduledEvent:
        """File ``callback`` under its day; returns a cancellable handle."""
        ev = ScheduledEvent(time, callback, self)
        seq = self._seq
        self._seq = seq + 1
        entry: Entry = (time, priority, seq, ev)
        day = int(time / self._width)
        if day < self._cur_day:
            # A push behind the cursor (cursor had advanced to a later
            # event's day); rewind so the scan cannot skip it.
            self._cur_day = day
        bucket = self._buckets[day & self._mask]
        if bucket and entry < bucket[-1]:
            insort(bucket, entry)
        else:
            bucket.append(entry)
        self._count += 1
        if self._count > self._grow_at:
            self._resize(_GROW_FACTOR * len(self._buckets))
        return ev

    # ------------------------------------------------------------------
    # Lazy deletion
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled > _PURGE_MIN_CANCELLED
                and self._cancelled * 2 > self._count + len(self._zero)):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one pass (buckets stay sorted)."""
        for i, bucket in enumerate(self._buckets):
            if any(e[3].cancelled for e in bucket):
                kept = [e for e in bucket if not e[3].cancelled]
                self._count -= len(bucket) - len(kept)
                self._buckets[i] = kept
        if self._zero:
            self._zero = deque(e for e in self._zero if not e[3].cancelled)
        self._cancelled = 0
        if self._count < self._shrink_at:
            self._resize(len(self._buckets) // _GROW_FACTOR)

    # ------------------------------------------------------------------
    # Head location
    # ------------------------------------------------------------------
    def _find_head(self) -> Optional[Entry]:
        """Next live bucketed entry *unpopped*; advances the cursor.

        O(1) when the cursor already points at the head's day (the
        steady state: a peek right after a find, or consecutive pops
        within one day).
        """
        if self._count == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        day = self._cur_day
        for _ in range(len(buckets)):
            bucket = buckets[day & mask]
            while bucket:
                entry = bucket[0]
                if entry[3].cancelled:
                    del bucket[0]
                    entry[3]._queue = None
                    self._cancelled -= 1
                    self._count -= 1
                    continue
                if int(entry[0] / width) == day:
                    self._cur_day = day
                    return entry
                break  # head of this bucket belongs to a later year
            day += 1
        # A whole year was empty: direct-search the bucket heads for the
        # global minimum and snap the cursor to it.
        best: Optional[Entry] = None
        for bucket in buckets:
            while bucket and bucket[0][3].cancelled:
                entry = bucket[0]
                del bucket[0]
                entry[3]._queue = None
                self._cancelled -= 1
                self._count -= 1
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        if best is None:
            return None
        self._cur_day = int(best[0] / width)
        return best

    def _purge_head(self) -> Optional[Entry]:
        """Drop cancelled heads; return the next live entry *unpopped*."""
        head = self._find_head()
        zero = self._zero
        while zero and zero[0][3].cancelled:
            entry = zero.popleft()
            entry[3]._queue = None
            self._cancelled -= 1
        if head is not None:
            if zero and zero[0] < head:
                return zero[0]
            return head
        if zero:
            return zero[0]
        return None

    def _pop_head(self) -> Entry:
        """Pop the entry ``_purge_head`` just returned (head is live)."""
        zero = self._zero
        head = self._find_head()
        if head is not None and (not zero or head < zero[0]):
            bucket = self._buckets[self._cur_day & self._mask]
            entry = bucket[0]
            del bucket[0]
            self._count -= 1
            entry[3]._queue = None
            if self._count < self._shrink_at:
                self._resize(len(self._buckets) // _GROW_FACTOR)
            return entry
        entry = zero.popleft()
        entry[3]._queue = None
        return entry

    # ------------------------------------------------------------------
    # Resizing
    # ------------------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        """Re-bucket every live entry into ``nbuckets`` fresh buckets."""
        if nbuckets < _MIN_BUCKETS:
            nbuckets = _MIN_BUCKETS
        entries: List[Entry] = []
        dropped = 0
        for bucket in self._buckets:
            for entry in bucket:
                if entry[3].cancelled:
                    entry[3]._queue = None
                    dropped += 1
                else:
                    entries.append(entry)
        self._cancelled -= dropped
        entries.sort()
        self._width = self._choose_width(entries)
        self._buckets = [[] for _ in range(nbuckets)]
        self._mask = nbuckets - 1
        width = self._width
        for entry in entries:
            # Entries arrive in sorted order, so appends keep each
            # bucket sorted.
            self._buckets[int(entry[0] / width) & self._mask].append(entry)
        self._count = len(entries)
        self._grow_at = _GROW_FACTOR * nbuckets
        self._shrink_at = nbuckets // _GROW_FACTOR if nbuckets > _MIN_BUCKETS \
            else 0
        if entries:
            self._cur_day = int(entries[0][0] / width)

    def _choose_width(self, entries: List[Entry]) -> float:
        """Bucket width from sampled inter-event gaps (Brown's rule).

        Width ≈ 2x the mean gap between consecutive *distinct* event
        times in an evenly-spaced sample, so a day holds a few events on
        average; identical timestamps (periodic barrages) contribute no
        gap and cannot collapse the width to zero.
        """
        n = len(entries)
        if n < 2:
            return self._width
        step = n // _WIDTH_SAMPLES + 1
        sample = [entries[i][0] for i in range(0, n, step)]
        gaps = 0.0
        ngaps = 0
        prev = sample[0]
        for t in sample[1:]:
            if t > prev:
                gaps += t - prev
                ngaps += 1
                prev = t
        if ngaps == 0:
            return self._width
        width = 2.0 * gaps / ngaps
        return width if width > 0.0 else self._width
