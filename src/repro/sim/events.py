"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic event-scheduling simulator: a single priority
queue of :class:`ScheduledEvent` entries ordered by ``(time, priority,
seq)``.  The ``seq`` tiebreaker makes execution order fully
deterministic, which the whole reproduction relies on: two runs with the
same seed produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class EventCancelled(Exception):
    """Raised when waiting on an event that gets cancelled."""


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a simulation time.

    Ordering is ``(time, priority, seq)``; lower values run first.
    ``cancelled`` entries stay in the heap but are skipped when popped
    (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent`."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None],
             priority: int = 0) -> ScheduledEvent:
        """Schedule ``callback`` at ``time`` and return a cancellable handle."""
        ev = ScheduledEvent(time=time, priority=priority,
                            seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[ScheduledEvent]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class Signal:
    """A one-shot event that process coroutines can wait on.

    A :class:`Signal` starts pending; :meth:`fire` wakes every waiter
    exactly once with an optional value.  Subsequent waits complete
    immediately.  :meth:`fail` wakes waiters with an exception instead.
    """

    __slots__ = ("_fired", "_value", "_error", "_waiters")

    def __init__(self) -> None:
        self._fired = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List[Callable[["Signal"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise RuntimeError("Signal already fired")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def fail(self, error: BaseException) -> None:
        if self._fired:
            raise RuntimeError("Signal already fired")
        self._fired = True
        self._error = error
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def add_waiter(self, waiter: Callable[["Signal"], None]) -> None:
        """Register ``waiter``; called immediately if already fired."""
        if self._fired:
            waiter(self)
        else:
            self._waiters.append(waiter)
