"""Event primitives for the discrete-event simulation kernel.

The kernel is a classic event-scheduling simulator: a single priority
queue of scheduled callbacks ordered by ``(time, priority, seq)``.  The
``seq`` tiebreaker makes execution order fully deterministic, which the
whole reproduction relies on: two runs with the same seed produce
identical traces.

Hot-path layout
---------------
Heap entries are plain 4-tuples ``(time, priority, seq, handle)`` so the
C implementations of ``heapq`` compare native tuples instead of calling
a Python-level ``__lt__``; ``seq`` is unique, so the handle in slot 3 is
never compared.  The :class:`ScheduledEvent` handle is a ``__slots__``
object carrying only what outlives the push: the callback, the cancelled
flag, and a queue backref for cancellation accounting.

Two further fast paths:

* **Zero-delay FIFO** — ``call_after(0, ...)`` events (process wake-ups,
  completion continuations) are appended to a plain deque instead of
  sifting through the heap.  Because the clock never moves backwards and
  ``seq`` is globally increasing, the deque is sorted by construction;
  the pop path merges it with the heap head by tuple comparison, so the
  execution order is bit-identical to pushing through the heap.
* **Lazy deletion with purge** — cancellation only flags the handle.
  Cancelled entries are skipped when they surface at the head
  (:meth:`EventQueue._purge_head`), and when they exceed half the queue
  the whole structure is compacted in one pass, bounding memory under
  cancellation-heavy workloads (e.g. worker failure injection).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

#: Never compact below this many cancelled entries (compaction is O(n);
#: tiny queues are cheaper to purge lazily at the head).
_PURGE_MIN_CANCELLED = 64


class EventCancelled(Exception):
    """Raised when waiting on an event that gets cancelled."""


class ScheduledEvent:
    """Cancellable handle for a callback scheduled at a simulation time.

    Ordering of the underlying queue is ``(time, priority, seq)``; lower
    values run first.  Cancelled entries stay queued but are skipped
    when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "callback", "cancelled", "_queue")

    def __init__(self, time: float, callback: Callable[[], None],
                 queue: Optional["EventQueue"]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._on_cancel()


#: A queue entry: ``(time, priority, seq, handle)``.
Entry = Tuple[float, int, int, ScheduledEvent]


class EventQueue:
    """Deterministic priority queue of scheduled callbacks."""

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        #: Zero-delay fast path: entries appended here are already in
        #: key order (time non-decreasing, seq increasing, priority 0).
        self._zero: "deque[Entry]" = deque()
        self._seq = 0
        self._cancelled = 0

    def __len__(self) -> int:
        """Total queued entries, including cancelled ones."""
        return len(self._heap) + len(self._zero)

    def live_count(self) -> int:
        """Queued entries that are not cancelled."""
        return len(self._heap) + len(self._zero) - self._cancelled

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: float, callback: Callable[[], None],
             priority: int = 0) -> ScheduledEvent:
        """Schedule ``callback`` at ``time`` and return a cancellable handle."""
        ev = ScheduledEvent(time, callback, self)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def push_zero(self, now: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Fast path for ``call_after(0, ...)`` at default priority.

        Appends to the FIFO instead of the heap.  Correct because the
        new key ``(now, 0, seq)`` is strictly greater than every key
        already in the FIFO: the clock is monotone and ``seq`` is fresh.
        """
        ev = ScheduledEvent(now, callback, self)
        seq = self._seq
        self._seq = seq + 1
        self._zero.append((now, 0, seq, ev))
        return ev

    # ------------------------------------------------------------------
    # Lazy deletion
    # ------------------------------------------------------------------
    def _on_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled > _PURGE_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap) + len(self._zero)):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry in one pass and re-heapify."""
        self._heap = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        if self._zero:
            self._zero = deque(e for e in self._zero if not e[3].cancelled)
        self._cancelled = 0

    def _purge_head(self) -> Optional[Entry]:
        """Drop cancelled heads; return the next live entry *unpopped*.

        The single home of the lazy-deletion skip logic — ``pop``,
        ``peek_time``, and the kernel's inlined run loops all route
        through it.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            entry = heapq.heappop(heap)
            entry[3]._queue = None
            self._cancelled -= 1
        zero = self._zero
        while zero and zero[0][3].cancelled:
            entry = zero.popleft()
            entry[3]._queue = None
            self._cancelled -= 1
        if heap:
            if zero and zero[0] < heap[0]:
                return zero[0]
            return heap[0]
        if zero:
            return zero[0]
        return None

    def _pop_head(self) -> Entry:
        """Pop the entry ``_purge_head`` just returned (head is live)."""
        heap = self._heap
        zero = self._zero
        if heap and (not zero or heap[0] < zero[0]):
            entry = heapq.heappop(heap)
        else:
            entry = zero.popleft()
        entry[3]._queue = None
        return entry

    # ------------------------------------------------------------------
    # Public pop/peek API
    # ------------------------------------------------------------------
    def pop(self) -> Optional[ScheduledEvent]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        if self._purge_head() is None:
            return None
        return self._pop_head()[3]

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        head = self._purge_head()
        return head[0] if head is not None else None


class Signal:
    """A one-shot event that process coroutines can wait on.

    A :class:`Signal` starts pending; :meth:`fire` wakes every waiter
    exactly once with an optional value.  Subsequent waits complete
    immediately.  :meth:`fail` wakes waiters with an exception instead.
    """

    __slots__ = ("_fired", "_value", "_error", "_waiters")

    def __init__(self) -> None:
        self._fired = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: List[Callable[["Signal"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise RuntimeError("Signal already fired")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def fail(self, error: BaseException) -> None:
        if self._fired:
            raise RuntimeError("Signal already fired")
        self._fired = True
        self._error = error
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def add_waiter(self, waiter: Callable[["Signal"], None]) -> None:
        """Register ``waiter``; called immediately if already fired."""
        if self._fired:
            waiter(self)
        else:
            self._waiters.append(waiter)
