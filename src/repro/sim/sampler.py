"""Coalesced periodic samplers: one kernel event per distinct due time.

A platform fans a dozen fixed-interval control loops into the kernel
heap as independent :class:`~.kernel.PeriodicTask` events — RIM scans,
AIMD window rolls, utilization updates, lease extension, per-platform
memory/distinct-function samplers.  Unjittered tasks share phases by
construction (most are armed at t=0 with round intervals), so the same
instants recur across tasks and every shared instant pays one heap
push + pop *per task*.  The :class:`SamplerHub` registers these loops
as lightweight members and keeps exactly **one** kernel event armed at
the earliest pending due time; when it fires, every member due at that
instant runs from the single pop.

Determinism contract
--------------------
Member callbacks must run in exactly the relative order the kernel
would have used, or same-time control decisions (and therefore trace
digests) change.  The kernel breaks same-time ties by arming sequence
number; the hub mirrors that with a hub-local ``arm_seq`` assigned
when a member is (re-)armed, and fires due members in ``arm_seq``
order.  Matching :class:`~.kernel.PeriodicTask`, a member's next
firing is armed *after* its callback returns, and the next due time is
``fire_time + interval`` computed with the same float arithmetic.
Jittered tasks draw a per-firing offset and never share instants;
they stay on :meth:`~.kernel.Simulator.every`.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

from .kernel import ScheduledEvent, SimulationError, Simulator

__all__ = ["SamplerHub", "SamplerTask"]


class SamplerTask:
    """Handle for one member loop; API-compatible with PeriodicTask."""

    __slots__ = ("interval", "fire_count", "_callback", "_hub", "_next_due",
                 "_arm_seq", "_cancelled")

    def __init__(self, hub: "SamplerHub", interval: float,
                 callback: Callable[[], None], next_due: float,
                 arm_seq: int) -> None:
        self._hub = hub
        self.interval = interval
        self._callback = callback
        self._next_due = next_due
        self._arm_seq = arm_seq
        self._cancelled = False
        self.fire_count = 0

    def cancel(self) -> None:
        self._cancelled = True


class SamplerHub:
    """Batches unjittered periodic tasks behind a single kernel event."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._members: List[SamplerTask] = []
        self._arm_counter = 0
        self._event: Optional[ScheduledEvent] = None
        self._armed_for = math.inf
        #: Kernel events saved versus one PeriodicTask per member
        #: (``sum(len(batch) - 1)`` over firings).
        self.events_coalesced = 0

    # ------------------------------------------------------------------
    def every(self, interval: float, callback: Callable[[], None],
              start: Optional[float] = None) -> SamplerTask:
        """Register a repeating member; same contract as Simulator.every
        with ``jitter=0`` (first firing at ``max(start or now, now)``)."""
        if interval <= 0:
            raise SimulationError(
                f"interval must be positive, got {interval}")
        first = self._sim._now if start is None else start
        first = max(first, self._sim._now)
        member = SamplerTask(self, interval, callback, first,
                             self._next_arm_seq())
        self._members.append(member)
        self._rearm()
        return member

    def _next_arm_seq(self) -> int:
        seq = self._arm_counter
        self._arm_counter = seq + 1
        return seq

    # ------------------------------------------------------------------
    def _fire(self) -> None:
        now = self._sim._now
        due = [m for m in self._members
               if not m._cancelled and m._next_due <= now]
        due.sort(key=lambda m: m._arm_seq)
        for member in due:
            if member._cancelled:
                # Cancelled by an earlier member in this same batch —
                # the kernel's lazy deletion would have skipped it too.
                continue
            member.fire_count += 1
            member._callback()
            if not member._cancelled:
                # Mirror PeriodicTask._fire: re-arm after the callback,
                # next due computed from the fire time.
                member._next_due = now + member.interval
                member._arm_seq = self._next_arm_seq()
        if due:
            self.events_coalesced += len(due) - 1
        self._event = None
        self._armed_for = math.inf
        self._rearm()

    def _rearm(self) -> None:
        nxt = math.inf
        for m in self._members:
            if not m._cancelled and m._next_due < nxt:
                nxt = m._next_due
        if nxt is math.inf:
            return
        if self._event is not None:
            if self._armed_for <= nxt:
                return
            self._event.cancel()
        self._event = self._sim.call_at(nxt, self._fire)
        self._armed_for = nxt

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for m in self._members if not m._cancelled)
