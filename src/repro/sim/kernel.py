"""The discrete-event simulation kernel.

:class:`Simulator` owns the clock and the event queue.  Components
schedule plain callbacks (:meth:`Simulator.call_at` /
:meth:`Simulator.call_after`), periodic ticks (:meth:`Simulator.every`),
or generator processes (see :mod:`repro.sim.process`).

The kernel is intentionally minimal — there is no global registry or
implicit singleton.  Everything in the reproduction receives the
simulator it runs on, which keeps tests hermetic.
"""

from __future__ import annotations

import gc as _gc
from typing import Any, Callable, Dict, Optional, Type

from .calqueue import CalendarQueue
from .events import EventQueue, ScheduledEvent, Signal
from .rng import RngRegistry
from .simsan import Sanitizer, SanitizedRngRegistry


class SimulationError(Exception):
    """Raised for kernel misuse (scheduling in the past, etc.)."""


#: Selectable event-queue backends.  Both preserve identical execution
#: order (and therefore identical trace digests); they differ only in
#: how the head entry is located.  See :mod:`repro.sim.calqueue`.
QUEUE_BACKENDS: Dict[str, Type[EventQueue]] = {
    "heap": EventQueue,
    "calendar": CalendarQueue,
}

#: Backend used when ``Simulator(queue_backend=...)`` is not given.
#: The tuple heap wins on the calibrated day-run mix (see
#: ``BENCH_kernel.json`` backend records and DESIGN.md §7), so it stays
#: the default; the calendar queue is selectable for gap-stable
#: schedules.
DEFAULT_QUEUE_BACKEND = "heap"

#: Selectable cyclic-GC disciplines for the run loops.  ``None`` leaves
#: the collector alone; ``"freeze"`` moves the post-setup heap to the
#: permanent generation once and keeps the collector disabled while a
#: run loop executes.  GC never changes allocation behavior, so traces
#: are bit-identical across modes (the CI bench smoke pins this).
GC_MODES = (None, "freeze")


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams (see :class:`RngRegistry`).
    queue_backend:
        Event-queue implementation, a key of :data:`QUEUE_BACKENDS`
        (``"heap"`` or ``"calendar"``).  Execution order — and thus
        every trace — is identical across backends.
    sanitize:
        Install the :mod:`repro.sim.simsan` runtime sanitizer: the RNG
        registry mints checking streams and ``self.sanitizer`` is set
        so platforms wrap their region maps.  The sanitized run is
        bit-identical to the unsanitized one (checks observe, never
        draw or reorder); violations raise
        :class:`~repro.sim.simsan.SanitizeError`.
    gc_mode:
        Cyclic-GC discipline for the run loops, a member of
        :data:`GC_MODES`.  ``"freeze"`` runs one full collection and
        freezes the surviving heap into the permanent generation on
        first loop entry (the setup objects — topology, workers,
        schedulers — are effectively immortal anyway), then disables
        the collector for the duration of every
        :meth:`run`/:meth:`run_until` loop, restoring it on exit or
        exception.  Steady-state call records live in the call arena's
        flat columns, so skipping cycle detection during the loop is
        safe *and* removes every generational scan from the hot path.
        Digests are bit-identical across modes.
    """

    def __init__(self, seed: int = 0,
                 queue_backend: Optional[str] = None,
                 sanitize: bool = False,
                 gc_mode: Optional[str] = None) -> None:
        self._now = 0.0
        backend = (queue_backend if queue_backend is not None
                   else DEFAULT_QUEUE_BACKEND)
        try:
            queue_cls = QUEUE_BACKENDS[backend]
        except KeyError:
            raise SimulationError(
                f"unknown queue_backend {backend!r}; "
                f"expected one of {sorted(QUEUE_BACKENDS)}") from None
        self._queue = queue_cls()
        self.queue_backend = backend
        #: Runtime sanitizer, or None when ``sanitize`` is off.  Set
        #: before the RNG registry so every stream ever minted (incl.
        #: the ones PeriodicTask binds at init) goes through the checks.
        self.sanitizer: Optional[Sanitizer] = None
        if sanitize:
            self.sanitizer = Sanitizer(self)
            self.rng: RngRegistry = SanitizedRngRegistry(
                seed, self.sanitizer)
        else:
            self.rng = RngRegistry(seed)
        if gc_mode not in GC_MODES:
            raise SimulationError(
                f"unknown gc_mode {gc_mode!r}; expected one of {GC_MODES}")
        self.gc_mode = gc_mode
        self._gc_frozen = False
        self._running = False
        self._stopped = False
        self.events_executed = 0
        #: Optional time-attribution recorder (see :mod:`repro.profile`).
        #: When set, :meth:`run`/:meth:`run_until` delegate the dispatch
        #: loop to it so per-event timing never burdens the fast loops
        #: below.  The profiled loop replays identical queue semantics,
        #: so trace digests are bit-identical either way.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[[], None],
                priority: int = 0) -> ScheduledEvent:
        """Run ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now={self._now})")
        return self._queue.push(time, callback, priority)

    def call_after(self, delay: float, callback: Callable[[], None],
                   priority: int = 0) -> ScheduledEvent:
        """Run ``callback`` after ``delay`` seconds."""
        if delay == 0.0 and priority == 0:
            # Fast path: zero-delay continuations (process wake-ups,
            # completion chains) go to the queue's FIFO lane instead of
            # sifting through the heap; execution order is identical.
            return self._queue.push_zero(self._now, callback)
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, priority)

    def every(self, interval: float, callback: Callable[[], None],
              start: Optional[float] = None, jitter: float = 0.0,
              rng_stream: str = "periodic-jitter") -> "PeriodicTask":
        """Run ``callback`` every ``interval`` seconds until cancelled.

        ``jitter`` adds a uniform ±jitter offset per firing, drawn from a
        named RNG stream, which desynchronizes replicated components
        (e.g. many schedulers polling DurableQs) the way production
        replicas naturally desynchronize.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        task = PeriodicTask(self, interval, callback, jitter, rng_stream)
        first = self._now if start is None else start
        task._schedule_at(max(first, self._now))
        return task

    def timeout(self, delay: float, value: Any = None) -> Signal:
        """A :class:`Signal` that fires ``delay`` seconds from now."""
        sig = Signal()
        self.call_after(delay, lambda: sig.fire(value))
        return sig

    def inject(self, time: float, callback: Callable[[], None],
               priority: int = 0) -> ScheduledEvent:
        """Schedule an *external* event strictly after the current time.

        The windowed-execution hook for :mod:`repro.parsim`: between two
        ``run_until`` windows, a coordinator injects cross-shard messages
        due in future windows.  Unlike :meth:`call_at`, scheduling *at*
        the current instant is rejected — an already-completed window
        must never gain events retroactively (the conservative-lookahead
        contract guarantees every message is strictly in the future).
        Injection order determines the same-time tiebreak ``seq``, so
        callers must inject in a deterministic (canonical) order.
        """
        if time <= self._now:
            raise SimulationError(
                f"inject({time}) is not strictly after now={self._now}")
        return self._queue.push(time, callback, priority)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_until(self, time: float) -> None:
        """Execute events up to and including ``time``; clock ends at ``time``.

        The pop loop is inlined over the queue internals: one
        ``_purge_head`` (head peek) and one ``_pop_head`` per event,
        with the hot attributes bound to locals outside the loop.
        """
        if time < self._now:
            raise SimulationError(f"run_until({time}) is in the past")
        gc_restore = (self.gc_mode is not None) and self._gc_loop_enter()
        try:
            if self.profiler is not None:
                self.profiler.run_until(self, time)
                return
            self._stopped = False
            self._running = True
            queue = self._queue
            purge_head = queue._purge_head
            pop_head = queue._pop_head
            executed = 0
            try:
                while not self._stopped:
                    head = purge_head()
                    if head is None or head[0] > time:
                        break
                    entry = pop_head()
                    self._now = entry[0]
                    executed += 1
                    entry[3].callback()
                if self._now < time:
                    self._now = time
            finally:
                self.events_executed += executed
                self._running = False
        finally:
            if gc_restore:
                _gc.enable()

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed)."""
        gc_restore = (self.gc_mode is not None) and self._gc_loop_enter()
        try:
            if self.profiler is not None:
                self.profiler.run(self, max_events)
                return
            self._stopped = False
            self._running = True
            queue = self._queue
            purge_head = queue._purge_head
            pop_head = queue._pop_head
            limit = max_events if max_events is not None else -1
            executed = 0
            try:
                while not self._stopped:
                    if executed == limit:
                        break
                    if purge_head() is None:
                        break
                    entry = pop_head()
                    self._now = entry[0]
                    executed += 1
                    entry[3].callback()
            finally:
                self.events_executed += executed
                self._running = False
        finally:
            if gc_restore:
                _gc.enable()

    def _gc_loop_enter(self) -> bool:
        """Apply ``gc_mode`` on loop entry; True if exit must re-enable.

        The freeze (collect + move survivors to the permanent
        generation) happens once per simulator, on first entry —
        :mod:`repro.parsim` calls ``run_until`` once per window,
        thousands of times per run, and re-freezing each window would
        cost more than the collector it displaces.  The disable is
        per-entry and restored by the caller's ``finally`` only when
        the collector was enabled on the way in, so nested/recursive
        loops and user-disabled collectors stay undisturbed.
        """
        if not self._gc_frozen:
            _gc.collect()
            _gc.freeze()
            self._gc_frozen = True
        if _gc.isenabled():
            _gc.disable()
            return True
        return False

    def stop(self) -> None:
        """Stop the currently running :meth:`run`/:meth:`run_until` loop."""
        self._stopped = True

    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._queue.live_count()

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest live event, or None when the queue is empty.

        Purges cancelled heads as a side effect (same lazy-deletion pass
        the run loop performs).  :mod:`repro.parsim` uses this to skip
        empty synchronization windows: the global minimum next-event
        time over all shards bounds how far every shard can jump without
        anything happening in between.
        """
        head = self._queue._purge_head()
        return None if head is None else float(head[0])


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 callback: Callable[[], None], jitter: float,
                 rng_stream: str) -> None:
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._jitter = jitter
        self._rng_stream = rng_stream
        # Jittered tasks draw per firing; resolve the stream once here
        # (the stream's seed depends only on its name, so binding at
        # init draws the same sequence as looking it up per firing).
        self._jitter_rng = sim.rng.stream(rng_stream) if jitter > 0 else None
        self._handle: Optional[ScheduledEvent] = None
        self._cancelled = False
        self.fire_count = 0

    def _schedule_at(self, time: float) -> None:
        if self._cancelled:
            return
        if self._jitter_rng is not None:
            offset = self._jitter_rng.uniform(-self._jitter, self._jitter)
            when = max(self._sim._now, time + offset)
        else:
            when = max(self._sim._now, time)
        self._handle = self._sim.call_at(when, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fire_count += 1
        base = self._sim.now
        self._callback()
        if not self._cancelled:
            self._schedule_at(base + self.interval)

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
